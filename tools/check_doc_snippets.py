#!/usr/bin/env python
"""Run the ``python`` code blocks of the documentation so they cannot rot.

Usage::

    python tools/check_doc_snippets.py [FILE.md ...]

Without arguments every ``docs/*.md`` file is checked.  Each fenced
```` ```python ```` block is executed; blocks within one file share a
namespace (so a later block may use the imports and variables of an earlier
one), and every file starts from a clean namespace.  A block annotated with
an HTML comment ``<!-- no-run -->`` on the line directly above its opening
fence is skipped (use sparingly, e.g. for deliberately failing examples);
``<!-- needs-numpy -->`` skips the block only when numpy is unavailable,
so the no-numpy CI job can still run every other snippet.

The script needs no third-party packages and inserts ``src/`` at the front
of ``sys.path``, so it runs from a plain checkout exactly like
``PYTHONPATH=src python ...``; CI invokes it as the ``docs`` job.
"""

from __future__ import annotations

import io
import re
import sys
import traceback
from contextlib import redirect_stdout
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

_FENCE = re.compile(r"^```python\s*$")
_FENCE_END = re.compile(r"^```\s*$")
_SKIP_MARK = "<!-- no-run -->"
_NUMPY_MARK = "<!-- needs-numpy -->"


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def extract_blocks(text: str) -> List[Tuple[int, str, bool]]:
    """Return ``(first_line_number, source, skipped)`` for each python block."""
    blocks: List[Tuple[int, str, bool]] = []
    lines = text.splitlines()
    have_numpy = _numpy_available()
    i = 0
    while i < len(lines):
        if _FENCE.match(lines[i]):
            marker = lines[i - 1] if i > 0 else ""
            skipped = _SKIP_MARK in marker or (
                _NUMPY_MARK in marker and not have_numpy
            )
            start = i + 1
            body: List[str] = []
            i += 1
            while i < len(lines) and not _FENCE_END.match(lines[i]):
                body.append(lines[i])
                i += 1
            blocks.append((start + 1, "\n".join(body), skipped))
        i += 1
    return blocks


def check_file(path: Path) -> List[str]:
    """Execute every runnable block of ``path``; return failure descriptions."""
    failures: List[str] = []
    namespace: dict = {"__name__": f"docsnippet:{path.name}"}
    ran = skipped = 0
    for line, source, skip in extract_blocks(path.read_text(encoding="utf-8")):
        if skip:
            skipped += 1
            continue
        ran += 1
        stdout = io.StringIO()
        try:
            code = compile(source, f"{path}:{line}", "exec")
            with redirect_stdout(stdout):
                exec(code, namespace)
        except Exception:
            failures.append(
                f"{path}:{line}: snippet raised\n{traceback.format_exc(limit=5)}"
            )
    print(f"  {path.relative_to(REPO_ROOT)}: {ran} snippet(s) ran, {skipped} skipped")
    return failures


def main(argv: List[str]) -> int:
    sys.path.insert(0, str(SRC))
    targets = [Path(arg) for arg in argv] or sorted((REPO_ROOT / "docs").glob("*.md"))
    if not targets:
        print("no documentation files found", file=sys.stderr)
        return 2
    print(f"checking {len(targets)} documentation file(s)")
    failures: List[str] = []
    for path in targets:
        failures.extend(check_file(path))
    if failures:
        print(f"\n{len(failures)} failing snippet(s):", file=sys.stderr)
        for failure in failures:
            print(f"\n{failure}", file=sys.stderr)
        return 1
    print("all documentation snippets ran cleanly")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
