#!/usr/bin/env python3
"""Regenerate the golden result files pinned by ``tests/test_golden.py``.

Each golden file is the serialized ``ExperimentResult.to_dict()`` (via
``to_json``) of one registered experiment's quick run.  The golden suite
asserts that every future refactor reproduces these numbers exactly -- so
only regenerate them when a change is *supposed* to alter results, and say
why in the commit message.

Usage::

    PYTHONPATH=src python tools/make_golden.py [NAME ...]

With no arguments every registered experiment is regenerated, plus the
campaign-report golden pinned by ``tests/test_campaign.py``
(``tests/golden/campaign/report.json``); pass the pseudo-name ``campaign``
to regenerate only that one.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "..", "tests", "golden")
TESTS_DIR = os.path.join(os.path.dirname(__file__), "..", "tests")


def write_campaign_golden() -> None:
    """Regenerate the campaign-report golden (version-pinned, see the test)."""
    sys.path.insert(0, TESTS_DIR)
    from test_campaign import build_campaign_golden

    with tempfile.TemporaryDirectory() as store_root:
        payload = build_campaign_golden(store_root)
    path = os.path.join(GOLDEN_DIR, "campaign", "report.json")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {os.path.relpath(path)}")


def main(argv) -> int:
    from repro.api import get_experiment, list_experiments

    names = argv or [spec.name for spec in list_experiments()] + ["campaign"]
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for name in names:
        if name == "campaign":
            write_campaign_golden()
            continue
        spec = get_experiment(name)
        result = spec.run(quick=True)
        path = os.path.join(GOLDEN_DIR, f"{name}.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(result.to_json(indent=2))
            handle.write("\n")
        print(f"wrote {os.path.relpath(path)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
