#!/usr/bin/env python3
"""Regenerate the golden result files pinned by ``tests/test_golden.py``.

Each golden file is the serialized ``ExperimentResult.to_dict()`` (via
``to_json``) of one registered experiment's quick run.  The golden suite
asserts that every future refactor reproduces these numbers exactly -- so
only regenerate them when a change is *supposed* to alter results, and say
why in the commit message.

Usage::

    PYTHONPATH=src python tools/make_golden.py [NAME ...]

With no arguments every registered experiment is regenerated.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "..", "tests", "golden")


def main(argv) -> int:
    from repro.api import get_experiment, list_experiments

    names = argv or [spec.name for spec in list_experiments()]
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for name in names:
        spec = get_experiment(name)
        result = spec.run(quick=True)
        path = os.path.join(GOLDEN_DIR, f"{name}.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(result.to_json(indent=2))
            handle.write("\n")
        print(f"wrote {os.path.relpath(path)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
