"""Reproduction of *Improving Performance Guarantees in Wormhole Mesh NoC
Designs* (Panic et al., DATE 2016).

The package is organised in five layers:

* :mod:`repro.geometry` / :mod:`repro.routing` -- mesh coordinates, ports and
  XY routing, shared by everything else;
* :mod:`repro.core` -- the paper's contribution: WaP packetization, WaW
  weighted arbitration, the time-composable WCTT analyses, per-core upper
  bound delays and the router area model;
* :mod:`repro.noc` -- a cycle-accurate flit-level wormhole mesh simulator
  (the reproduction's substitute for SoCLib + gNoCSim);
* :mod:`repro.manycore` / :mod:`repro.workloads` -- the evaluated platform
  (cores, caches, memory controller, placements) and its workloads
  (EEMBC-like profiles, the 3D path-planning avionics application, synthetic
  traffic);
* :mod:`repro.experiments` -- one driver per table/figure of the paper.

Quick start::

    from repro import regular_mesh_config, waw_wap_config, make_wctt_analysis
    from repro.geometry import Coord

    regular = make_wctt_analysis(regular_mesh_config(8, max_packet_flits=4))
    print(regular.wctt_packet(Coord(7, 7), Coord(0, 0), packet_flits=1))

See README.md for installation and the full tour, DESIGN.md for the system
inventory and EXPERIMENTS.md for the paper-vs-measured comparison.
"""

from .geometry import Coord, Mesh, Port
from .routing import Hop, xy_output_port, xy_route
from .core import (
    ArbitrationPolicy,
    Flow,
    FlowSet,
    MessageConfig,
    MemoryTiming,
    NoCConfig,
    PacketizationPolicy,
    RegularMeshWCTTAnalysis,
    RouterTiming,
    UBDTable,
    WaWWaPWCTTAnalysis,
    WeightTable,
    make_wctt_analysis,
    regular_mesh_config,
    waw_wap_config,
    wctt_map,
    wctt_summary,
)
from .noc import Network
from .manycore import ManycoreSystem, Placement, standard_placements

__version__ = "1.0.0"

__all__ = [
    "Coord",
    "Mesh",
    "Port",
    "Hop",
    "xy_output_port",
    "xy_route",
    "ArbitrationPolicy",
    "Flow",
    "FlowSet",
    "MessageConfig",
    "MemoryTiming",
    "NoCConfig",
    "PacketizationPolicy",
    "RegularMeshWCTTAnalysis",
    "RouterTiming",
    "UBDTable",
    "WaWWaPWCTTAnalysis",
    "WeightTable",
    "make_wctt_analysis",
    "regular_mesh_config",
    "waw_wap_config",
    "wctt_map",
    "wctt_summary",
    "Network",
    "ManycoreSystem",
    "Placement",
    "standard_placements",
    "__version__",
]
