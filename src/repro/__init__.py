"""Reproduction of *Improving Performance Guarantees in Wormhole Mesh NoC
Designs* (Panic et al., DATE 2016).

The package is organised in seven layers:

* :mod:`repro.geometry` -- coordinates and ports, shared by everything else;
* :mod:`repro.topology` -- the pluggable network structure: the
  :class:`Topology` interface with mesh / torus / ring / concentrated-mesh
  implementations and XY/YX dimension-ordered routing strategies
  (:mod:`repro.routing` remains as thin compatibility wrappers);
* :mod:`repro.core` -- the paper's contribution: WaP packetization, WaW
  weighted arbitration, the time-composable WCTT analyses, per-core upper
  bound delays and the router area model;
* :mod:`repro.noc` -- a cycle-accurate flit-level wormhole mesh simulator
  (the reproduction's substitute for SoCLib + gNoCSim);
* :mod:`repro.sim` -- pluggable simulation backends: the cycle-accurate
  reference and a bit-identical event-driven fast backend that skips idle
  cycles;
* :mod:`repro.manycore` / :mod:`repro.workloads` -- the evaluated platform
  (cores, caches, memory controller, placements) and its workloads
  (EEMBC-like profiles, the 3D path-planning avionics application, synthetic
  traffic);
* :mod:`repro.experiments` -- one registered driver per table/figure of the
  paper;
* :mod:`repro.api` -- the public surface: the fluent :class:`Scenario`
  builder and :func:`sweep` grid expansion, the uniform
  :class:`ExperimentResult` return type, the decorator-based experiment
  registry and the cache-aware parallel :class:`BatchEngine`;
* :mod:`repro.service` -- analysis as a service: a persistent daemon
  (``repro-experiments serve``) with an async job queue, request
  coalescing/dedup and the durable content-addressed :class:`ResultStore`
  shared with the batch engine;
* :mod:`repro.campaign` -- sharded, resumable sweep campaigns: a
  :class:`Campaign` chunks a job grid into content-addressed shards,
  checkpoints each one to the shared store (interrupt and resume with zero
  recomputation), blind-validates a held-out shard subset before unblinding
  the full result set, and emits a versioned structured
  :class:`CampaignReport`.

Quick start::

    from repro import Scenario, get_experiment, make_wctt_analysis
    from repro.geometry import Coord

    regular = Scenario.mesh(8).regular().max_packet_flits(4).build()
    print(make_wctt_analysis(regular).wctt_packet(Coord(7, 7), Coord(0, 0), packet_flits=1))

    result = get_experiment("table2").run(quick=True)
    print(result.to_json())

See README.md for installation, the experiment index and the full tour.
"""

from .geometry import Coord, Mesh, Port
from .topology import (
    ConcentratedMesh,
    Mesh2D,
    Ring,
    RoutingStrategy,
    Topology,
    Torus2D,
    as_topology,
    make_topology,
)
from .routing import Hop, xy_output_port, xy_route
from .api import (
    BatchEngine,
    BatchJob,
    BatchResult,
    ExperimentResult,
    ExperimentSpec,
    Scenario,
    ScenarioError,
    UnknownExperimentError,
    experiment,
    get_experiment,
    list_experiments,
    sweep,
    sweep_jobs,
)
from .core import (
    ArbitrationPolicy,
    Flow,
    FlowSet,
    MessageConfig,
    MemoryTiming,
    NoCConfig,
    PacketizationPolicy,
    RegularMeshWCTTAnalysis,
    RouterTiming,
    UBDTable,
    WaWWaPWCTTAnalysis,
    WeightTable,
    make_wctt_analysis,
    regular_mesh_config,
    waw_wap_config,
    wctt_map,
    wctt_summary,
)
from .sim import (
    CycleAccurateBackend,
    EventDrivenBackend,
    SimulationBackend,
    SimulationStallError,
    available_backends,
    make_backend,
)
from .noc import Network
from .manycore import ManycoreSystem, Placement, standard_placements
from .faults import (
    FaultModel,
    GilbertElliottFaults,
    IndependentFaults,
    MessageDeliveryError,
    ReliabilityConfig,
    make_fault_model,
)

from .service import ResultStore, StoreError, default_store_dir
from .campaign import Campaign, CampaignError, CampaignReport, HoldoutViolation
from .analysis import (
    AnalysisBackend,
    HolisticAnalysis,
    TrajectoryAnalysis,
    available_analysis_backends,
    evaluate_grid,
    make_analysis_backend,
    make_vector_analysis,
    vector_supported,
    vector_wctt_map,
    vector_wctt_summary,
)

__version__ = "1.7.0"

#: Service entry points resolved lazily (they pull in asyncio machinery
#: that most library users never touch).
_LAZY_SERVICE = ("ReproService", "ServiceClient", "ServiceError", "start_service_thread")


def __getattr__(name):
    if name in _LAZY_SERVICE:
        from . import service

        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(list(globals()) + list(_LAZY_SERVICE))


__all__ = [
    "Coord",
    "Mesh",
    "Port",
    "Topology",
    "RoutingStrategy",
    "Mesh2D",
    "Torus2D",
    "Ring",
    "ConcentratedMesh",
    "as_topology",
    "make_topology",
    "Hop",
    "xy_output_port",
    "xy_route",
    "ArbitrationPolicy",
    "Flow",
    "FlowSet",
    "MessageConfig",
    "MemoryTiming",
    "NoCConfig",
    "PacketizationPolicy",
    "RegularMeshWCTTAnalysis",
    "RouterTiming",
    "UBDTable",
    "WaWWaPWCTTAnalysis",
    "WeightTable",
    "make_wctt_analysis",
    "regular_mesh_config",
    "waw_wap_config",
    "wctt_map",
    "wctt_summary",
    "SimulationBackend",
    "SimulationStallError",
    "CycleAccurateBackend",
    "EventDrivenBackend",
    "available_backends",
    "make_backend",
    "Network",
    "ManycoreSystem",
    "Placement",
    "standard_placements",
    "FaultModel",
    "IndependentFaults",
    "GilbertElliottFaults",
    "ReliabilityConfig",
    "MessageDeliveryError",
    "make_fault_model",
    "BatchEngine",
    "BatchJob",
    "BatchResult",
    "ExperimentResult",
    "ExperimentSpec",
    "Scenario",
    "ScenarioError",
    "UnknownExperimentError",
    "experiment",
    "get_experiment",
    "list_experiments",
    "sweep",
    "sweep_jobs",
    "Campaign",
    "CampaignError",
    "CampaignReport",
    "HoldoutViolation",
    "AnalysisBackend",
    "HolisticAnalysis",
    "TrajectoryAnalysis",
    "available_analysis_backends",
    "make_analysis_backend",
    "ResultStore",
    "StoreError",
    "default_store_dir",
    "ReproService",
    "ServiceClient",
    "ServiceError",
    "start_service_thread",
    "__version__",
]
