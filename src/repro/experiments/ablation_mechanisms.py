"""Experiment E8 (ablation) -- how much each mechanism contributes.

The paper always evaluates WaP and WaW together.  This ablation separates
their contributions to the WCTT bound on the evaluated 8x8 memory-traffic
scenario:

* **regular**           -- round-robin arbitration, maximum-size packets;
* **WaP only**          -- round-robin arbitration, but every packet has the
  minimum size, so contenders can only hold ports for ``m`` flits (this is the
  regular-mesh analysis with the contender packet size forced to ``m``);
* **WaW only**          -- weighted arbitration, but packets keep the maximum
  size, so one arbitration round of an output port serves ``O x L`` flits;
* **WaW + WaP**         -- the paper's proposal.

It also contrasts the two contender-routing assumptions of the regular-mesh
analysis (``merging`` vs ``any_direction``), quantifying how much of the
regular design's blow-up comes from destination-agnostic contenders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis.reporting import format_table, format_title
from ..api import Scenario, experiment, unwrap
from ..core.flows import FlowSet
from ..core.wctt import wctt_summary
from ..core.wctt_regular import RegularMeshWCTTAnalysis
from ..core.wctt_weighted import WaWWaPWCTTAnalysis
from ..geometry import Coord

__all__ = ["AblationRow", "run", "report"]


@dataclass(frozen=True)
class AblationRow:
    """WCTT statistics of one design variant."""

    variant: str
    maximum: int
    average: float
    minimum: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "variant": self.variant,
            "max WCTT": self.maximum,
            "mean WCTT": round(self.average, 2),
            "min WCTT": self.minimum,
        }


@experiment(
    "ablation",
    description="Ablation -- WaP-only / WaW-only / WaW+WaP WCTT contributions",
    paper_reference="extension (ablation)",
    quick_params={"mesh_size": 4},
    sweep_axes={
        "size": lambda v: {"mesh_size": v},
        "packet_flits": lambda v: {"max_packet_flits": v},
    },
)
def run(*, mesh_size: int = 8, max_packet_flits: int = 4) -> List[AblationRow]:
    """Compute the ablation for one mesh size and maximum packet size."""
    regular_cfg = Scenario.mesh(mesh_size).regular().max_packet_flits(max_packet_flits).build()
    waw_cfg = Scenario.mesh(mesh_size).waw_wap().max_packet_flits(max_packet_flits).build()
    destination = regular_cfg.memory_controller
    flows = FlowSet.all_to_one(regular_cfg.mesh, destination)

    rows: List[AblationRow] = []

    def add(variant: str, analysis, packet_flits: int) -> None:
        summary = wctt_summary(analysis, flows, packet_flits=packet_flits, design_label=variant)
        rows.append(
            AblationRow(
                variant=variant,
                maximum=summary.maximum,
                average=summary.average,
                minimum=summary.minimum,
            )
        )

    # Baseline, both contender-routing assumptions.
    add(
        f"regular (L={max_packet_flits}, merging contenders)",
        RegularMeshWCTTAnalysis(regular_cfg, contender_policy="merging"),
        max_packet_flits,
    )
    add(
        f"regular (L={max_packet_flits}, any-direction contenders)",
        RegularMeshWCTTAnalysis(regular_cfg, contender_policy="any_direction"),
        max_packet_flits,
    )
    # WaP only: round-robin, but the arbitration slot shrinks to one flit.
    add(
        "WaP only (round-robin, 1-flit packets)",
        RegularMeshWCTTAnalysis(regular_cfg, contender_packet_flits=1),
        1,
    )
    # WaW only: weighted arbitration with maximum-size packets.  Modelled by
    # the weighted analysis with the minimum packet size set to L (every slot
    # of the weighted round is a maximum-size packet).
    waw_only_cfg = (
        Scenario.mesh(mesh_size)
        .waw_wap()
        .max_packet_flits(max_packet_flits)
        .min_packet_flits(max_packet_flits)
        .build()
    )
    add(
        f"WaW only (weighted, {max_packet_flits}-flit packets)",
        WaWWaPWCTTAnalysis.for_memory_traffic(waw_only_cfg, include_replies=False),
        max_packet_flits,
    )
    # The full proposal.
    add(
        "WaW + WaP (weighted, 1-flit packets)",
        WaWWaPWCTTAnalysis.for_memory_traffic(waw_cfg, include_replies=False),
        1,
    )
    return rows


def report(rows: Optional[List[AblationRow]] = None) -> str:
    rows = unwrap(rows) if rows is not None else unwrap(run())
    title = format_title("Ablation -- contribution of WaP and WaW to the WCTT bound (8x8, memory traffic)")
    table = format_table([r.as_dict() for r in rows])
    return f"{title}\n{table}"


def main() -> None:  # pragma: no cover - thin CLI wrapper
    print(report())


if __name__ == "__main__":  # pragma: no cover
    main()
