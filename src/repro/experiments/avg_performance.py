"""Experiment E6 -- average performance impact of WaW + WaP (Section IV).

The paper reports that the proposal costs less than 1 % of average
performance, because the only overhead it introduces in normal operation is
the extra control flit WaP adds to multi-flit messages (single-flit requests
are unaffected) and the weighted arbiter only redistributes bandwidth when
ports are saturated.

This experiment runs the *cycle-accurate* simulator (no upper-bound delays)
on two scenarios and compares the execution time of both design points:

* ``multiprogrammed`` -- every core of the mesh runs a (scaled-down)
  EEMBC-like profile and the makespan of the whole batch is measured;
* ``parallel`` -- the 16 threads of a balanced parallel workload run under
  the P0-style placement and the makespan is measured.

The reported figure is the relative slowdown of WaW+WaP versus the regular
design; it is expected to stay in the low single digits of a percent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis.reporting import format_table, format_title
from ..api import Scenario, experiment, unwrap
from ..core.config import NoCConfig
from ..manycore.placement import Placement
from ..manycore.system import ManycoreSystem
from ..workloads.eembc import autobench_suite
from ..workloads.parallel import ParallelWorkload

__all__ = ["AveragePerformancePoint", "run", "report"]


@dataclass(frozen=True)
class AveragePerformancePoint:
    """Makespan of both designs for one scenario."""

    scenario: str
    regular_cycles: int
    waw_wap_cycles: int

    @property
    def slowdown_percent(self) -> float:
        """Positive values mean WaW+WaP is slower than the regular design."""
        return (self.waw_wap_cycles / self.regular_cycles - 1.0) * 100.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "regular (cycles)": self.regular_cycles,
            "WaW+WaP (cycles)": self.waw_wap_cycles,
            "WaW+WaP slowdown (%)": round(self.slowdown_percent, 2),
        }


# ----------------------------------------------------------------------
# Scenario builders
# ----------------------------------------------------------------------
def _run_multiprogrammed(config: NoCConfig, *, scale: float) -> int:
    """Every node (except the MC) runs one scaled Autobench-like profile."""
    system = ManycoreSystem(config)
    suite = autobench_suite()
    nodes = [c for c in config.mesh.nodes() if c != config.memory_controller]
    for i, node in enumerate(nodes):
        profile = suite[i % len(suite)].scaled(scale)
        system.add_profile_core(node, profile)
    return system.run_to_completion()


def _run_parallel(config: NoCConfig, *, workload: ParallelWorkload) -> int:
    """The nodes closest to the memory controller run a parallel workload."""
    mesh = config.mesh
    mc = config.memory_controller
    nodes = sorted(
        (c for c in mesh.nodes() if c != mc), key=lambda c: (c.manhattan(mc), c.y, c.x)
    )
    if len(nodes) < workload.num_threads:
        raise ValueError(
            f"mesh {mesh} is too small for {workload.num_threads} threads"
        )
    placement = Placement("near-block")
    for thread_id in range(workload.num_threads):
        placement.assign(thread_id, nodes[thread_id])
    system = ManycoreSystem(config)
    system.add_parallel_workload(workload, placement)
    return system.run_to_completion()


@experiment(
    "avgperf",
    description="Average performance impact of WaW+WaP (cycle-accurate)",
    paper_reference="Section IV (average performance)",
    quick_params={"mesh_size": 3, "profile_scale": 0.001, "parallel_threads": 4},
    sweep_axes={
        "size": lambda v: {"mesh_size": v},
        "backend": lambda v: {"backend": v},
    },
)
def run(
    *,
    mesh_size: int = 4,
    profile_scale: float = 0.002,
    parallel_threads: int = 8,
    parallel_phases: int = 4,
    parallel_loads_per_phase: int = 40,
    parallel_compute_per_phase: int = 2_000,
    backend: str = "cycle",
) -> List[AveragePerformancePoint]:
    """Run both scenarios on both design points and collect the makespans.

    The default mesh size and workload scale keep the pure-Python simulation
    below a few seconds; larger values reproduce the same relative figures at
    higher confidence.  ``backend`` selects the simulation backend (``cycle``
    or ``event``); both produce identical makespans, ``event`` just gets
    there faster.
    """
    regular_cfg = Scenario.mesh(mesh_size).regular().backend(backend).build()
    waw_cfg = Scenario.mesh(mesh_size).waw_wap().backend(backend).build()

    points: List[AveragePerformancePoint] = []

    regular_mp = _run_multiprogrammed(regular_cfg, scale=profile_scale)
    waw_mp = _run_multiprogrammed(waw_cfg, scale=profile_scale)
    points.append(
        AveragePerformancePoint("multiprogrammed EEMBC-like", regular_mp, waw_mp)
    )

    workload = ParallelWorkload.balanced(
        "parallel-kernel",
        num_threads=parallel_threads,
        phases=parallel_phases,
        compute_cycles_per_phase=parallel_compute_per_phase,
        loads_per_phase=parallel_loads_per_phase,
        evictions_per_phase=max(1, parallel_loads_per_phase // 8),
    )
    regular_par = _run_parallel(regular_cfg, workload=workload)
    waw_par = _run_parallel(waw_cfg, workload=workload)
    points.append(AveragePerformancePoint("parallel application", regular_par, waw_par))

    return points


def report(points: Optional[List[AveragePerformancePoint]] = None) -> str:
    points = unwrap(points) if points is not None else unwrap(run())
    title = format_title("Average performance -- WaW+WaP vs regular wNoC (cycle-accurate simulation)")
    table = format_table([p.as_dict() for p in points])
    worst = max(p.slowdown_percent for p in points)
    note = (
        f"\nWorst observed WaW+WaP slowdown: {worst:.2f} % "
        "(the paper reports < 1 % for both scenario families)."
    )
    return f"{title}\n{table}{note}"


def main() -> None:  # pragma: no cover - thin CLI wrapper
    print(report())


if __name__ == "__main__":  # pragma: no cover
    main()
