"""Experiment E2 -- paper Table II: WCTT scaling with mesh size (1-flit packets).

For mesh sizes 2x2 .. 8x8, every node sends 1-flit packets to the memory
controller at R(0,0); the experiment reports the maximum, mean and minimum
time-composable WCTT over all flows for

* the regular wNoC (round-robin arbitration, analysis of
  :class:`~repro.core.wctt_regular.RegularMeshWCTTAnalysis`), and
* the WaW+WaP wNoC (weighted arbitration + minimum-size packets, analysis of
  :class:`~repro.core.wctt_weighted.WaWWaPWCTTAnalysis`).

The paper's qualitative findings reproduced here:

* the regular-mesh maximum (and mean) WCTT grows by roughly an order of
  magnitude per mesh-size step -- 4 orders of magnitude above the proposal at
  64 nodes -- while its minimum stays flat (the nodes adjacent to the
  destination);
* the WaW+WaP bounds grow polynomially and stay within a small factor of each
  other across all flows (uniform guarantees).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.reporting import format_table, format_title
from ..api import Scenario, experiment, unwrap
from ..core.flows import FlowSet
from ..core.wctt import WCTTSummary, make_wctt_analysis, wctt_summary
from ..core.wctt_weighted import WaWWaPWCTTAnalysis
from ..geometry import Coord

__all__ = ["Table2Row", "run", "report"]

#: Values printed in the paper, shown next to the measured rows by report().
PAPER_TABLE2 = {
    2: {"regular": (14, 10.0, 6), "waw_wap": (11, 9.0, 8)},
    3: {"regular": (123, 39.16, 9), "waw_wap": (32, 24.0, 17)},
    4: {"regular": (1071, 145.68, 9), "waw_wap": (64, 45.0, 31)},
    5: {"regular": (8895, 568.14, 9), "waw_wap": (108, 72.0, 49)},
    6: {"regular": (72447, 2375.85, 9), "waw_wap": (163, 105.0, 71)},
    7: {"regular": (584703, 10632.53, 9), "waw_wap": (230, 144.0, 97)},
    8: {"regular": (4698111, 50516.79, 9), "waw_wap": (310, 189.0, 127)},
}


@dataclass(frozen=True)
class Table2Row:
    """One mesh size of Table II: both designs side by side."""

    mesh: str
    regular: WCTTSummary
    waw_wap: WCTTSummary

    def as_dict(self) -> Dict[str, object]:
        return {
            "NxM": self.mesh,
            "regular max": self.regular.maximum,
            "regular mean": round(self.regular.average, 2),
            "regular min": self.regular.minimum,
            "WaW+WaP max": self.waw_wap.maximum,
            "WaW+WaP mean": round(self.waw_wap.average, 2),
            "WaW+WaP min": self.waw_wap.minimum,
        }

    @property
    def improvement_at_max(self) -> float:
        """How much the proposal lowers the worst WCTT for this mesh size."""
        return self.regular.maximum / self.waw_wap.maximum


@experiment(
    "table2",
    description="Table II -- WCTT scaling with mesh size, regular vs WaW+WaP",
    paper_reference="Table II",
    quick_params={"sizes": (2, 3, 4)},
    sweep_axes={
        "size": lambda v: {"sizes": (v,)},
        "packet_flits": lambda v: {"packet_flits": v},
        "topology": lambda v: {"topology": v},
    },
)
def run(
    *,
    sizes: Sequence[int] = (2, 3, 4, 5, 6, 7, 8),
    packet_flits: int = 1,
    destination: Optional[Coord] = None,
    topology: str = "mesh",
) -> List[Table2Row]:
    """Compute the Table II rows for the requested mesh sizes.

    ``topology`` extends the table beyond the paper: any registered topology
    kind (``mesh``, ``torus``, ``ring``, ``cmesh``) runs the same analysis,
    e.g. ``BatchEngine.sweep("table2", topology=("mesh", "torus"))``.  A
    ring interprets each requested size as its node count.
    """
    dst = destination if destination is not None else Coord(0, 0)
    rows: List[Table2Row] = []
    for size in sizes:
        base = Scenario.mesh(size, 1 if topology == "ring" else None)
        if topology != "mesh":
            base = base.topology(topology)
        regular_cfg = base.regular().max_packet_flits(packet_flits).build()
        waw_cfg = base.waw_wap().max_packet_flits(packet_flits).build()
        flows = FlowSet.all_to_one(regular_cfg.mesh, dst)

        regular_analysis = make_wctt_analysis(regular_cfg)
        waw_analysis = WaWWaPWCTTAnalysis.for_memory_traffic(waw_cfg, include_replies=False)

        rows.append(
            Table2Row(
                mesh=regular_cfg.topology.short_label(),
                regular=wctt_summary(
                    regular_analysis, flows, packet_flits=packet_flits, design_label="regular"
                ),
                waw_wap=wctt_summary(
                    waw_analysis, flows, packet_flits=packet_flits, design_label="WaW+WaP"
                ),
            )
        )
    return rows


def report(rows: Optional[List[Table2Row]] = None, *, include_paper: bool = True) -> str:
    """Render the Table II reproduction, optionally next to the paper's values."""
    rows = unwrap(rows) if rows is not None else unwrap(run())
    title = format_title("Table II -- WCTT (cycles) for different mesh sizes, 1-flit packets")
    body = format_table([r.as_dict() for r in rows])
    sections = [title, body]
    if include_paper:
        paper_rows = []
        for size, values in PAPER_TABLE2.items():
            paper_rows.append(
                {
                    "NxM": f"{size}x{size}",
                    "regular max": values["regular"][0],
                    "regular mean": values["regular"][1],
                    "regular min": values["regular"][2],
                    "WaW+WaP max": values["waw_wap"][0],
                    "WaW+WaP mean": values["waw_wap"][1],
                    "WaW+WaP min": values["waw_wap"][2],
                }
            )
        sections.append(format_title("Paper values (for reference)", underline="-"))
        sections.append(format_table(paper_rows))
    return "\n".join(sections)


def main() -> None:  # pragma: no cover - thin CLI wrapper
    print(report())


if __name__ == "__main__":  # pragma: no cover
    main()
