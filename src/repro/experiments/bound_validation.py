"""Experiment E9 (validation) -- analytical bounds vs cycle-accurate measurements.

For a set of mesh sizes and for both design points, the cycle-accurate
simulator is driven with the most adversarial congestion it can express
against three representative victim flows (the nearest node, a mid-distance
node and the farthest node, all towards the memory controller).  The worst
observed probe traversal time is compared against the analytical WCTT bound
of the corresponding design point.

Two properties are checked and reported:

* **safety** -- no observed traversal exceeds its bound (this is also
  enforced by the test suite);
* **tightness** -- the observed worst case as a fraction of the bound.  The
  WaW+WaP bounds are expected to be much tighter than the regular-mesh
  bounds, whose pessimism grows with distance (finite buffers cannot sustain
  the unbounded backlog the time-composable analysis must assume).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.reporting import format_table, format_title
from ..analysis.validation import BoundValidationResult, validate_design
from ..api import Scenario, experiment, unwrap

__all__ = ["ValidationRow", "run", "report"]


@dataclass(frozen=True)
class ValidationRow:
    """One bound-vs-measurement comparison."""

    mesh: str
    design: str
    flow: str
    bound: int
    observed: int
    safe: bool
    tightness: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "mesh": self.mesh,
            "design": self.design,
            "flow": self.flow,
            "analytical bound": self.bound,
            "observed worst": self.observed,
            "safe": self.safe,
            "observed/bound": round(self.tightness, 3),
        }


def _to_row(mesh_label: str, result: BoundValidationResult) -> ValidationRow:
    return ValidationRow(
        mesh=mesh_label,
        design=result.design,
        flow=f"{result.source}->{result.destination}",
        bound=result.analytical_bound,
        observed=result.observed_worst,
        safe=result.is_safe,
        tightness=result.tightness,
    )


@experiment(
    "validation",
    description="Analytical bounds vs adversarial cycle-accurate measurements",
    paper_reference="extension (validation)",
    quick_params={"mesh_sizes": (3,), "congestion_cycles": 600},
    sweep_axes={
        "size": lambda v: {"mesh_sizes": (v,)},
        "packet_flits": lambda v: {"max_packet_flits": v},
        "backend": lambda v: {"backend": v},
    },
)
def run(
    *,
    mesh_sizes: Sequence[int] = (3, 4),
    congestion_cycles: int = 1_200,
    max_packet_flits: int = 1,
    backend: str = "cycle",
) -> List[ValidationRow]:
    """Validate both designs on the requested mesh sizes.

    The defaults keep the pure-Python simulation short (a few seconds);
    larger meshes and longer congestion windows only make the observed worst
    cases approach their bounds more closely.  ``backend`` selects the
    simulation backend; the observed traversal times are identical under
    both.
    """
    rows: List[ValidationRow] = []
    for size in mesh_sizes:
        label = f"{size}x{size}"
        for config in (
            Scenario.mesh(size)
            .regular()
            .max_packet_flits(max_packet_flits)
            .backend(backend)
            .build(),
            Scenario.mesh(size)
            .waw_wap()
            .max_packet_flits(max_packet_flits)
            .backend(backend)
            .build(),
        ):
            for result in validate_design(config, congestion_cycles=congestion_cycles):
                rows.append(_to_row(label, result))
    return rows


def report(rows: Optional[List[ValidationRow]] = None) -> str:
    rows = unwrap(rows) if rows is not None else unwrap(run())
    title = format_title("Bound validation -- analytical WCTT vs adversarial simulation")
    table = format_table([r.as_dict() for r in rows])
    all_safe = all(r.safe for r in rows)
    note = (
        "\nAll observed traversals stay below their analytical bounds."
        if all_safe
        else "\nWARNING: at least one observed traversal exceeded its bound!"
    )
    return f"{title}\n{table}{note}"


def main() -> None:  # pragma: no cover - thin CLI wrapper
    print(report())


if __name__ == "__main__":  # pragma: no cover
    main()
