"""Experiment E7 -- router area overhead of WaW + WaP (Section III, < 5 % claim).

The paper states that, following the NoC area decomposition of Roca [24], the
area increase of the proposal stays below 5 % of the NoC area: WaW only adds
per-input flit counters and a comparison tree to each output-port arbiter,
and WaP only adds a configuration register and slicing control to the NIC's
existing packetization logic.

This driver evaluates the parametric gate-count model of
:mod:`repro.core.area` for the evaluated 64-node configuration (and a couple
of sensitivity points on buffer depth and link width) and reports the
per-component breakdown plus the relative overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.reporting import format_key_values, format_table, format_title
from ..api import Scenario, experiment, unwrap
from ..core.area import AreaParameters, router_area, waw_wap_overhead
from ..core.config import NoCConfig

__all__ = ["AreaPoint", "run", "report"]


@dataclass(frozen=True)
class AreaPoint:
    """Relative overhead for one hardware configuration."""

    label: str
    buffer_depth: int
    link_width_bits: int
    baseline_gates: float
    enhanced_gates: float

    @property
    def overhead_percent(self) -> float:
        return (self.enhanced_gates / self.baseline_gates - 1.0) * 100.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "configuration": self.label,
            "buffer depth (flits)": self.buffer_depth,
            "link width (bits)": self.link_width_bits,
            "baseline router (gates)": round(self.baseline_gates),
            "WaW+WaP router (gates)": round(self.enhanced_gates),
            "overhead (%)": round(self.overhead_percent, 2),
        }


@experiment(
    "area",
    description="Router area overhead of WaW+WaP (< 5 % claim)",
    paper_reference="Section III (area)",
    sweep_axes={"size": lambda v: {"config": Scenario.mesh(v).waw_wap().build()}},
)
def run(
    *,
    config: Optional[NoCConfig] = None,
    sensitivity: Sequence[Tuple[int, int]] = ((2, 132), (4, 132), (8, 132), (4, 64), (4, 256)),
) -> List[AreaPoint]:
    """Evaluate the area model for the evaluated system and sensitivity points."""
    base_config = config if config is not None else Scenario.mesh(8).waw_wap().build()
    points: List[AreaPoint] = []

    def evaluate(label: str, buffer_depth: int, link_width: int) -> AreaPoint:
        params = AreaParameters(
            flit_width_bits=link_width,
            buffer_depth_flits=buffer_depth,
            max_weight=base_config.mesh.num_nodes,
        )
        baseline = router_area(params).total
        enhanced = router_area(params, with_waw=True, with_wap=True).total
        return AreaPoint(label, buffer_depth, link_width, baseline, enhanced)

    points.append(
        evaluate("evaluated 64-node system", base_config.buffer_depth, base_config.messages.link_width_bits)
    )
    for depth, width in sensitivity:
        if depth == base_config.buffer_depth and width == base_config.messages.link_width_bits:
            continue
        points.append(evaluate(f"buffers={depth}, link={width}b", depth, width))
    return points


def report(points: Optional[List[AreaPoint]] = None, *, config: Optional[NoCConfig] = None) -> str:
    base_config = config if config is not None else Scenario.mesh(8).waw_wap().build()
    points = unwrap(points) if points is not None else unwrap(run(config=base_config))
    title = format_title("Router area overhead of WaW + WaP (gate-equivalent model)")
    table = format_table([p.as_dict() for p in points])
    breakdown = router_area(
        AreaParameters.from_config(base_config), with_waw=True, with_wap=True
    )
    detail = format_key_values({k: round(v) for k, v in breakdown.as_dict().items()})
    total = waw_wap_overhead(base_config) * 100.0
    note = (
        f"\nWhole-NoC overhead for the evaluated configuration: {total:.2f} % "
        "(the paper reports < 5 %)."
    )
    return f"{title}\n{table}\n\nPer-component breakdown (evaluated configuration):\n{detail}{note}"


def main() -> None:  # pragma: no cover - thin CLI wrapper
    print(report())


if __name__ == "__main__":  # pragma: no cover
    main()
