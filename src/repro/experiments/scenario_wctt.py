"""Experiment E11 -- WCTT bound summary of a single :class:`Scenario`.

The service-era complement to the table experiments: where ``table2`` walks
a fixed family of design points, this driver evaluates the analytical WCTT
bound for *one arbitrary scenario* described by its JSON-safe dict form
(:meth:`Scenario.to_dict`).  That makes any ``sweep()`` grid submittable to
the batch engine or to a running analysis daemon one design point at a
time -- each point hashing (and therefore caching and deduplicating)
independently::

    from repro.api import Scenario, sweep
    from repro.service import ServiceClient

    grid = sweep(Scenario.mesh(4), design=("regular", "waw_wap"))
    ServiceClient(port=8537).submit_scenarios(grid)

The evaluation is the paper's all-to-one memory-traffic pattern: every node
sends to the scenario's memory controller, and the packet WCTT bound of the
scenario's design (regular or WaW+WaP analysis, chosen by
:func:`make_wctt_analysis`) is summarised over all flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Union

from ..analysis.reporting import format_table, format_title
from ..api.registry import experiment
from ..api.results import unwrap
from ..api.scenario import Scenario
from ..core import FlowSet, make_wctt_analysis, wctt_summary

__all__ = ["ScenarioWCTTPoint", "run", "report"]


@dataclass(frozen=True)
class ScenarioWCTTPoint:
    """The WCTT bound summary of one evaluated design point."""

    label: str
    design: str
    topology: str
    nodes: int
    packet_flits: int
    wctt_max: int
    wctt_mean: float
    wctt_min: int

    def as_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.label,
            "design": self.design,
            "topology": self.topology,
            "nodes": self.nodes,
            "packet flits": self.packet_flits,
            "WCTT max": self.wctt_max,
            "WCTT mean": self.wctt_mean,
            "WCTT min": self.wctt_min,
        }


#: Accepted values for the ``engine`` parameter of :func:`run`.
ENGINES = ("auto", "vector", "scalar")


@experiment(
    "scenario_wctt",
    description="WCTT bound summary of one arbitrary Scenario design point",
    paper_reference="Section III (analysis)",
    sweep_axes={
        "packet_flits": lambda v: {"packet_flits": v},
        "scenario": lambda v: {"scenario": v.to_dict() if isinstance(v, Scenario) else v},
        "engine": lambda v: {"engine": v},
        "analysis": lambda v: {"analysis": v},
    },
)
def run(
    *,
    scenario: Optional[Union[Scenario, Mapping[str, Any]]] = None,
    packet_flits: int = 1,
    engine: str = "auto",
    analysis: Optional[str] = None,
) -> List[ScenarioWCTTPoint]:
    """Evaluate the WCTT bound summary for ``scenario``.

    ``scenario`` is a :class:`Scenario` or its :meth:`Scenario.to_dict`
    form (the shape a daemon submission travels in); the default is the
    4x4 WaW+WaP mesh.  ``packet_flits`` is the analysed packet length.

    ``engine`` selects the evaluation path: ``"auto"`` (default) uses the
    numpy-vectorized engine of :mod:`repro.analysis.vector` whenever the
    design point supports it and falls back to the scalar analysis
    otherwise; ``"vector"`` demands the vectorized path (raises with the
    reason when unsupported); ``"scalar"`` forces the per-flow reference
    path.  Both paths produce bit-identical summaries (enforced by
    ``tests/test_differential_analysis.py``), so the flag never changes
    results -- only throughput.

    ``analysis`` selects a registered :class:`~repro.analysis.AnalysisBackend`
    (``regular``, ``weighted``, ``holistic``, ``trajectory``, ``vector``)
    instead of the paper's default dispatch; the scenario's own
    ``Scenario.analysis(...)`` selection is honoured when the parameter is
    left ``None``.  Unlike ``engine`` this *changes numbers* -- backends are
    competing bounds -- so an explicit backend takes precedence over the
    engine flag.
    """
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    if scenario is None:
        scenario = Scenario.mesh(4).waw_wap()
    elif isinstance(scenario, Mapping):
        scenario = Scenario.from_dict(scenario)
    elif not isinstance(scenario, Scenario):
        raise TypeError(
            f"scenario must be a Scenario or its dict form, got {type(scenario).__name__}"
        )
    config = scenario.build()

    effective_analysis = analysis if analysis is not None else scenario.settings.get("analysis")
    label = scenario.label()
    if effective_analysis is not None:
        from ..analysis.backends import make_analysis_backend

        backend = make_analysis_backend(effective_analysis)
        backend.require(config)
        summary = backend.wctt_summary(config, packet_flits=packet_flits)
        if "analysis" not in scenario.settings:
            label = f"{label}-{backend.name}"
    else:
        from ..analysis.vector import vector_supported, vector_wctt_summary

        reason = vector_supported(config)
        if engine == "vector" and reason is not None:
            raise ValueError(f"engine='vector' cannot evaluate this scenario: {reason}")
        if engine != "scalar" and reason is None:
            summary = vector_wctt_summary(config, packet_flits=packet_flits)
        else:
            flows = FlowSet.all_to_one(config.mesh, config.memory_controller)
            analysis_obj = make_wctt_analysis(config)
            summary = wctt_summary(analysis_obj, flows, packet_flits=packet_flits)
    return [
        ScenarioWCTTPoint(
            label=label,
            design=summary.design,
            topology=config.topology.short_label(),
            nodes=config.mesh.num_nodes,
            packet_flits=packet_flits,
            wctt_max=summary.maximum,
            wctt_mean=round(summary.average, 2),
            wctt_min=summary.minimum,
        )
    ]


def report(
    points: Optional[List[ScenarioWCTTPoint]] = None,
    *,
    scenario: Optional[Union[Scenario, Mapping[str, Any]]] = None,
    packet_flits: int = 1,
    engine: str = "auto",
    analysis: Optional[str] = None,
) -> str:
    points = (
        unwrap(points)
        if points is not None
        else unwrap(
            run(
                scenario=scenario,
                packet_flits=packet_flits,
                engine=engine,
                analysis=analysis,
            )
        )
    )
    title = format_title("WCTT bound summary (all-to-one memory traffic)")
    table = format_table([p.as_dict() for p in points])
    return f"{title}\n{table}"


def main() -> None:  # pragma: no cover - thin CLI wrapper
    print(report())


if __name__ == "__main__":  # pragma: no cover
    main()
