"""Experiment drivers, one per table/figure of the paper plus ablations.

========================  =====================================================
Module                    Paper artefact
========================  =====================================================
``table1_weights``        Table I  -- WaW weights of router R(1,1) in a 2x2 mesh
``table2_wctt``           Table II -- WCTT vs mesh size, regular vs WaW+WaP
``table3_eembc``          Table III -- normalized per-core WCET of EEMBC (8x8)
``fig2a_packet_size``     Figure 2(a) -- 3DPP WCET vs maximum packet size
``fig2b_placement``       Figure 2(b) -- 3DPP WCET vs task placement
``avg_performance``       Section IV -- average performance impact (< 1 %)
``area_overhead``         Section III -- router area overhead (< 5 %)
``ablation_mechanisms``   (extension) WaP-only / WaW-only decomposition
``bound_validation``      (extension) analytical bounds vs simulation
``bound_comparison``      (extension) competing analysis backends, tightness report
``reliability_sweep``     (extension) Monte-Carlo latency under link faults
``scenario_wctt``         (extension) WCTT summary of one arbitrary Scenario
``runner``                command-line front-end (``repro-experiments``)
========================  =====================================================
"""

from . import (
    ablation_mechanisms,
    area_overhead,
    avg_performance,
    bound_comparison,
    bound_validation,
    fig2a_packet_size,
    fig2b_placement,
    reliability_sweep,
    scenario_wctt,
    table1_weights,
    table2_wctt,
    table3_eembc,
)

__all__ = [
    "ablation_mechanisms",
    "area_overhead",
    "avg_performance",
    "bound_comparison",
    "bound_validation",
    "fig2a_packet_size",
    "fig2b_placement",
    "reliability_sweep",
    "scenario_wctt",
    "table1_weights",
    "table2_wctt",
    "table3_eembc",
]
