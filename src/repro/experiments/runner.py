"""Command-line entry point running every experiment of the reproduction.

Usage (installed as the ``repro-experiments`` console script)::

    repro-experiments                 # run everything with default parameters
    repro-experiments table2 fig2a    # run a subset
    repro-experiments --list          # list available experiments
    repro-experiments --quick         # smaller meshes / shorter simulations

Each experiment corresponds to one table or figure of the paper (plus the
ablation, validation and area studies); see DESIGN.md for the experiment
index and EXPERIMENTS.md for paper-vs-measured numbers.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List

from . import (
    ablation_mechanisms,
    area_overhead,
    avg_performance,
    bound_validation,
    fig2a_packet_size,
    fig2b_placement,
    table1_weights,
    table2_wctt,
    table3_eembc,
)

__all__ = ["EXPERIMENTS", "main", "run_experiment"]

#: Experiment name -> (description, default report builder, quick report builder).
EXPERIMENTS: Dict[str, Dict[str, Callable[[], str]]] = {
    "table1": {
        "description": "Table I  -- WaW arbitration weights of router R(1,1) in a 2x2 mesh",
        "default": lambda: table1_weights.report(),
        "quick": lambda: table1_weights.report(),
    },
    "table2": {
        "description": "Table II -- WCTT scaling with mesh size, regular vs WaW+WaP",
        "default": lambda: table2_wctt.report(),
        "quick": lambda: table2_wctt.report(table2_wctt.run(sizes=(2, 3, 4))),
    },
    "table3": {
        "description": "Table III -- per-core normalized WCET of EEMBC on an 8x8 mesh",
        "default": lambda: table3_eembc.report(),
        "quick": lambda: table3_eembc.report(table3_eembc.run(mesh_size=4)),
    },
    "fig2a": {
        "description": "Fig 2(a) -- 3DPP WCET vs maximum packet size (L1/L4/L8)",
        "default": lambda: fig2a_packet_size.report(),
        "quick": lambda: fig2a_packet_size.report(),
    },
    "fig2b": {
        "description": "Fig 2(b) -- 3DPP WCET across placements P0..P3",
        "default": lambda: fig2b_placement.report(),
        "quick": lambda: fig2b_placement.report(),
    },
    "avgperf": {
        "description": "Average performance impact of WaW+WaP (cycle-accurate)",
        "default": lambda: avg_performance.report(),
        "quick": lambda: avg_performance.report(
            avg_performance.run(mesh_size=3, profile_scale=0.001, parallel_threads=4)
        ),
    },
    "area": {
        "description": "Router area overhead of WaW+WaP (< 5 % claim)",
        "default": lambda: area_overhead.report(),
        "quick": lambda: area_overhead.report(),
    },
    "ablation": {
        "description": "Ablation -- WaP-only / WaW-only / WaW+WaP WCTT contributions",
        "default": lambda: ablation_mechanisms.report(),
        "quick": lambda: ablation_mechanisms.report(ablation_mechanisms.run(mesh_size=4)),
    },
    "validation": {
        "description": "Analytical bounds vs adversarial cycle-accurate measurements",
        "default": lambda: bound_validation.report(),
        "quick": lambda: bound_validation.report(
            bound_validation.run(mesh_sizes=(3,), congestion_cycles=600)
        ),
    },
}


def run_experiment(name: str, *, quick: bool = False) -> str:
    """Run one experiment by name and return its textual report."""
    if name not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {name!r}; known experiments: {known}")
    builder = EXPERIMENTS[name]["quick" if quick else "default"]
    return builder()


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of the wormhole-mesh NoC paper.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiments to run (default: all); see --list",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    parser.add_argument(
        "--quick", action="store_true", help="use smaller meshes / shorter simulations"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(EXPERIMENTS):
            print(f"{name:12s} {EXPERIMENTS[name]['description']}")
        return 0

    names = args.experiments if args.experiments else sorted(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("use --list to see the available experiments", file=sys.stderr)
        return 2

    for name in names:
        start = time.time()
        print(run_experiment(name, quick=args.quick))
        print(f"\n[{name} completed in {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
