"""Command-line front-end of the reproduction (``repro-experiments``).

The CLI is a thin layer over :mod:`repro.api`: experiments are discovered
through the decorator registry and executed through the cache-aware batch
engine.  Subcommands::

    repro-experiments run [NAMES...] [--quick] [--backend event] [--jobs N]
                          [--json -] [--csv F]
    repro-experiments list [--json]
    repro-experiments sweep --sizes 2,3,4 [--experiment table2] [--jobs N]
    repro-experiments export --cache-dir DIR [--json F] [--csv F] [NAMES...]

``--backend`` selects the simulation backend (``cycle`` or ``event``) for
the experiments that drive the cycle-accurate simulator; both backends
produce identical results, ``event`` skips idle cycles and is much faster.

The pre-subcommand invocation style keeps working: ``repro-experiments
table2 fig2a``, ``repro-experiments --list`` and ``repro-experiments
--quick`` are rewritten to the equivalent subcommand form.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..analysis.reporting import format_table
from ..api import (
    BatchEngine,
    BatchJob,
    BatchResult,
    UnknownExperimentError,
    get_experiment,
    list_experiments,
)
from ..sim import available_backends, normalize_backend_name

__all__ = ["EXPERIMENTS", "main", "run_experiment"]

_SUBCOMMANDS = ("run", "list", "sweep", "export")


def _build_legacy_experiments() -> Dict[str, Dict[str, Any]]:
    """The historical ``EXPERIMENTS`` mapping, now derived from the registry.

    Kept for backwards compatibility: name -> {description, default report
    builder, quick report builder}.  New code should use
    :func:`repro.api.get_experiment` instead.
    """
    table: Dict[str, Dict[str, Any]] = {}
    for spec in list_experiments():
        table[spec.name] = {
            "description": spec.description,
            "default": (lambda s=spec: s.report_text()),
            "quick": (lambda s=spec: s.report_text(quick=True)),
        }
    return table


#: Deprecated compatibility view of the registry (see _build_legacy_experiments).
EXPERIMENTS: Dict[str, Dict[str, Any]] = _build_legacy_experiments()


def run_experiment(name: str, *, quick: bool = False) -> str:
    """Run one experiment by name and return its textual report.

    Unknown names raise :class:`~repro.api.UnknownExperimentError` (a
    ``KeyError``) whose message lists close matches, e.g. ``tabel2`` suggests
    ``table2``.
    """
    return get_experiment(name).report_text(quick=quick)


# ----------------------------------------------------------------------
# Argument parsing
# ----------------------------------------------------------------------
def _normalise_argv(argv: List[str]) -> List[str]:
    """Rewrite the legacy invocation style into subcommand form."""
    if not argv:
        return ["run"]
    if argv[0] in _SUBCOMMANDS or argv[0] in ("-h", "--help"):
        return argv
    if "--list" in argv:
        return ["list"]
    return ["run"] + argv


def _csv_ints(text: str) -> List[int]:
    try:
        return [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated integers, got {text!r}")


def _csv_floats(text: str) -> List[float]:
    try:
        return [float(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated numbers, got {text!r}")


def _backend_name(text: str) -> str:
    """argparse type: resolve backend names and aliases, reject unknowns."""
    try:
        return normalize_backend_name(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error))


def _add_backend_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend", default=None, type=_backend_name, metavar="NAME",
        help=(
            "simulation backend for the simulating experiments "
            f"({', '.join(available_backends())}); results are identical, "
            "'event' skips idle cycles and is much faster"
        ),
    )


def _backend_params(name: str, backend: Optional[str]) -> Dict[str, Any]:
    """The run() params carrying ``--backend`` to experiments that accept it."""
    if backend is None:
        return {}
    spec = get_experiment(name)
    if not spec.supports_param("backend"):
        print(
            f"note: {name} does not simulate; --backend {backend} is ignored for it",
            file=sys.stderr,
        )
        return {}
    return {"backend": backend}


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for parallel execution (default: 1)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist results as JSON keyed by config hash in DIR",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every design point even if cached",
    )


def _add_export_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write results as JSON to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--csv", default=None, metavar="PATH",
        help="write results as CSV to PATH ('-' for stdout)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of the wormhole-mesh NoC paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="run experiments and print their reports / export their data"
    )
    run_parser.add_argument(
        "experiments", nargs="*", metavar="NAME",
        help="experiments to run (default: all); see 'list'",
    )
    run_parser.add_argument(
        "--quick", action="store_true",
        help="use smaller meshes / shorter simulations",
    )
    _add_backend_option(run_parser)
    _add_engine_options(run_parser)
    _add_export_options(run_parser)

    list_parser = subparsers.add_parser("list", help="list available experiments")
    list_parser.add_argument(
        "--json", action="store_true", help="machine-readable listing"
    )

    sweep_parser = subparsers.add_parser(
        "sweep", help="run one experiment over a parameter grid"
    )
    sweep_parser.add_argument(
        "--experiment", default="table2", metavar="NAME",
        help="experiment to sweep (default: table2)",
    )
    sweep_parser.add_argument(
        "--sizes", type=_csv_ints, default=None, metavar="N,N,...",
        help="mesh sizes to sweep, e.g. 2,3,4",
    )
    sweep_parser.add_argument(
        "--packet-flits", type=_csv_ints, default=None, metavar="N,N,...",
        help="maximum packet sizes to sweep, e.g. 1,4,8",
    )
    sweep_parser.add_argument(
        "--fault-rates", type=_csv_floats, default=None, metavar="R,R,...",
        help=(
            "per-link fault rates to sweep (reliability_sweep), "
            "e.g. 0,0.005,0.02"
        ),
    )
    sweep_parser.add_argument(
        "--trials", type=int, default=None, metavar="N",
        help="Monte-Carlo trials per design point (reliability_sweep)",
    )
    sweep_parser.add_argument(
        "--quick", action="store_true",
        help="apply the experiment's quick parameters to every design point",
    )
    _add_backend_option(sweep_parser)
    _add_engine_options(sweep_parser)
    _add_export_options(sweep_parser)

    export_parser = subparsers.add_parser(
        "export", help="re-export previously cached results as JSON/CSV"
    )
    export_parser.add_argument(
        "experiments", nargs="*", metavar="NAME",
        help="restrict the export to these experiments (default: all cached)",
    )
    export_parser.add_argument(
        "--cache-dir", required=True, metavar="DIR",
        help="cache directory written by 'run'/'sweep' --cache-dir",
    )
    _add_export_options(export_parser)

    return parser


# ----------------------------------------------------------------------
# Output helpers
# ----------------------------------------------------------------------
def _write_exports(results: Sequence[BatchResult], args: argparse.Namespace) -> None:
    for path, render in ((args.json, BatchEngine.to_json), (args.csv, BatchEngine.to_csv)):
        if path is None:
            continue
        payload = render(results)
        if path == "-":
            print(payload)
        else:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(payload)
            print(f"wrote {len(results)} result(s) to {path}", file=sys.stderr)


def _exports_use_stdout(args: argparse.Namespace) -> bool:
    return args.json == "-" or args.csv == "-"


def _print_report(result: BatchResult) -> None:
    if result.result.from_cache:
        # Rebuilt from the JSON cache: the native payload (and with it the
        # exact paper-style rendering) is gone, render the rows directly.
        print(f"{result.job.experiment} [cached {result.config_hash}]")
        rows = result.result.rows()
        print(format_table(rows) if rows else "(no rows)")
        print()
        return
    spec = get_experiment(result.job.experiment)
    print(spec.report(result.result))
    source = "cache" if result.cached else f"{result.duration_seconds:.1f}s"
    print(f"\n[{result.job.experiment} completed in {source}]\n")


def _resolve_names(names: Sequence[str]) -> Optional[List[str]]:
    """Validate experiment names, printing near-miss errors; None on failure."""
    resolved = list(names) if names else [spec.name for spec in list_experiments()]
    failed = False
    for name in resolved:
        try:
            get_experiment(name)
        except UnknownExperimentError as error:
            print(str(error), file=sys.stderr)
            failed = True
    if failed:
        print("use 'repro-experiments list' to see the available experiments", file=sys.stderr)
        return None
    return resolved


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _make_engine(args: argparse.Namespace) -> Optional[BatchEngine]:
    try:
        return BatchEngine(
            jobs=args.jobs, cache_dir=args.cache_dir, use_cache=not args.no_cache
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return None


def _cmd_run(args: argparse.Namespace) -> int:
    names = _resolve_names(args.experiments)
    if names is None:
        return 2
    engine = _make_engine(args)
    if engine is None:
        return 2
    results = engine.run_many(
        [
            BatchJob(
                experiment=name,
                params=_backend_params(name, args.backend),
                quick=args.quick,
            )
            for name in names
        ]
    )
    if not _exports_use_stdout(args):
        for result in results:
            _print_report(result)
    _write_exports(results, args)
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    specs = list_experiments()
    if args.json:
        import json

        print(
            json.dumps(
                [
                    {
                        "name": spec.name,
                        "description": spec.description,
                        "paper_reference": spec.paper_reference,
                        "sweep_axes": sorted(spec.sweep_axes),
                    }
                    for spec in specs
                ],
                indent=2,
            )
        )
        return 0
    for spec in specs:
        print(f"{spec.name:12s} {spec.description}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        get_experiment(args.experiment)
    except UnknownExperimentError as error:
        print(str(error), file=sys.stderr)
        return 2
    axes: Dict[str, List[Any]] = {}
    if args.sizes:
        axes["size"] = args.sizes
    if args.packet_flits:
        axes["packet_flits"] = args.packet_flits
    if args.fault_rates:
        axes["fault_rate"] = args.fault_rates
    if args.trials is not None:
        axes["trials"] = [args.trials]
    if not axes:
        print(
            "sweep needs at least one axis "
            "(--sizes, --packet-flits, --fault-rates and/or --trials)",
            file=sys.stderr,
        )
        return 2
    engine = _make_engine(args)
    if engine is None:
        return 2
    try:
        results = engine.sweep(
            args.experiment,
            quick=args.quick,
            base_params=_backend_params(args.experiment, args.backend),
            **axes,
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    if not _exports_use_stdout(args):
        print(
            format_table(
                [
                    {
                        "experiment": result.job.experiment,
                        "params": ", ".join(
                            f"{k}={v}" for k, v in sorted(result.job.params.items())
                        ),
                        "config hash": result.config_hash,
                        "cached": result.cached,
                        "rows": len(result.result.rows()),
                        "seconds": round(result.duration_seconds, 2),
                    }
                    for result in results
                ]
            )
        )
    _write_exports(results, args)
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    engine = BatchEngine(cache_dir=args.cache_dir)
    results = engine.cached_results()
    if args.experiments:
        wanted = set(args.experiments)
        results = [r for r in results if r.job.experiment in wanted]
    if not results:
        print("no cached results matched", file=sys.stderr)
        return 1
    if args.json is None and args.csv is None:
        args.json = "-"
    _write_exports(results, args)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    parser = _build_parser()
    args = parser.parse_args(_normalise_argv(argv))
    handlers: Dict[str, Callable[[argparse.Namespace], int]] = {
        "run": _cmd_run,
        "list": _cmd_list,
        "sweep": _cmd_sweep,
        "export": _cmd_export,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
