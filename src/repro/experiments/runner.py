"""Command-line front-end of the reproduction (``repro-experiments``).

The CLI is a thin layer over :mod:`repro.api`: experiments are discovered
through the decorator registry and executed through the cache-aware batch
engine.  Subcommands::

    repro-experiments run [NAMES...] [--quick] [--backend event] [--jobs N]
                          [--json -] [--csv F]
    repro-experiments list [--json]
    repro-experiments sweep --sizes 2,3,4 [--experiment table2] [--jobs N]
    repro-experiments export --cache-dir DIR [--json F] [--csv F] [NAMES...]

plus the analysis-service surface (:mod:`repro.service`)::

    repro-experiments serve [--port P] [--jobs N] [--store-dir DIR]
    repro-experiments submit [NAMES... | --experiment NAME --sizes 2,3]
                             [--quick] [--no-wait] [--json F] [--csv F]
    repro-experiments status HASH [HASH...]
    repro-experiments fetch [HASH...] [--json F] [--csv F]
    repro-experiments cache stats|clear [--store-dir DIR]

and the campaign surface (:mod:`repro.campaign` -- sharded, resumable,
blind-validated sweeps)::

    repro-experiments campaign run [NAMES... | --experiment NAME --sizes ...]
                          [--name TEXT] [--shard-size N] [--holdout N]
                          [--jobs N] [--store-dir DIR] [--fresh] [--json F]
    repro-experiments campaign resume ID [--jobs N] [--store-dir DIR] [--json F]
    repro-experiments campaign report ID [--store-dir DIR] [--json F]

``--backend`` selects the simulation backend (``cycle`` or ``event``) for
the experiments that drive the cycle-accurate simulator; both backends
produce identical results, ``event`` skips idle cycles and is much faster.
``--analysis`` selects the analysis backend (``regular``, ``weighted``,
``holistic``, ``trajectory``, ``vector``) for the experiments that accept
one (currently ``scenario_wctt``).

The pre-subcommand invocation style keeps working: ``repro-experiments
table2 fig2a``, ``repro-experiments --list`` and ``repro-experiments
--quick`` are rewritten to the equivalent subcommand form.
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..analysis.backends import (
    available_analysis_backends,
    normalize_analysis_backend_name,
)
from ..analysis.reporting import format_key_values, format_table
from ..api import (
    BatchEngine,
    BatchJob,
    BatchResult,
    ExperimentResult,
    UnknownExperimentError,
    get_experiment,
    list_experiments,
)
from ..sim import available_backends, normalize_backend_name

__all__ = ["EXPERIMENTS", "main", "run_experiment"]

_SUBCOMMANDS = (
    "run", "list", "sweep", "export", "serve", "submit", "status", "fetch",
    "cache", "campaign",
)


def _build_legacy_experiments() -> Dict[str, Dict[str, Any]]:
    """The historical ``EXPERIMENTS`` mapping, now derived from the registry.

    Kept for backwards compatibility: name -> {description, default report
    builder, quick report builder}.  New code should use
    :func:`repro.api.get_experiment` instead.
    """
    table: Dict[str, Dict[str, Any]] = {}
    for spec in list_experiments():
        table[spec.name] = {
            "description": spec.description,
            "default": (lambda s=spec: s.report_text()),
            "quick": (lambda s=spec: s.report_text(quick=True)),
        }
    return table


#: Deprecated compatibility view of the registry (see _build_legacy_experiments).
EXPERIMENTS: Dict[str, Dict[str, Any]] = _build_legacy_experiments()


def run_experiment(name: str, *, quick: bool = False) -> str:
    """Run one experiment by name and return its textual report.

    Unknown names raise :class:`~repro.api.UnknownExperimentError` (a
    ``KeyError``) whose message lists close matches, e.g. ``tabel2`` suggests
    ``table2``.
    """
    return get_experiment(name).report_text(quick=quick)


# ----------------------------------------------------------------------
# Argument parsing
# ----------------------------------------------------------------------
def _normalise_argv(argv: List[str]) -> List[str]:
    """Rewrite the legacy invocation style into subcommand form."""
    if not argv:
        return ["run"]
    if argv[0] in _SUBCOMMANDS or argv[0] in ("-h", "--help"):
        return argv
    if "--list" in argv:
        return ["list"]
    return ["run"] + argv


def _csv_ints(text: str) -> List[int]:
    try:
        return [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated integers, got {text!r}")


def _csv_floats(text: str) -> List[float]:
    try:
        return [float(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated numbers, got {text!r}")


def _backend_name(text: str) -> str:
    """argparse type: resolve backend names and aliases, reject unknowns."""
    try:
        return normalize_backend_name(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error))


def _add_backend_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend", default=None, type=_backend_name, metavar="NAME",
        help=(
            "simulation backend for the simulating experiments "
            f"({', '.join(available_backends())}); results are identical, "
            "'event' skips idle cycles and is much faster"
        ),
    )


def _backend_params(name: str, backend: Optional[str]) -> Dict[str, Any]:
    """The run() params carrying ``--backend`` to experiments that accept it."""
    if backend is None:
        return {}
    spec = get_experiment(name)
    if not spec.supports_param("backend"):
        print(
            f"note: {name} does not simulate; --backend {backend} is ignored for it",
            file=sys.stderr,
        )
        return {}
    return {"backend": backend}


def _analysis_name(text: str) -> str:
    """argparse type: resolve analysis-backend names and aliases."""
    try:
        return normalize_analysis_backend_name(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error))


def _add_analysis_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--analysis", default=None, type=_analysis_name, metavar="NAME",
        help=(
            "analysis backend for the experiments that accept one "
            f"({', '.join(available_analysis_backends())})"
        ),
    )


def _analysis_params(name: str, analysis: Optional[str]) -> Dict[str, Any]:
    """The run() params carrying ``--analysis`` to experiments that accept it."""
    if analysis is None:
        return {}
    spec = get_experiment(name)
    if not spec.supports_param("analysis"):
        print(
            f"note: {name} has a fixed analysis; --analysis {analysis} is "
            "ignored for it",
            file=sys.stderr,
        )
        return {}
    return {"analysis": analysis}


def _cli_params(name: str, args: argparse.Namespace) -> Dict[str, Any]:
    """Merge every option-derived run() param for one experiment."""
    params = _backend_params(name, args.backend)
    params.update(_analysis_params(name, getattr(args, "analysis", None)))
    return params


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for parallel execution (default: 1)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist results as JSON keyed by config hash in DIR",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every design point even if cached",
    )


def _add_export_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write results as JSON to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--csv", default=None, metavar="PATH",
        help="write results as CSV to PATH ('-' for stdout)",
    )


def _add_service_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--host", default=None, metavar="HOST",
        help="daemon address (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=None, metavar="PORT",
        help="daemon port (default: 8537)",
    )
    parser.add_argument(
        "--timeout", type=float, default=300.0, metavar="SECONDS",
        help="per-request timeout (default: 300)",
    )


def _add_store_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store-dir", default=None, metavar="DIR",
        help="durable result store directory (default: ~/.cache/repro)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of the wormhole-mesh NoC paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="run experiments and print their reports / export their data"
    )
    run_parser.add_argument(
        "experiments", nargs="*", metavar="NAME",
        help="experiments to run (default: all); see 'list'",
    )
    run_parser.add_argument(
        "--quick", action="store_true",
        help="use smaller meshes / shorter simulations",
    )
    _add_backend_option(run_parser)
    _add_analysis_option(run_parser)
    _add_engine_options(run_parser)
    _add_export_options(run_parser)

    list_parser = subparsers.add_parser("list", help="list available experiments")
    list_parser.add_argument(
        "--json", action="store_true", help="machine-readable listing"
    )

    sweep_parser = subparsers.add_parser(
        "sweep", help="run one experiment over a parameter grid"
    )
    sweep_parser.add_argument(
        "--experiment", default="table2", metavar="NAME",
        help="experiment to sweep (default: table2)",
    )
    sweep_parser.add_argument(
        "--sizes", type=_csv_ints, default=None, metavar="N,N,...",
        help="mesh sizes to sweep, e.g. 2,3,4",
    )
    sweep_parser.add_argument(
        "--packet-flits", type=_csv_ints, default=None, metavar="N,N,...",
        help="maximum packet sizes to sweep, e.g. 1,4,8",
    )
    sweep_parser.add_argument(
        "--fault-rates", type=_csv_floats, default=None, metavar="R,R,...",
        help=(
            "per-link fault rates to sweep (reliability_sweep), "
            "e.g. 0,0.005,0.02"
        ),
    )
    sweep_parser.add_argument(
        "--trials", type=int, default=None, metavar="N",
        help="Monte-Carlo trials per design point (reliability_sweep)",
    )
    sweep_parser.add_argument(
        "--quick", action="store_true",
        help="apply the experiment's quick parameters to every design point",
    )
    _add_backend_option(sweep_parser)
    _add_analysis_option(sweep_parser)
    _add_engine_options(sweep_parser)
    _add_export_options(sweep_parser)

    export_parser = subparsers.add_parser(
        "export", help="re-export previously cached results as JSON/CSV"
    )
    export_parser.add_argument(
        "experiments", nargs="*", metavar="NAME",
        help="restrict the export to these experiments (default: all cached)",
    )
    export_parser.add_argument(
        "--cache-dir", required=True, metavar="DIR",
        help="cache directory written by 'run'/'sweep' --cache-dir",
    )
    _add_export_options(export_parser)

    serve_parser = subparsers.add_parser(
        "serve", help="run the persistent analysis daemon (repro.service)"
    )
    serve_parser.add_argument(
        "--host", default=None, metavar="HOST",
        help="address to bind (default: 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--port", type=int, default=None, metavar="PORT",
        help="port to bind (default: 8537; 0 binds an ephemeral port)",
    )
    serve_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes computing submitted jobs (default: 1)",
    )
    serve_parser.add_argument(
        "--batch-size", type=int, default=8, metavar="N",
        help="queued jobs fanned onto the worker pool at once (default: 8)",
    )
    _add_store_option(serve_parser)
    serve_parser.add_argument(
        "--no-store", action="store_true",
        help="serve fully in-memory (results die with the daemon)",
    )

    submit_parser = subparsers.add_parser(
        "submit", help="submit experiments or a sweep to a running daemon"
    )
    submit_parser.add_argument(
        "experiments", nargs="*", metavar="NAME",
        help="experiments to submit (or use --experiment with sweep axes)",
    )
    submit_parser.add_argument(
        "--experiment", default=None, metavar="NAME",
        help="experiment to sweep when axis options are given (default: table2)",
    )
    submit_parser.add_argument(
        "--sizes", type=_csv_ints, default=None, metavar="N,N,...",
        help="mesh sizes to sweep, e.g. 2,3,4",
    )
    submit_parser.add_argument(
        "--packet-flits", type=_csv_ints, default=None, metavar="N,N,...",
        help="maximum packet sizes to sweep, e.g. 1,4,8",
    )
    submit_parser.add_argument(
        "--fault-rates", type=_csv_floats, default=None, metavar="R,R,...",
        help="per-link fault rates to sweep (reliability_sweep)",
    )
    submit_parser.add_argument(
        "--trials", type=int, default=None, metavar="N",
        help="Monte-Carlo trials per design point (reliability_sweep)",
    )
    submit_parser.add_argument(
        "--quick", action="store_true",
        help="apply each experiment's quick parameters",
    )
    submit_parser.add_argument(
        "--no-wait", action="store_true",
        help="return tickets immediately instead of waiting for results",
    )
    _add_backend_option(submit_parser)
    _add_analysis_option(submit_parser)
    _add_service_options(submit_parser)
    _add_export_options(submit_parser)

    status_parser = subparsers.add_parser(
        "status", help="query job states on a running daemon"
    )
    status_parser.add_argument(
        "hashes", nargs="+", metavar="HASH",
        help="config hashes from submission tickets",
    )
    status_parser.add_argument(
        "--json", action="store_true", help="machine-readable states"
    )
    _add_service_options(status_parser)

    fetch_parser = subparsers.add_parser(
        "fetch", help="fetch completed results from a running daemon"
    )
    fetch_parser.add_argument(
        "hashes", nargs="*", metavar="HASH",
        help="config hashes to fetch (default: everything the daemon has)",
    )
    _add_service_options(fetch_parser)
    _add_export_options(fetch_parser)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or clear the durable result store"
    )
    cache_parser.add_argument(
        "action", choices=("stats", "clear"),
        help="'stats' summarises the store, 'clear' deletes entries",
    )
    _add_store_option(cache_parser)
    cache_parser.add_argument(
        "--experiment", default=None, metavar="NAME",
        help="restrict 'clear' to one experiment's entries",
    )
    cache_parser.add_argument(
        "--json", action="store_true", help="machine-readable stats"
    )

    campaign_parser = subparsers.add_parser(
        "campaign",
        help="sharded, resumable, blind-validated sweeps (repro.campaign)",
    )
    campaign_sub = campaign_parser.add_subparsers(dest="action", required=True)

    campaign_run = campaign_sub.add_parser(
        "run", help="start (or resume) a campaign over experiments or a sweep"
    )
    campaign_run.add_argument(
        "experiments", nargs="*", metavar="NAME",
        help="experiments to campaign over (or use --experiment with axes)",
    )
    campaign_run.add_argument(
        "--experiment", default=None, metavar="NAME",
        help="experiment to sweep when axis options are given (default: table2)",
    )
    campaign_run.add_argument(
        "--sizes", type=_csv_ints, default=None, metavar="N,N,...",
        help="mesh sizes to sweep, e.g. 2,3,4",
    )
    campaign_run.add_argument(
        "--packet-flits", type=_csv_ints, default=None, metavar="N,N,...",
        help="maximum packet sizes to sweep, e.g. 1,4,8",
    )
    campaign_run.add_argument(
        "--fault-rates", type=_csv_floats, default=None, metavar="R,R,...",
        help="per-link fault rates to sweep (reliability_sweep)",
    )
    campaign_run.add_argument(
        "--trials", type=int, default=None, metavar="N",
        help="Monte-Carlo trials per design point (reliability_sweep)",
    )
    campaign_run.add_argument(
        "--quick", action="store_true",
        help="apply each experiment's quick parameters",
    )
    campaign_run.add_argument(
        "--name", default="campaign", metavar="TEXT",
        help="campaign name folded into the campaign ID (default: campaign)",
    )
    campaign_run.add_argument(
        "--shard-size", type=int, default=4, metavar="N",
        help="maximum design points per shard (default: 4)",
    )
    campaign_run.add_argument(
        "--holdout", type=int, default=1, metavar="N",
        help="held-out shards blind-validated before unblinding (default: 1)",
    )
    campaign_run.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes per shard (default: 1)",
    )
    campaign_run.add_argument(
        "--fresh", action="store_true",
        help="ignore existing checkpoints and recompute every shard",
    )
    _add_backend_option(campaign_run)
    _add_analysis_option(campaign_run)
    _add_store_option(campaign_run)
    campaign_run.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the full campaign report as JSON to PATH ('-' for stdout)",
    )

    campaign_resume = campaign_sub.add_parser(
        "resume", help="resume an interrupted campaign from its checkpoints"
    )
    campaign_resume.add_argument(
        "id", metavar="ID", help="campaign ID printed by 'campaign run'"
    )
    campaign_resume.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes per shard (default: 1)",
    )
    _add_store_option(campaign_resume)
    campaign_resume.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the full campaign report as JSON to PATH ('-' for stdout)",
    )

    campaign_report = campaign_sub.add_parser(
        "report", help="report a campaign's checkpoint state without executing"
    )
    campaign_report.add_argument(
        "id", metavar="ID", help="campaign ID printed by 'campaign run'"
    )
    _add_store_option(campaign_report)
    campaign_report.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the full campaign report as JSON to PATH ('-' for stdout)",
    )

    return parser


# ----------------------------------------------------------------------
# Output helpers
# ----------------------------------------------------------------------
def _write_exports(results: Sequence[BatchResult], args: argparse.Namespace) -> None:
    for path, render in ((args.json, BatchEngine.to_json), (args.csv, BatchEngine.to_csv)):
        if path is None:
            continue
        payload = render(results)
        if path == "-":
            print(payload)
        else:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(payload)
            print(f"wrote {len(results)} result(s) to {path}", file=sys.stderr)


def _exports_use_stdout(args: argparse.Namespace) -> bool:
    return args.json == "-" or args.csv == "-"


def _print_report(result: BatchResult) -> None:
    if not result.ok:
        # A captured worker failure: there is no payload to render.
        print(
            f"{result.job.experiment} [{result.config_hash}] failed: "
            f"{result.error}\n",
            file=sys.stderr,
        )
        return
    if result.result.from_cache:
        # Rebuilt from the JSON cache: the native payload (and with it the
        # exact paper-style rendering) is gone, render the rows directly.
        print(f"{result.job.experiment} [cached {result.config_hash}]")
        rows = result.result.rows()
        print(format_table(rows) if rows else "(no rows)")
        print()
        return
    spec = get_experiment(result.job.experiment)
    print(spec.report(result.result))
    source = "cache" if result.cached else f"{result.duration_seconds:.1f}s"
    print(f"\n[{result.job.experiment} completed in {source}]\n")


def _resolve_names(names: Sequence[str]) -> Optional[List[str]]:
    """Validate experiment names, printing near-miss errors; None on failure."""
    resolved = list(names) if names else [spec.name for spec in list_experiments()]
    failed = False
    for name in resolved:
        try:
            get_experiment(name)
        except UnknownExperimentError as error:
            print(str(error), file=sys.stderr)
            failed = True
    if failed:
        print("use 'repro-experiments list' to see the available experiments", file=sys.stderr)
        return None
    return resolved


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _make_engine(args: argparse.Namespace) -> Optional[BatchEngine]:
    try:
        return BatchEngine(
            jobs=args.jobs, cache_dir=args.cache_dir, use_cache=not args.no_cache
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return None


def _cmd_run(args: argparse.Namespace) -> int:
    names = _resolve_names(args.experiments)
    if names is None:
        return 2
    engine = _make_engine(args)
    if engine is None:
        return 2
    results = engine.run_many(
        [
            BatchJob(
                experiment=name,
                params=_cli_params(name, args),
                quick=args.quick,
            )
            for name in names
        ]
    )
    if not _exports_use_stdout(args):
        for result in results:
            _print_report(result)
    _write_exports(results, args)
    return 1 if any(not result.ok for result in results) else 0


def _cmd_list(args: argparse.Namespace) -> int:
    specs = list_experiments()
    if args.json:
        import json

        print(
            json.dumps(
                [
                    {
                        "name": spec.name,
                        "description": spec.description,
                        "paper_reference": spec.paper_reference,
                        "sweep_axes": sorted(spec.sweep_axes),
                    }
                    for spec in specs
                ],
                indent=2,
            )
        )
        return 0
    for spec in specs:
        print(f"{spec.name:12s} {spec.description}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        get_experiment(args.experiment)
    except UnknownExperimentError as error:
        print(str(error), file=sys.stderr)
        return 2
    axes: Dict[str, List[Any]] = {}
    if args.sizes:
        axes["size"] = args.sizes
    if args.packet_flits:
        axes["packet_flits"] = args.packet_flits
    if args.fault_rates:
        axes["fault_rate"] = args.fault_rates
    if args.trials is not None:
        axes["trials"] = [args.trials]
    if not axes:
        print(
            "sweep needs at least one axis "
            "(--sizes, --packet-flits, --fault-rates and/or --trials)",
            file=sys.stderr,
        )
        return 2
    engine = _make_engine(args)
    if engine is None:
        return 2
    try:
        results = engine.sweep(
            args.experiment,
            quick=args.quick,
            base_params=_cli_params(args.experiment, args),
            **axes,
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    if not _exports_use_stdout(args):
        print(
            format_table(
                [
                    {
                        "experiment": result.job.experiment,
                        "params": ", ".join(
                            f"{k}={v}" for k, v in sorted(result.job.params.items())
                        ),
                        "config hash": result.config_hash,
                        "cached": result.cached,
                        "rows": len(result.result.rows()),
                        "seconds": round(result.duration_seconds, 2),
                    }
                    for result in results
                ]
            )
        )
    _write_exports(results, args)
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    engine = BatchEngine(cache_dir=args.cache_dir)
    results = engine.cached_results()
    if args.experiments:
        wanted = set(args.experiments)
        results = [r for r in results if r.job.experiment in wanted]
    if not results:
        print("no cached results matched", file=sys.stderr)
        return 1
    if args.json is None and args.csv is None:
        args.json = "-"
    _write_exports(results, args)
    return 0


# ----------------------------------------------------------------------
# Service subcommands (repro.service)
# ----------------------------------------------------------------------
def _make_client(args: argparse.Namespace):
    from ..service import DEFAULT_HOST, DEFAULT_PORT, ServiceClient

    return ServiceClient(
        host=args.host or DEFAULT_HOST,
        port=DEFAULT_PORT if args.port is None else args.port,
        timeout=args.timeout,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from ..service import DEFAULT_HOST, DEFAULT_PORT, ReproService

    try:
        service = ReproService(
            host=args.host or DEFAULT_HOST,
            port=DEFAULT_PORT if args.port is None else args.port,
            jobs=args.jobs,
            batch_size=args.batch_size,
            store_dir=args.store_dir,
            use_store=not args.no_store,
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2

    def _announce(svc) -> None:
        host, port = svc.address
        print(f"repro.service listening on {host}:{port}", flush=True)
        if svc.store is not None:
            print(f"durable result store: {svc.store.root}", flush=True)

    try:
        service.run(announce=_announce)
    except KeyboardInterrupt:
        pass
    except OSError as error:
        print(f"cannot start repro.service: {error}", file=sys.stderr)
        return 1
    return 0


def _build_submit_jobs(args: argparse.Namespace) -> Optional[List[BatchJob]]:
    """The jobs of one ``submit`` invocation (names or a sweep grid)."""
    axes: Dict[str, List[Any]] = {}
    if args.sizes:
        axes["size"] = args.sizes
    if args.packet_flits:
        axes["packet_flits"] = args.packet_flits
    if args.fault_rates:
        axes["fault_rate"] = args.fault_rates
    if args.trials is not None:
        axes["trials"] = [args.trials]
    if axes:
        if args.experiments:
            print(
                "submit takes either experiment NAMEs or sweep axes, not both",
                file=sys.stderr,
            )
            return None
        name = args.experiment or "table2"
        try:
            spec = get_experiment(name)
        except UnknownExperimentError as error:
            print(str(error), file=sys.stderr)
            return None
        base = _cli_params(name, args)
        names = list(axes)
        jobs: List[BatchJob] = []
        try:
            for combo in itertools.product(*(axes[n] for n in names)):
                params = dict(base)
                params.update(spec.params_for_axes(**dict(zip(names, combo))))
                jobs.append(BatchJob(experiment=name, params=params, quick=args.quick))
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return None
        return jobs
    if args.experiment is not None:
        print(
            "--experiment needs at least one sweep axis "
            "(--sizes, --packet-flits, --fault-rates and/or --trials)",
            file=sys.stderr,
        )
        return None
    resolved = _resolve_names(args.experiments)
    if resolved is None:
        return None
    return [
        BatchJob(experiment=name, params=_cli_params(name, args), quick=args.quick)
        for name in resolved
    ]


def _wire_batch_results(
    jobs: Sequence[BatchJob],
    tickets: Sequence[Dict[str, Any]],
    result_dicts: Sequence[Optional[Dict[str, Any]]],
) -> List[BatchResult]:
    """Rebuild BatchResults from a submit response (for _write_exports)."""
    results: List[BatchResult] = []
    for job, ticket, data in zip(jobs, tickets, result_dicts):
        if data is None:
            continue
        results.append(
            BatchResult(
                job=job,
                result=ExperimentResult.from_dict(data),
                config_hash=data.get("config_hash", ticket["hash"]),
                cached=bool(data.get("cached", False)),
                duration_seconds=float(data.get("duration_seconds", 0.0)),
            )
        )
    return results


def _cmd_submit(args: argparse.Namespace) -> int:
    from ..service import ServiceError

    jobs = _build_submit_jobs(args)
    if jobs is None:
        return 2
    client = _make_client(args)

    def _progress(event: Dict[str, Any]) -> None:
        print(
            f"[{event['completed']}/{event['total']}] "
            f"{event['hash']} {event['state']}",
            file=sys.stderr,
        )

    try:
        response = client.submit(
            jobs,
            wait=not args.no_wait,
            on_progress=None if args.no_wait else _progress,
        )
    except ServiceError as error:
        print(str(error), file=sys.stderr)
        return 1
    tickets = response["tickets"]
    if args.no_wait:
        print(
            format_table(
                [
                    {
                        "hash": t["hash"],
                        "experiment": t["experiment"],
                        "state": t["state"],
                        "source": t["source"],
                    }
                    for t in tickets
                ]
            )
        )
        print(
            "poll with 'repro-experiments status HASH...' and collect with "
            "'repro-experiments fetch'",
            file=sys.stderr,
        )
        return 0
    failed = [t for t in tickets if t["state"] == "failed"]
    for ticket in failed:
        print(
            f"{ticket['experiment']} [{ticket['hash']}] failed: "
            f"{ticket.get('error', 'unknown error')}",
            file=sys.stderr,
        )
    results = _wire_batch_results(jobs, tickets, response["results"])
    if not _exports_use_stdout(args):
        print(
            format_table(
                [
                    {
                        "experiment": result.job.experiment,
                        "params": ", ".join(
                            f"{k}={v}" for k, v in sorted(result.job.params.items())
                        ),
                        "config hash": result.config_hash,
                        "cached": result.cached,
                        "rows": len(result.result.rows()),
                        "seconds": round(result.duration_seconds, 2),
                    }
                    for result in results
                ]
            )
        )
    _write_exports(results, args)
    return 1 if failed else 0


def _cmd_status(args: argparse.Namespace) -> int:
    from ..service import ServiceError

    client = _make_client(args)
    try:
        states = client.status(args.hashes)
    except ServiceError as error:
        print(str(error), file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(states, indent=2))
    else:
        print(
            format_table(
                [
                    {
                        "hash": state["hash"],
                        "state": state["state"],
                        "detail": state.get("error") or state.get("source") or "",
                    }
                    for state in states
                ]
            )
        )
    return 0


def _cmd_fetch(args: argparse.Namespace) -> int:
    from ..service import ServiceError

    client = _make_client(args)
    try:
        fetched = client.fetch(args.hashes or None, all=not args.hashes)
    except ServiceError as error:
        print(str(error), file=sys.stderr)
        return 1
    for digest in fetched["missing"]:
        print(f"missing: {digest}", file=sys.stderr)
    results = [
        BatchResult(
            job=BatchJob(experiment=str(data.get("experiment", ""))),
            result=ExperimentResult.from_dict(data),
            config_hash=str(data.get("config_hash", "")),
            cached=True,
            duration_seconds=float(data.get("duration_seconds", 0.0)),
        )
        for data in fetched["results"]
    ]
    if not results:
        print("no results fetched", file=sys.stderr)
        return 1 if fetched["missing"] else 0
    if args.json is None and args.csv is None:
        args.json = "-"
    _write_exports(results, args)
    return 1 if fetched["missing"] else 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from ..service import ResultStore, StoreError

    try:
        store = ResultStore(args.store_dir)
    except StoreError as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.action == "clear":
        removed = store.clear(experiment=args.experiment)
        scope = f" for {args.experiment}" if args.experiment else ""
        print(f"removed {removed} cached result(s){scope} from {store.root}")
        return 0
    stats = store.stats()
    if args.json:
        print(json.dumps(stats, indent=2))
        return 0
    by_experiment = stats.pop("by_experiment", {})
    stats.pop("hits", None)
    stats.pop("misses", None)
    stats.pop("hit_rate", None)
    print(format_key_values(stats))
    if by_experiment:
        print()
        print(
            format_table(
                [
                    {"experiment": name, "entries": count}
                    for name, count in sorted(by_experiment.items())
                ]
            )
        )
    return 0


# ----------------------------------------------------------------------
# Campaign subcommands (repro.campaign)
# ----------------------------------------------------------------------
def _emit_campaign_report(report, args: argparse.Namespace) -> None:
    if args.json is not None:
        payload = report.to_json()
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"wrote campaign report to {args.json}", file=sys.stderr)
    if args.json != "-":
        print(report.render())


def _execute_campaign(campaign, args: argparse.Namespace, *, resume: bool) -> int:
    from ..campaign import CampaignError, HoldoutViolation

    def _progress(shard, record) -> None:
        source = "resumed from store" if record.get("resumed") else "computed"
        print(f"{shard.describe()}: {source}", file=sys.stderr)

    try:
        report = campaign.run(resume=resume, progress=_progress)
    except HoldoutViolation as error:
        print(str(error), file=sys.stderr)
        print(
            "no blind shard was computed; fix the held-out failures and "
            "rerun with 'campaign resume'",
            file=sys.stderr,
        )
        return 3
    except CampaignError as error:
        print(str(error), file=sys.stderr)
        return 2
    _emit_campaign_report(report, args)
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from ..campaign import Campaign, CampaignError
    from ..service import ResultStore, StoreError

    try:
        store = ResultStore(args.store_dir)
    except StoreError as error:
        print(str(error), file=sys.stderr)
        return 2

    if args.action == "run":
        jobs = _build_submit_jobs(args)
        if jobs is None:
            return 2
        try:
            campaign = Campaign(
                jobs,
                name=args.name,
                shard_size=args.shard_size,
                holdout=args.holdout,
                store=store,
                engine_jobs=args.jobs,
            )
        except CampaignError as error:
            print(str(error), file=sys.stderr)
            return 2
        print(campaign.describe(), file=sys.stderr)
        return _execute_campaign(campaign, args, resume=not args.fresh)

    try:
        campaign = Campaign.load(
            args.id, store=store, engine_jobs=getattr(args, "jobs", 1)
        )
    except CampaignError as error:
        print(str(error), file=sys.stderr)
        saved = Campaign.saved_campaigns(store)
        if saved:
            print(f"saved campaigns: {', '.join(saved)}", file=sys.stderr)
        return 2
    if args.action == "report":
        _emit_campaign_report(campaign.collect(), args)
        return 0
    return _execute_campaign(campaign, args, resume=True)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    parser = _build_parser()
    args = parser.parse_args(_normalise_argv(argv))
    handlers: Dict[str, Callable[[argparse.Namespace], int]] = {
        "run": _cmd_run,
        "list": _cmd_list,
        "sweep": _cmd_sweep,
        "export": _cmd_export,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "status": _cmd_status,
        "fetch": _cmd_fetch,
        "cache": _cmd_cache,
        "campaign": _cmd_campaign,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
