"""Experiment E1 -- paper Table I: arbitration weights of router R(1,1) in a 2x2 mesh.

The paper illustrates WaW with the 2x2 mesh of Figure 1(b): at router
``R(1,1)`` the weighted arbitration assigns 1/3 of the ejection (PME)
bandwidth to the input coming from the neighbouring column and 2/3 to the
input coming from the neighbouring row, whereas plain round-robin splits the
bandwidth 50/50 regardless of how many flows use each input.

This driver reproduces the full weight table for any router of any mesh
(defaulting to the paper's example) for both policies:

* the *Regular Mesh* column: the bandwidth share plain round-robin gives to
  each input port of an output port (1 / number of active contenders);
* the *Weighted Mesh* column: the WaW weight ``W(I, O) = I / O`` built from
  the upstream-source counts under all-to-all traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional

from ..analysis.reporting import format_table, format_title
from ..api import experiment, unwrap
from ..core.flows import FlowSet
from ..core.weights import WeightTable, round_robin_weight
from ..geometry import Coord, Mesh, Port

__all__ = ["WeightRow", "run", "report"]


@dataclass(frozen=True)
class WeightRow:
    """One (input port, output port) pair of the weight table."""

    in_port: str
    out_port: str
    round_robin: float
    waw: float
    waw_exact: Fraction

    def as_dict(self) -> Dict[str, object]:
        return {
            "pair": f"W({self.in_port:>3s} -> {self.out_port})",
            "regular mesh": round(self.round_robin, 2),
            "weighted mesh (WaW)": round(self.waw, 2),
            "exact": f"{self.waw_exact.numerator}/{self.waw_exact.denominator}",
        }


@experiment(
    "table1",
    description="Table I  -- WaW arbitration weights of router R(1,1) in a 2x2 mesh",
    paper_reference="Table I",
    sweep_axes={"size": lambda v: {"mesh_width": v, "mesh_height": v}},
)
def run(
    *,
    mesh_width: int = 2,
    mesh_height: int = 2,
    router: Optional[Coord] = None,
) -> List[WeightRow]:
    """Compute the Table I rows for one router (default: R(1,1) of a 2x2 mesh)."""
    mesh = Mesh(mesh_width, mesh_height)
    target = router if router is not None else Coord(1, 1)
    mesh.require(target)

    flow_set = FlowSet.all_to_all(mesh)
    weights = WeightTable.from_flow_set(flow_set, granularity="source")

    rows: List[WeightRow] = []
    for in_port, out_port, waw in weights.table_rows(target):
        rr = round_robin_weight(mesh, target, in_port, out_port, flow_set)
        rows.append(
            WeightRow(
                in_port=in_port.value,
                out_port=out_port.value,
                round_robin=float(rr),
                waw=float(waw),
                waw_exact=waw,
            )
        )
    # Stable, readable ordering: by output port then input port.
    rows.sort(key=lambda r: (r.out_port, r.in_port))
    return rows


def report(rows: Optional[List[WeightRow]] = None) -> str:
    """Render the experiment as a paper-style table."""
    rows = unwrap(rows) if rows is not None else unwrap(run())
    title = format_title("Table I -- arbitration weights for router R(1,1) of a 2x2 mesh")
    table = format_table([r.as_dict() for r in rows])
    note = (
        "\nNote: the paper's printed closed forms have an off-by-one on the X- ports;\n"
        "this table uses the self-consistent upstream-source counting, which matches\n"
        "the paper's worked example (1/3 vs 2/3 of the PME bandwidth at R(1,1))."
    )
    return f"{title}\n{table}{note}"


def main() -> None:  # pragma: no cover - thin CLI wrapper
    print(report())


if __name__ == "__main__":  # pragma: no cover
    main()
