"""Experiment E5 -- paper Figure 2(b): impact of task placement on the 3DPP WCET.

The 16 threads of the path-planning application are mapped onto the 8x8 mesh
under four placements (P0: block adjacent to the memory controller, P1:
central block, P2: two middle rows, P3: scattered along the diagonal) with
the maximum packet size fixed to one flit (the paper's L1 setup).

The paper's two findings reproduced here:

* WaW+WaP achieves lower WCET estimates than the regular wNoC for every
  placement;
* the WCET estimate of the regular design is extremely sensitive to the
  placement (the paper reports >6x between the best and the worst placement;
  our synthetic 3DPP, which has a lower compute-to-communication ratio than
  the original application, shows an even larger spread), whereas WaW+WaP
  keeps the spread small (tens of percent), which is what makes placement a
  non-issue for timing analysis on the proposed design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from ..analysis.reporting import format_key_values, format_table, format_title
from ..api import Scenario, experiment, unwrap
from ..core.ubd import MemoryTiming, UBDTable
from ..geometry import Mesh
from ..manycore.placement import Placement, standard_placements
from ..manycore.wcet_mode import wcet_of_parallel_workload
from ..workloads.parallel import ParallelWorkload
from ..workloads.pathplanning import PathPlanningConfig, plan_path

__all__ = ["PlacementPoint", "run", "report", "variability"]


@dataclass(frozen=True)
class PlacementPoint:
    """WCET estimates of both designs for one placement."""

    placement: str
    regular_wcet: int
    waw_wap_wcet: int
    average_distance_to_memory: float

    @property
    def improvement(self) -> float:
        return self.regular_wcet / self.waw_wap_wcet

    def as_dict(self) -> Dict[str, object]:
        return {
            "placement": self.placement,
            "avg hops to MC": round(self.average_distance_to_memory, 2),
            "regular wNoC (cycles)": self.regular_wcet,
            "WaW+WaP (cycles)": self.waw_wap_wcet,
            "improvement": round(self.improvement, 2),
        }


@experiment(
    "fig2b",
    description="Fig 2(b) -- 3DPP WCET across placements P0..P3",
    paper_reference="Figure 2(b)",
    sweep_axes={
        "size": lambda v: {"mesh_size": v},
        "packet_flits": lambda v: {"max_packet_flits": v},
    },
)
def run(
    *,
    mesh_size: int = 8,
    max_packet_flits: int = 1,
    workload: Optional[ParallelWorkload] = None,
    placements: Optional[Mapping[str, Placement]] = None,
    planner_config: Optional[PathPlanningConfig] = None,
    memory_timing: Optional[MemoryTiming] = None,
) -> List[PlacementPoint]:
    """Compute the Figure 2(b) series (one point per placement)."""
    if workload is None:
        workload = plan_path(planner_config).workload

    regular_cfg = Scenario.mesh(mesh_size).regular().max_packet_flits(max_packet_flits).build()
    waw_cfg = Scenario.mesh(mesh_size).waw_wap().max_packet_flits(max_packet_flits).build()
    mesh = Mesh(mesh_size, mesh_size)
    if placements is None:
        placements = standard_placements(mesh, num_threads=workload.num_threads)

    ubd_regular = UBDTable(regular_cfg, memory=memory_timing)
    ubd_waw = UBDTable(waw_cfg, memory=memory_timing)

    points: List[PlacementPoint] = []
    for name in sorted(placements):
        placement = placements[name]
        regular_wcet = wcet_of_parallel_workload(workload, placement, ubd_regular).total
        waw_wcet = wcet_of_parallel_workload(workload, placement, ubd_waw).total
        points.append(
            PlacementPoint(
                placement=name,
                regular_wcet=regular_wcet,
                waw_wap_wcet=waw_wcet,
                average_distance_to_memory=placement.average_distance_to(
                    regular_cfg.memory_controller
                ),
            )
        )
    return points


def variability(points: List[PlacementPoint]) -> Dict[str, float]:
    """Best-to-worst WCET spread of each design across the placements."""
    points = unwrap(points)
    regular = [p.regular_wcet for p in points]
    waw = [p.waw_wap_wcet for p in points]
    return {
        "regular wNoC max/min across placements": max(regular) / min(regular),
        "WaW+WaP max/min across placements": max(waw) / min(waw),
    }


def report(points: Optional[List[PlacementPoint]] = None) -> str:
    points = unwrap(points) if points is not None else unwrap(run())
    title = format_title(
        "Figure 2(b) -- impact of placement on the 3DPP WCET estimate (L1 setup)"
    )
    table = format_table([p.as_dict() for p in points])
    spread = format_key_values(variability(points))
    return f"{title}\n{table}\n\n{spread}"


def main() -> None:  # pragma: no cover - thin CLI wrapper
    print(report())


if __name__ == "__main__":  # pragma: no cover
    main()
