"""Experiment E4 -- paper Figure 2(a): 3DPP WCET vs maximum packet size.

The 16-thread 3D path-planning application runs under placement P0 (a compact
block next to the memory controller) on the 8x8 manycore.  The experiment
computes its WCET estimate for both NoC design points while the *maximum
allowed packet size* in the network is 1, 4 and 8 flits (the paper's L1, L4
and L8 setups):

* for the **regular** design, larger maximum packets mean contenders can hold
  output ports longer, so the per-access UBD -- and with it the WCET estimate
  -- grows with L;
* for **WaW+WaP**, the arbitration slot is always one (minimum-size) packet,
  so the WCET estimate is independent of L.

The paper reports improvements from 1.4x (L1) to 3.9x (L8); the reproduction
reports the same monotonically widening gap (at the L1 point our model
charges the regular design the packet-splitting overhead of its 4-flit
replies, so the measured factor there is larger than the paper's 1.4x).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.reporting import format_table, format_title
from ..api import Scenario, experiment, unwrap
from ..core.ubd import MemoryTiming, UBDTable
from ..geometry import Mesh
from ..manycore.placement import Placement, standard_placements
from ..manycore.wcet_mode import wcet_of_parallel_workload
from ..workloads.parallel import ParallelWorkload
from ..workloads.pathplanning import PathPlanningConfig, plan_path

__all__ = ["PacketSizePoint", "run", "report"]


@dataclass(frozen=True)
class PacketSizePoint:
    """WCET estimates of both designs for one maximum packet size."""

    label: str
    max_packet_flits: int
    regular_wcet: int
    waw_wap_wcet: int

    @property
    def improvement(self) -> float:
        return self.regular_wcet / self.waw_wap_wcet

    def as_dict(self) -> Dict[str, object]:
        return {
            "setup": self.label,
            "regular wNoC (cycles)": self.regular_wcet,
            "WaW+WaP (cycles)": self.waw_wap_wcet,
            "improvement": round(self.improvement, 2),
        }


@experiment(
    "fig2a",
    description="Fig 2(a) -- 3DPP WCET vs maximum packet size (L1/L4/L8)",
    paper_reference="Figure 2(a)",
    sweep_axes={
        "size": lambda v: {"mesh_size": v},
        "packet_flits": lambda v: {"packet_sizes": (v,)},
    },
)
def run(
    *,
    packet_sizes: Sequence[int] = (1, 4, 8),
    mesh_size: int = 8,
    workload: Optional[ParallelWorkload] = None,
    placement: Optional[Placement] = None,
    planner_config: Optional[PathPlanningConfig] = None,
    memory_timing: Optional[MemoryTiming] = None,
) -> List[PacketSizePoint]:
    """Compute the Figure 2(a) series.

    ``workload`` defaults to a fresh run of the 3D path planner; passing it
    explicitly (e.g. a pre-computed one) avoids re-planning when several
    experiments share the same application.
    """
    if workload is None:
        workload = plan_path(planner_config).workload
    if placement is None:
        mesh = Mesh(mesh_size, mesh_size)
        placement = standard_placements(mesh, num_threads=workload.num_threads)["P0"]

    points: List[PacketSizePoint] = []
    for flits in packet_sizes:
        regular_cfg = Scenario.mesh(mesh_size).regular().max_packet_flits(flits).build()
        waw_cfg = Scenario.mesh(mesh_size).waw_wap().max_packet_flits(flits).build()
        ubd_regular = UBDTable(regular_cfg, memory=memory_timing)
        ubd_waw = UBDTable(waw_cfg, memory=memory_timing)
        regular_wcet = wcet_of_parallel_workload(workload, placement, ubd_regular).total
        waw_wcet = wcet_of_parallel_workload(workload, placement, ubd_waw).total
        points.append(
            PacketSizePoint(
                label=f"L{flits}",
                max_packet_flits=flits,
                regular_wcet=regular_wcet,
                waw_wap_wcet=waw_wcet,
            )
        )
    return points


def report(points: Optional[List[PacketSizePoint]] = None) -> str:
    points = unwrap(points) if points is not None else unwrap(run())
    title = format_title(
        "Figure 2(a) -- 3DPP WCET estimates vs maximum packet size (placement P0)"
    )
    table = format_table([p.as_dict() for p in points])
    gap_growth = points[-1].improvement / points[0].improvement if points else 0.0
    note = (
        f"\nThe WaW+WaP estimate is identical for every packet size; the regular design\n"
        f"degrades as the maximum packet size grows (gap widens by {gap_growth:.2f}x from "
        f"{points[0].label} to {points[-1].label})."
    )
    return f"{title}\n{table}{note}"


def main() -> None:  # pragma: no cover - thin CLI wrapper
    print(report())


if __name__ == "__main__":  # pragma: no cover
    main()
