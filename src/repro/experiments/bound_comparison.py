"""Experiment E12 -- competing analysis backends vs adversarial simulation.

Every registered analytical lens (the paper's ``regular`` / ``weighted``
bounds and the flow-aware ``holistic`` / ``trajectory`` analyses) is
evaluated over the same topology x workload x packet-size grid, and every
bound is cross-checked against the worst probe traversal the cycle-accurate
simulator observes under the most adversarial congestion it can express for
that design point (the :mod:`repro.analysis.validation` machinery).  The
vector backend is deliberately absent from the rows: it is bit-identical to
the paper pair by contract (``tests/test_differential_analysis.py``) and its
inclusion would make the pinned golden output depend on numpy.

Two disciplines shape the run:

* **blind analysis** (the STAR isobar methodology, arXiv:1911.00596): a
  deterministic *held-out* subset of the grid is simulated first and every
  backend's bound must be sound on it -- an unsound backend aborts the run
  before the full comparison is even computed, so tightness numbers can
  never be read off a broken bound;
* **tightness scoring**: per (design point, flow) the *winning* backend is
  the sound bound closest to the observation (ties share the win), and the
  report aggregates per-backend wins, mean tightness and soundness verdicts.

The ``workload`` axis is what separates the competitors: on the ``full``
all-to-one workload the flow-aware analyses provably collapse onto the
paper's bounds (every legal input is active), while on the ``sparse``
workload (a checkerboard subset of sources, simulated by restricting the
adversary's ``background_sources``) they charge only the inputs that can
actually request -- the regime where knowing the flow set pays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.reporting import format_table, format_title
from ..api import Scenario, experiment, unwrap
from ..api.engine import map_jobs
from ..core.flows import FlowSet
from ..core.weights import WeightTable
from ..geometry import Coord

__all__ = ["ComparisonRow", "SoundnessViolation", "run", "report"]

#: Backends compared per design (the vector backend is excluded by design --
#: see the module docstring).
DESIGN_BACKENDS: Dict[str, Tuple[str, ...]] = {
    "regular": ("regular", "holistic", "trajectory"),
    "waw_wap": ("weighted", "holistic", "trajectory"),
}

#: Grid axes accepted by :func:`run`.
WORKLOADS = ("full", "sparse")
TOPOLOGIES = ("mesh", "cmesh")


class SoundnessViolation(RuntimeError):
    """A backend's bound fell below an observed traversal on the held-out set."""


@dataclass(frozen=True)
class ComparisonRow:
    """One backend's bound vs the shared observation of one (point, flow)."""

    phase: str
    point: str
    design: str
    topology: str
    workload: str
    payload_flits: int
    flow: str
    backend: str
    bound: int
    observed: int
    probes: int
    safe: bool
    slack: int
    tightness: float
    winner: bool

    def as_dict(self) -> Dict[str, Any]:
        return {
            "phase": self.phase,
            "point": self.point,
            "design": self.design,
            "topology": self.topology,
            "workload": self.workload,
            "payload flits": self.payload_flits,
            "flow": self.flow,
            "backend": self.backend,
            "bound": self.bound,
            "observed worst": self.observed,
            "probes": self.probes,
            "safe": self.safe,
            "slack": self.slack,
            "observed/bound": round(self.tightness, 3),
            "winner": self.winner,
        }


# ----------------------------------------------------------------------
# Grid construction
# ----------------------------------------------------------------------
def _point_scenario(size: int, topology: str, design: str) -> Scenario:
    scenario = Scenario.mesh(size).design(design)
    if topology == "cmesh":
        scenario = scenario.topology("cmesh", concentration=2)
    elif topology != "mesh":
        raise ValueError(f"topology must be one of {TOPOLOGIES}, got {topology!r}")
    return scenario


def _victims(width: int, height: int, dst: Coord) -> List[Coord]:
    """Far corner and a near node -- the two bound regimes, like validation."""
    far = Coord(width - 1, height - 1)
    near = Coord(1, 0) if dst == Coord(0, 0) else Coord(max(0, dst.x - 1), dst.y)
    return [v for v in (near, far) if v != dst]


def _sparse_sources(nodes: Sequence[Coord], dst: Coord, victim: Coord) -> List[Coord]:
    """Checkerboard subset of sources (victim always included)."""
    return [n for n in nodes if n != dst and ((n.x + n.y) % 2 == 0 or n == victim)]


def _grid_jobs(
    mesh_sizes: Sequence[int],
    topologies: Sequence[str],
    designs: Sequence[str],
    workloads: Sequence[str],
    payload_sizes: Sequence[int],
    congestion_cycles: int,
) -> List[Dict[str, Any]]:
    jobs: List[Dict[str, Any]] = []
    for size in mesh_sizes:
        for topology in topologies:
            for design in designs:
                if design not in DESIGN_BACKENDS:
                    known = ", ".join(sorted(DESIGN_BACKENDS))
                    raise ValueError(
                        f"unknown design {design!r}; known designs: {known}"
                    )
                scenario = _point_scenario(size, topology, design)
                config = scenario.build()
                dst = config.memory_controller
                for workload in workloads:
                    if workload not in WORKLOADS:
                        raise ValueError(
                            f"workload must be one of {WORKLOADS}, got {workload!r}"
                        )
                    for payload in payload_sizes:
                        for victim in _victims(
                            config.mesh.width, config.mesh.height, dst
                        ):
                            jobs.append(
                                {
                                    "size": size,
                                    "topology": topology,
                                    "design": design,
                                    "workload": workload,
                                    "payload": payload,
                                    "victim": [victim.x, victim.y],
                                    "cycles": congestion_cycles,
                                }
                            )
    return jobs


# ----------------------------------------------------------------------
# Per-job evaluation (top-level: must pickle into the map_jobs pool)
# ----------------------------------------------------------------------
def _burst_safe_message_bound(config, analysis, source, destination, payload: int) -> int:
    """Burst-safe bound for a whole probe message.

    WaP analyses pipeline consecutive slices at one arbitration-round
    spacing (``first + (slices - 1) * bottleneck_round``) -- an argument
    that assumes *regulated* contenders and is demonstrably exceeded under
    the adversarial traffic simulated here (backlog re-accumulates between
    slices).  Every slice is therefore charged the full burst-safe packet
    bound.  Non-WaP designs keep their message bound: it is already a plain
    sum over the message's packets.
    """
    if not config.is_wap:
        return analysis.wctt_message(source, destination, payload_flits=payload)
    messages = config.messages
    if payload == 1:
        slices = 1
    else:
        payload_bits = payload * messages.link_width_bits - messages.control_bits
        slices = messages.wap_packets_for_payload_bits(payload_bits)
    return slices * analysis.wctt_packet(source, destination)


def _evaluate_job(job: Dict[str, Any]) -> Dict[str, Any]:
    """Simulate one (design point, flow) once; bound it with every backend."""
    from ..analysis.backends import make_analysis_backend
    from ..noc.network import Network
    from ..workloads.synthetic import AdversarialCongestionTraffic

    config = _point_scenario(job["size"], job["topology"], job["design"]).build()
    mesh = config.mesh
    dst = config.memory_controller
    victim = Coord(*job["victim"])
    nodes = list(mesh.nodes())

    if job["workload"] == "sparse":
        active_sources = _sparse_sources(nodes, dst, victim)
    else:
        active_sources = [n for n in nodes if n != dst]
    flow_set = FlowSet.from_pairs(mesh, [(src, dst) for src in active_sources])

    # The WaW hardware is statically configured for the general all-to-one
    # case; a sparse workload does NOT re-weight the arbiters.  That static
    # table is what the network runs with and what every analysis is told
    # about -- the flow-aware backends win by charging only the subset of
    # its credits that can actually request.
    static_weights = (
        WeightTable.from_flow_set(FlowSet.all_to_one(mesh, dst))
        if config.is_waw
        else None
    )

    bounds: Dict[str, int] = {}
    for name in DESIGN_BACKENDS[job["design"]]:
        backend = make_analysis_backend(name)
        analysis = backend.validation_analysis(
            config, destination=dst, flow_set=flow_set, weight_table=static_weights
        )
        bounds[name] = _burst_safe_message_bound(
            config, analysis, victim, dst, job["payload"]
        )

    network = Network(config, weight_table=static_weights)
    traffic = AdversarialCongestionTraffic(
        mesh=mesh,
        victim_source=victim,
        victim_destination=dst,
        payload_flits=job["payload"],
        background_sources=None if job["workload"] == "full" else active_sources,
    )
    probes, _ = traffic.drive(network, job["cycles"])
    latencies = [p.network_latency for p in probes if p.network_latency is not None]
    if not latencies:
        raise RuntimeError(f"no probe completed for job {job!r}")

    return {
        **job,
        "dst": [dst.x, dst.y],
        "observed": max(latencies),
        "probes": len(latencies),
        "bounds": bounds,
    }


def _to_rows(outcome: Dict[str, Any], phase: str) -> List[ComparisonRow]:
    observed = outcome["observed"]
    bounds: Dict[str, int] = outcome["bounds"]
    sound = [b for b, v in bounds.items() if v >= observed]
    best = min((bounds[b] for b in sound), default=None)
    victim = Coord(*outcome["victim"])
    dst = Coord(*outcome["dst"])
    point = "-".join(
        [
            outcome["design"],
            f"{outcome['size']}x{outcome['size']}",
            outcome["topology"],
            outcome["workload"],
            f"p{outcome['payload']}",
        ]
    )
    rows = []
    for backend, bound in bounds.items():
        rows.append(
            ComparisonRow(
                phase=phase,
                point=point,
                design=outcome["design"],
                topology=outcome["topology"],
                workload=outcome["workload"],
                payload_flits=outcome["payload"],
                flow=f"{victim}->{dst}",
                backend=backend,
                bound=bound,
                observed=observed,
                probes=outcome["probes"],
                safe=bound >= observed,
                slack=bound - observed,
                tightness=observed / bound if bound else 0.0,
                winner=bound >= observed and bound == best,
            )
        )
    return rows


@experiment(
    "bound_comparison",
    description="Competing analysis backends: tightness vs adversarial simulation",
    paper_reference="extension (analysis backends)",
    quick_params={
        "mesh_sizes": (3,),
        "payload_sizes": (1,),
        "congestion_cycles": 600,
    },
    sweep_axes={
        "size": lambda v: {"mesh_sizes": (v,)},
        "workload": lambda v: {"workloads": (v,)},
        "payload_flits": lambda v: {"payload_sizes": (v,)},
    },
)
def run(
    *,
    mesh_sizes: Sequence[int] = (3, 4),
    topologies: Sequence[str] = TOPOLOGIES,
    designs: Sequence[str] = ("regular", "waw_wap"),
    workloads: Sequence[str] = WORKLOADS,
    payload_sizes: Sequence[int] = (1, 4),
    congestion_cycles: int = 1_200,
    jobs: int = 1,
) -> List[ComparisonRow]:
    """Compare every applicable analysis backend over the grid.

    Each (design point, flow) is simulated exactly once under adversarial
    congestion and the observation is shared by all backends' rows.
    ``jobs`` fans the simulations onto the ``map_jobs`` worker pool.

    Following the blind-analysis discipline, a deterministic held-out third
    of the grid is simulated *first* and every backend must be sound on it;
    a violation raises :class:`SoundnessViolation` and the full grid is
    never evaluated.
    """
    specs = _grid_jobs(
        mesh_sizes, topologies, designs, workloads, payload_sizes, congestion_cycles
    )
    holdout = [spec for i, spec in enumerate(specs) if i % 3 == 0]
    rest = [spec for i, spec in enumerate(specs) if i % 3 != 0]

    holdout_outcomes = map_jobs(_evaluate_job, holdout, jobs=jobs)
    violations = []
    for outcome in holdout_outcomes:
        for backend, bound in outcome["bounds"].items():
            if bound < outcome["observed"]:
                violations.append(
                    f"{backend}: bound {bound} < observed {outcome['observed']} "
                    f"on {outcome['design']}-{outcome['size']}x{outcome['size']}-"
                    f"{outcome['topology']}-{outcome['workload']} "
                    f"flow {tuple(outcome['victim'])}"
                )
    if violations:
        raise SoundnessViolation(
            "held-out soundness check failed; the comparison grid was not "
            "evaluated: " + "; ".join(violations)
        )

    rest_outcomes = map_jobs(_evaluate_job, rest, jobs=jobs)
    rows: List[ComparisonRow] = []
    for outcome in holdout_outcomes:
        rows.extend(_to_rows(outcome, "holdout"))
    for outcome in rest_outcomes:
        rows.extend(_to_rows(outcome, "full"))
    return rows


def _aggregate(rows: List[ComparisonRow]) -> List[Dict[str, Any]]:
    """Per-backend tightness/soundness summary for the report."""
    by_backend: Dict[str, List[ComparisonRow]] = {}
    for row in rows:
        by_backend.setdefault(row.backend, []).append(row)
    summary = []
    for backend in sorted(by_backend):
        entries = by_backend[backend]
        summary.append(
            {
                "backend": backend,
                "rows": len(entries),
                "wins": sum(1 for r in entries if r.winner),
                "mean observed/bound": round(
                    sum(r.tightness for r in entries) / len(entries), 3
                ),
                "sound": "yes" if all(r.safe for r in entries) else "NO",
            }
        )
    return summary


def report(rows: Optional[List[ComparisonRow]] = None) -> str:
    rows = unwrap(rows) if rows is not None else unwrap(run())
    title = format_title("Analysis backend comparison -- bounds vs adversarial simulation")
    table = format_table([r.as_dict() for r in rows])
    summary = format_table(_aggregate(rows))
    all_safe = all(r.safe for r in rows)
    note = (
        "\nEvery backend's bound is sound on every evaluated point."
        if all_safe
        else "\nWARNING: at least one bound was exceeded by an observation!"
    )
    return f"{title}\n{table}\n\nPer-backend summary:\n{summary}{note}"


def main() -> None:  # pragma: no cover - thin CLI wrapper
    print(report())


if __name__ == "__main__":  # pragma: no cover
    main()
