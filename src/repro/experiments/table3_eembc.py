"""Experiment E3 -- paper Table III: per-core normalized WCET of EEMBC on an 8x8 mesh.

Every node of the 8x8 mesh runs each (single-threaded) EEMBC-Autobench-like
benchmark while communicating with the memory controller at ``R(0,0)``.  WCET
estimates are obtained in the WCET-computation mode: every NoC round trip is
charged its per-core upper bound delay (UBD), derived from the WCTT analysis
of the corresponding design point.  Each cell of the resulting grid is

    WCET(WaW+WaP) / WCET(regular)

averaged over the benchmark suite -- exactly the quantity of the paper's
Table III.  Values above 1 mean the proposal *increases* the WCET estimate of
that core (this happens only for a handful of nodes adjacent to the memory
controller, by up to ~1.5x); values far below 1 mean the proposal slashes the
estimate (3-4 orders of magnitude for the farthest nodes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Dict, List, Optional, Sequence

from ..analysis.reporting import format_grid, format_key_values, format_title
from ..api import Scenario, experiment, unwrap
from ..core.config import NoCConfig
from ..core.ubd import MemoryTiming, UBDTable
from ..geometry import Coord
from ..manycore.wcet_mode import wcet_of_profile
from ..workloads.eembc import autobench_suite
from ..workloads.trace import TaskProfile

__all__ = ["Table3Result", "run", "report"]


@dataclass
class Table3Result:
    """Normalized per-core WCET grid plus summary statistics."""

    mesh_width: int
    mesh_height: int
    #: Per-core ratio WCET(WaW+WaP) / WCET(regular), averaged over benchmarks.
    normalized: Dict[Coord, float]
    #: Per-core, per-benchmark ratios (kept for detailed inspection).
    per_benchmark: Dict[str, Dict[Coord, float]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def cores(self) -> List[Coord]:
        return sorted(self.normalized, key=lambda c: (c.y, c.x))

    def cores_worse_than_regular(self) -> List[Coord]:
        """Cores whose WCET estimate grows under WaW+WaP (ratio > 1)."""
        return [c for c in self.cores if self.normalized[c] > 1.0]

    def worst_slowdown(self) -> float:
        """Largest ratio (the most penalised near-MC core)."""
        return max(self.normalized.values())

    def best_improvement(self) -> float:
        """Smallest ratio (the most improved far core)."""
        return min(self.normalized.values())

    def geometric_summary(self) -> Dict[str, float]:
        values = list(self.normalized.values())
        return {
            "cores": len(values),
            "cores with ratio > 1": len(self.cores_worse_than_regular()),
            "max ratio (worst slowdown)": self.worst_slowdown(),
            "min ratio (best improvement)": self.best_improvement(),
            "mean ratio": mean(values),
        }

    def as_rows(self) -> List[Dict[str, object]]:
        """One row per core, for the machine-readable result exports."""
        return [
            {
                "x": core.x,
                "y": core.y,
                "normalized_wcet_ratio": self.normalized[core],
            }
            for core in self.cores
        ]


@experiment(
    "table3",
    description="Table III -- per-core normalized WCET of EEMBC on an 8x8 mesh",
    paper_reference="Table III",
    quick_params={"mesh_size": 4},
    sweep_axes={
        "size": lambda v: {"mesh_size": v},
        "packet_flits": lambda v: {"max_packet_flits": v},
    },
)
def run(
    *,
    mesh_size: int = 8,
    max_packet_flits: int = 4,
    benchmarks: Optional[Sequence[TaskProfile]] = None,
    memory_timing: Optional[MemoryTiming] = None,
    regular_config: Optional[NoCConfig] = None,
    waw_config: Optional[NoCConfig] = None,
) -> Table3Result:
    """Compute the Table III grid.

    The defaults reproduce the paper's setup: 8x8 mesh, 4-flit cache-line
    replies (so 5 one-flit packets under WaP), the full Autobench-like suite.
    Smaller meshes or subsets of the suite can be requested for quick runs.
    """
    suite = list(benchmarks) if benchmarks is not None else autobench_suite()
    if not suite:
        raise ValueError("benchmark suite is empty")

    regular_cfg = (
        regular_config
        if regular_config is not None
        else Scenario.mesh(mesh_size).regular().max_packet_flits(max_packet_flits).build()
    )
    waw_cfg = (
        waw_config
        if waw_config is not None
        else Scenario.mesh(mesh_size).waw_wap().max_packet_flits(max_packet_flits).build()
    )
    if regular_cfg.mesh != waw_cfg.mesh:
        raise ValueError("both design points must use the same mesh")

    ubd_regular = UBDTable(regular_cfg, memory=memory_timing)
    ubd_waw = UBDTable(waw_cfg, memory=memory_timing)

    per_benchmark: Dict[str, Dict[Coord, float]] = {}
    for profile in suite:
        ratios: Dict[Coord, float] = {}
        for core in ubd_regular.cores():
            regular_wcet = wcet_of_profile(profile, core, ubd_regular).total
            waw_wcet = wcet_of_profile(profile, core, ubd_waw).total
            ratios[core] = waw_wcet / regular_wcet
        per_benchmark[profile.name] = ratios

    cores = list(ubd_regular.cores())
    normalized = {
        core: mean(per_benchmark[p.name][core] for p in suite) for core in cores
    }
    return Table3Result(
        mesh_width=regular_cfg.mesh.width,
        mesh_height=regular_cfg.mesh.height,
        normalized=normalized,
        per_benchmark=per_benchmark,
    )


def report(result: Optional[Table3Result] = None) -> str:
    """Render the normalized WCET grid in the paper's layout."""
    result = unwrap(result) if result is not None else unwrap(run())
    title = format_title(
        "Table III -- normalized WCET per core of EEMBC with WaW+WaP (ratio vs regular wNoC)"
    )
    grid = format_grid(result.normalized, result.mesh_width, result.mesh_height)
    summary = format_key_values(result.geometric_summary())
    note = (
        "\nThe memory controller sits at (x=0, y=0); its cell is empty.  Ratios above 1\n"
        "appear only next to the memory controller; distant cores improve by orders of\n"
        "magnitude, as in the paper."
    )
    return f"{title}\n{grid}\n\n{summary}{note}"


def main() -> None:  # pragma: no cover - thin CLI wrapper
    print(report())


if __name__ == "__main__":  # pragma: no cover
    main()
