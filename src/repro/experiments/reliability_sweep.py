"""Experiment (extension) -- latency under link faults vs the WCTT bound.

The paper's WCTT analysis bounds the worst-case traversal time on perfectly
reliable links.  This experiment asks the complementary, probabilistic
question: when links corrupt or drop flits and the NICs retransmit
(HARQ-style, :mod:`repro.faults`), what latency does the bounded flow
*actually* see -- and at which fault rate do its tail percentiles cross the
analytical reliable-link bound?

For every (topology, fault-rate) cell the Monte-Carlo engine
(:func:`repro.faults.montecarlo.run_trials`) replays the multiprogrammed
EEMBC-like workload across seeded trials: the node farthest from the memory
controller runs a memory-bound profile (the *victim*, the flow whose WCTT
the paper bounds) amid background cores.  The pooled reply-latency samples
yield mean / p50 / p99 / p999 with a 95 % confidence interval, reported
next to the analytical WCTT bound of the victim's reply flow.  A fault rate
of 0 runs a single trial (the simulation is deterministic there) and must
sit below the bound; nonzero rates show the tail latencies growing past it
as retransmissions pile up -- the regime the deterministic analysis cannot
see, and the reason a reliability argument needs both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.reporting import format_table, format_title
from ..api import Scenario, experiment, unwrap
from ..core.wctt import make_wctt_analysis
from ..faults.montecarlo import run_trials

__all__ = ["ReliabilityRow", "run", "report"]


@dataclass(frozen=True)
class ReliabilityRow:
    """One (topology, fault rate) cell of the sweep."""

    topology: str
    mesh: str
    fault_rate: float
    trials: int
    failed_trials: int
    delivered: int
    retransmissions: int
    mean_latency: float
    p50: float
    p99: float
    p999: float
    ci95: float
    wctt_bound: int

    @property
    def p99_over_bound(self) -> float:
        """The p99 latency as a fraction of the analytical WCTT bound."""
        return self.p99 / self.wctt_bound

    def as_dict(self) -> Dict[str, object]:
        return {
            "topology": self.topology,
            "mesh": self.mesh,
            "fault rate": self.fault_rate,
            "trials": self.trials,
            "failed trials": self.failed_trials,
            "delivered": self.delivered,
            "retransmissions": self.retransmissions,
            "mean": round(self.mean_latency, 2),
            "p50": self.p50,
            "p99": self.p99,
            "p99.9": self.p999,
            "ci95": round(self.ci95, 2),
            "WCTT bound": self.wctt_bound,
            "p99/bound": round(self.p99_over_bound, 3),
        }


@experiment(
    "reliability_sweep",
    description="Monte-Carlo latency under link faults vs the analytical WCTT bound",
    paper_reference="extension (reliability; HARQ feedback after arXiv:1601.04131)",
    quick_params={
        "mesh_size": 3,
        "fault_rates": (0.0, 0.01),
        "trials": 3,
        "scale": 0.004,
        "background": 2,
    },
    sweep_axes={
        "size": lambda v: {"mesh_size": v},
        "fault_rate": lambda v: {"fault_rates": (v,)},
        "trials": lambda v: {"trials": v},
        "backend": lambda v: {"backend": v},
    },
)
def run(
    *,
    mesh_size: int = 4,
    topologies: Sequence[str] = ("mesh",),
    fault_rates: Sequence[float] = (0.0, 0.005, 0.02),
    trials: int = 10,
    base_seed: int = 1,
    scale: float = 0.01,
    background: int = 3,
    ack_timeout: int = 256,
    max_retries: int = 8,
    backend: str = "event",
    jobs: int = 1,
) -> List[ReliabilityRow]:
    """Sweep fault rates (and optionally topologies) on the WaW+WaP design.

    ``fault_rates`` are total per-link per-flit fault probabilities, split
    evenly between corruption and loss; rate 0 runs one deterministic trial,
    nonzero rates run ``trials`` seeded Monte-Carlo trials each.  ``scale``
    and ``background`` size the EEMBC-like workload (see
    ``repro.faults.montecarlo``); ``jobs`` fans trials out over worker
    processes.  The analytical bound column is the reliable-link WCTT of
    the victim's memory-reply flow on the corresponding topology.
    """
    rows: List[ReliabilityRow] = []
    for topology in topologies:
        scenario = (
            Scenario.mesh(mesh_size)
            .topology(topology)
            .waw_wap()
            .backend(backend)
        )
        base_config = scenario.build()
        mc = base_config.memory_controller
        victim = sorted(
            (c for c in base_config.mesh.nodes() if c != mc),
            key=lambda c: (c.manhattan(mc), c.y, c.x),
        )[-1]
        bound = make_wctt_analysis(base_config).wctt_message(
            mc, victim, payload_flits=base_config.messages.reply_flits
        )
        for rate in fault_rates:
            config = scenario.fault_model(
                "independent",
                corrupt_rate=rate / 2.0,
                loss_rate=rate / 2.0,
                seed=base_seed,
                ack_timeout=ack_timeout,
                max_retries=max_retries,
            ).build()
            cell_trials = 1 if rate == 0.0 else trials
            result = run_trials(
                config,
                trials=cell_trials,
                base_seed=base_seed,
                workload="eembc",
                jobs=jobs,
                profile="matrix",
                scale=scale,
                background=background,
            )
            dist = result.distribution
            if dist is None:
                raise RuntimeError(
                    f"no latency samples at fault rate {rate} "
                    f"({result.failed_trials}/{cell_trials} trials failed); "
                    "raise max_retries or lower the fault rate"
                )
            rows.append(
                ReliabilityRow(
                    topology=topology,
                    mesh=f"{mesh_size}x{mesh_size}",
                    fault_rate=rate,
                    trials=cell_trials,
                    failed_trials=result.failed_trials,
                    delivered=sum(o.delivered_messages for o in result.outcomes),
                    retransmissions=result.total_retransmissions,
                    mean_latency=dist.mean,
                    p50=dist.p50,
                    p99=dist.p99,
                    p999=dist.p999,
                    ci95=dist.ci95,
                    wctt_bound=bound,
                )
            )
    return rows


def report(rows: Optional[List[ReliabilityRow]] = None) -> str:
    rows = unwrap(rows) if rows is not None else unwrap(run())
    title = format_title(
        "Reliability sweep -- Monte-Carlo latency under link faults vs WCTT bound"
    )
    table = format_table([r.as_dict() for r in rows])
    crossed = [r for r in rows if r.fault_rate > 0 and r.p99_over_bound > 1.0]
    note = (
        "\nTail latencies exceed the reliable-link WCTT bound at fault rate(s): "
        + ", ".join(f"{r.fault_rate:g} ({r.topology})" for r in crossed)
        if crossed
        else "\nAll observed tail latencies stay below the reliable-link WCTT bound."
    )
    return f"{title}\n{table}{note}"


def main() -> None:  # pragma: no cover - thin CLI wrapper
    print(report())


if __name__ == "__main__":  # pragma: no cover
    main()
