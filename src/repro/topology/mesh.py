"""The canonical 2D mesh topology (the paper's baseline).

:class:`Mesh2D` is the topology-object form of the seed's
:class:`~repro.geometry.Mesh` + ``xy_route`` pair: a rectangular grid with
no wrap-around links and dimension-ordered routing.  With the default XY
strategy its routes, legal-turn tables, WCTT bounds and simulation results
are identical to the original hard-coded implementation (the equivalence is
locked down by ``tests/test_topology.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geometry import Coord
from .base import Topology

__all__ = ["Mesh2D"]


@dataclass(frozen=True)
class Mesh2D(Topology):
    """A ``width x height`` 2D mesh (the paper's ``NxM``) with XY/YX routing."""

    kind = "mesh"

    def axis_step(self, current: Coord, destination: Coord, axis: str) -> int:
        cur, dst = (current.x, destination.x) if axis == "x" else (current.y, destination.y)
        if cur < dst:
            return 1
        if cur > dst:
            return -1
        return 0

    def axis_distance(self, source: Coord, destination: Coord, axis: str) -> int:
        if axis == "x":
            return abs(source.x - destination.x)
        return abs(source.y - destination.y)

    def describe_short(self) -> str:
        return f"{self.width}x{self.height} mesh"

    def short_label(self) -> str:
        return f"{self.width}x{self.height}"
