"""Concentrated mesh (CMesh) topology: several terminals per router.

A :class:`ConcentratedMesh` keeps the 2D mesh link structure but attaches
``concentration`` processing elements to every router's LOCAL port, the
classic radix/diameter trade-off: a 64-terminal system becomes a 4x4 router
grid with concentration 4, shortening worst-case paths (and therefore WCTT
bounds) at the price of more local contention per router.

The flow/weight machinery stays coordinate-level: a flow between two router
coordinates represents the aggregated traffic of the clusters behind them,
and the WaW weight tables scale every source count by ``concentration`` so
that one arbitration round serves each *terminal* -- not each router -- its
guaranteed slot (see :meth:`repro.core.weights.WeightTable.from_closed_form`).
Intra-cluster communication never enters the network, matching the existing
rule that a node does not send packets to itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from .mesh import Mesh2D

__all__ = ["ConcentratedMesh"]


@dataclass(frozen=True)
class ConcentratedMesh(Mesh2D):
    """A mesh of routers each serving ``concentration`` terminals."""

    concentration: int = 4

    kind = "cmesh"

    def __post_init__(self) -> None:
        super().__post_init__()
        if isinstance(self.concentration, bool) or not isinstance(self.concentration, int):
            raise ValueError(f"concentration must be an integer, got {self.concentration!r}")
        if self.concentration < 1:
            raise ValueError(f"concentration must be >= 1, got {self.concentration}")

    @property
    def terminals_per_node(self) -> int:
        return self.concentration

    def describe_short(self) -> str:
        return (
            f"{self.width}x{self.height} concentrated mesh "
            f"(c={self.concentration}, {self.num_terminals} terminals)"
        )

    def short_label(self) -> str:
        return f"{self.width}x{self.height}c{self.concentration}"
