"""Ring topology: a single wrapped row of routers.

A :class:`Ring` of ``n`` nodes is the one-dimensional torus: nodes sit at
``(0, 0) .. (n-1, 0)``, each router has only its ``X+``/``X-``/``LOCAL``
ports and the row wraps around.  Routing takes the shorter way around the
ring, breaking exact ties (possible only for even ``n``) towards the
positive direction, so every route is deterministic and minimal.

Rings are the extreme structural design point for the paper's analyses: the
router radix is minimal (cheap arbiters, tiny legal-turn sets) but path
lengths grow linearly with the node count instead of with the square root.
"""

from __future__ import annotations

from dataclasses import dataclass

from .torus import Torus2D

__all__ = ["Ring"]


@dataclass(frozen=True)
class Ring(Torus2D):
    """A bidirectional ring of ``width`` nodes (``Ring(8)`` has 8 nodes)."""

    height: int = 1

    kind = "ring"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.height != 1:
            raise ValueError(f"a ring has a single row of nodes, got height={self.height}")
        if self.width < 2:
            raise ValueError("a ring needs at least 2 nodes")

    def describe_short(self) -> str:
        return f"{self.width}-node ring"
