"""Pluggable network topologies and routing strategies.

This package is the single source of truth for network structure and
deterministic routing.  The :class:`Topology` interface (nodes, links,
``route(src, dst)``, legal-turn queries) is consumed by the analytical
models (:mod:`repro.core`), the cycle-accurate simulator (:mod:`repro.noc`)
and the :class:`repro.api.Scenario` builder; four implementations ship:

========================  =====================================================
:class:`Mesh2D`           the paper's 2D mesh (byte-identical to the seed)
:class:`Torus2D`          mesh plus wrap-around links, shortest-way routing
:class:`Ring`             one wrapped row, the minimal-radix extreme
:class:`ConcentratedMesh` mesh with ``concentration`` terminals per router
========================  =====================================================

Routing is a strategy object (:data:`XY` or :data:`YX` dimension order);
:func:`make_topology` builds any of the above by registry name, which is what
``Scenario.topology(...)`` and the sweep axes use.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from .base import (
    Hop,
    ROUTING_STRATEGIES,
    RoutingStrategy,
    Topology,
    XY,
    YX,
    as_topology,
)
from .concentrated import ConcentratedMesh
from .mesh import Mesh2D
from .ring import Ring
from .torus import Torus2D

__all__ = [
    "Hop",
    "RoutingStrategy",
    "XY",
    "YX",
    "ROUTING_STRATEGIES",
    "Topology",
    "as_topology",
    "Mesh2D",
    "Torus2D",
    "Ring",
    "ConcentratedMesh",
    "TOPOLOGY_KINDS",
    "make_topology",
]

#: Topology classes addressable by registry name.
TOPOLOGY_KINDS: Dict[str, Type[Topology]] = {
    "mesh": Mesh2D,
    "torus": Torus2D,
    "ring": Ring,
    "cmesh": ConcentratedMesh,
}


def make_topology(
    kind: str,
    width: int,
    height: Optional[int] = None,
    *,
    routing: str = "xy",
    concentration: Optional[int] = None,
) -> Topology:
    """Build a topology by registry name.

    ``height`` defaults to ``width`` (square), except for ``"ring"`` where it
    must be 1 (and defaults to 1).  ``routing`` selects the dimension order
    (``"xy"`` or ``"yx"``); ``concentration`` is only meaningful -- and only
    accepted -- for ``"cmesh"``.

    Raises ``ValueError`` for unknown names or inconsistent parameters.
    """
    if kind not in TOPOLOGY_KINDS:
        known = ", ".join(sorted(TOPOLOGY_KINDS))
        raise ValueError(f"unknown topology kind {kind!r}; known kinds: {known}")
    if routing not in ROUTING_STRATEGIES:
        known = ", ".join(sorted(ROUTING_STRATEGIES))
        raise ValueError(f"unknown routing strategy {routing!r}; known strategies: {known}")
    if concentration is not None and kind != "cmesh":
        raise ValueError(f"concentration only applies to 'cmesh', not {kind!r}")
    strategy = ROUTING_STRATEGIES[routing]
    if kind == "ring":
        if height not in (None, 1):
            raise ValueError(f"a ring has a single row of nodes, got height={height}")
        return Ring(width, 1, strategy)
    height = width if height is None else height
    if kind == "cmesh":
        return ConcentratedMesh(
            width, height, strategy, concentration if concentration is not None else 4
        )
    return TOPOLOGY_KINDS[kind](width, height, strategy)
