"""2D torus topology: a mesh whose rows and columns wrap around.

Every router of a :class:`Torus2D` has all four directional ports (when the
corresponding dimension has at least two nodes): the ``X+`` output of the
last column wraps to column 0, and so on.  Routing stays dimension-ordered
and deterministic; within each axis the packet takes the *shorter* way
around, breaking exact ties towards the positive direction, so routes are
minimal and statically known -- exactly what the time-composable WCTT
analyses require.

Caveat for the cycle-accurate simulator: dimension-ordered routing on a
torus is *not* deadlock-free in general (the wrap links close cyclic channel
dependencies; real tori break them with virtual channels, which the router
model does not implement).  Bounded request/reply traffic with small packets
-- the evaluated manycore's memory traffic -- drains fine in practice, and
``Network.run_until_idle`` raises if a deadlock does occur.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..geometry import Coord, Port, _INPUT_DISPLACEMENT, _OUTPUT_DISPLACEMENT
from .base import Topology

__all__ = ["Torus2D"]


@dataclass(frozen=True)
class Torus2D(Topology):
    """A ``width x height`` torus: the mesh grid plus wrap-around links."""

    kind = "torus"

    def _axis_size(self, axis: str) -> int:
        return self.width if axis == "x" else self.height

    # ------------------------------------------------------------------
    # Physical connectivity: every directional port exists, links wrap.
    # ------------------------------------------------------------------
    def downstream(self, coord: Coord, out_port: Port) -> Optional[Coord]:
        self.require(coord)
        if out_port is Port.LOCAL:
            return None
        dx, dy = _OUTPUT_DISPLACEMENT[out_port]
        if (dx and self.width == 1) or (dy and self.height == 1):
            return None
        return Coord((coord.x + dx) % self.width, (coord.y + dy) % self.height)

    def upstream(self, coord: Coord, in_port: Port) -> Optional[Coord]:
        self.require(coord)
        if in_port is Port.LOCAL:
            return None
        dx, dy = _INPUT_DISPLACEMENT[in_port]
        if (dx and self.width == 1) or (dy and self.height == 1):
            return None
        return Coord((coord.x + dx) % self.width, (coord.y + dy) % self.height)

    # ------------------------------------------------------------------
    # Routing: shortest way around each axis, ties towards positive.
    # ------------------------------------------------------------------
    def axis_step(self, current: Coord, destination: Coord, axis: str) -> int:
        size = self._axis_size(axis)
        cur, dst = (current.x, destination.x) if axis == "x" else (current.y, destination.y)
        forward = (dst - cur) % size
        if forward == 0:
            return 0
        return 1 if forward <= size - forward else -1

    def axis_distance(self, source: Coord, destination: Coord, axis: str) -> int:
        size = self._axis_size(axis)
        src, dst = (source.x, destination.x) if axis == "x" else (source.y, destination.y)
        forward = (dst - src) % size
        return min(forward, size - forward)

    @property
    def has_wraparound(self) -> bool:
        return self.width > 1 or self.height > 1

    def describe_short(self) -> str:
        return f"{self.width}x{self.height} torus"
