"""The pluggable topology/routing abstraction.

Everything above the geometry layer -- the WaW weight model, both WCTT
analyses, the cycle-accurate simulator and the public :class:`repro.api.Scenario`
builder -- talks to the network structure through the :class:`Topology`
interface defined here:

* node enumeration and identification (inherited from
  :class:`~repro.geometry.Mesh`: ``nodes()``, ``node_id``, ``coord_of``);
* physical connectivity (``downstream``, ``upstream``, ``input_ports``,
  ``output_ports``, ``links()``);
* deterministic routing (``route(src, dst)``, ``output_port(current, dst)``)
  driven by a pluggable dimension-ordered :class:`RoutingStrategy` (XY or YX);
* the static legal-turn relation the time-composable analyses rely on
  (``legal_inputs_for_output`` / ``legal_outputs_for_input``).

A topology is a frozen dataclass extending :class:`~repro.geometry.Mesh`
(every supported topology arranges its nodes on a ``width x height``
coordinate grid), so any :class:`Topology` can be stored wherever a ``Mesh``
is expected -- in particular in :attr:`repro.core.config.NoCConfig.mesh` --
and all structural queries dispatch polymorphically.  Concrete topologies
live in sibling modules: :class:`~repro.topology.mesh.Mesh2D` (the paper's
baseline), :class:`~repro.topology.torus.Torus2D`,
:class:`~repro.topology.ring.Ring` and
:class:`~repro.topology.concentrated.ConcentratedMesh`.

Routes are deterministic and minimal for every topology, which is the
property both WCTT analyses need: the set of (router, input, output) triples
a flow can occupy is a static function of its endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from ..geometry import Coord, Mesh, Port

__all__ = [
    "Hop",
    "RoutingStrategy",
    "XY",
    "YX",
    "ROUTING_STRATEGIES",
    "Topology",
    "as_topology",
]


@dataclass(frozen=True)
class Hop:
    """One router traversal of a route.

    ``router`` is the router being crossed, ``in_port`` the input port the
    packet arrives on (``LOCAL`` for the injection router) and ``out_port``
    the output port the packet leaves through (``LOCAL`` for the ejection
    router).
    """

    router: Coord
    in_port: Port
    out_port: Port


def _mirror(ports: Tuple[Port, ...]) -> Tuple[Port, ...]:
    """Swap the X and Y axes of a port tuple (XY tables -> YX tables)."""
    swap = {
        Port.XPLUS: Port.YPLUS,
        Port.XMINUS: Port.YMINUS,
        Port.YPLUS: Port.XPLUS,
        Port.YMINUS: Port.XMINUS,
        Port.LOCAL: Port.LOCAL,
    }
    return tuple(swap[p] for p in ports)


# Legal turns under X-first dimension-ordered routing: a packet never turns
# from the Y dimension back into the X dimension.  The tuple ordering is
# significant -- it fixes the candidate order of the round-robin arbiters of
# the simulator -- and must not be changed.
_XY_LEGAL_INPUTS: Dict[Port, Tuple[Port, ...]] = {
    Port.XPLUS: (Port.XPLUS, Port.LOCAL),
    Port.XMINUS: (Port.XMINUS, Port.LOCAL),
    Port.YPLUS: (Port.YPLUS, Port.XPLUS, Port.XMINUS, Port.LOCAL),
    Port.YMINUS: (Port.YMINUS, Port.XPLUS, Port.XMINUS, Port.LOCAL),
    Port.LOCAL: (Port.XPLUS, Port.XMINUS, Port.YPLUS, Port.YMINUS),
}

_XY_LEGAL_OUTPUTS: Dict[Port, Tuple[Port, ...]] = {
    Port.XPLUS: (Port.XPLUS, Port.YPLUS, Port.YMINUS, Port.LOCAL),
    Port.XMINUS: (Port.XMINUS, Port.YPLUS, Port.YMINUS, Port.LOCAL),
    Port.YPLUS: (Port.YPLUS, Port.LOCAL),
    Port.YMINUS: (Port.YMINUS, Port.LOCAL),
    Port.LOCAL: (Port.XPLUS, Port.XMINUS, Port.YPLUS, Port.YMINUS, Port.LOCAL),
}

_YX_LEGAL_INPUTS = {_mirror((p,))[0]: _mirror(v) for p, v in _XY_LEGAL_INPUTS.items()}
_YX_LEGAL_OUTPUTS = {_mirror((p,))[0]: _mirror(v) for p, v in _XY_LEGAL_OUTPUTS.items()}


@dataclass(frozen=True)
class RoutingStrategy:
    """A deterministic dimension-ordered routing discipline.

    ``axes`` is the order in which the dimensions are resolved: ``("x", "y")``
    is the paper's XY routing (X first), ``("y", "x")`` is YX.  The strategy
    decides, given the per-axis signed steps computed by the topology, which
    output port a packet takes next, and owns the static legal-turn tables
    that the arbiters and the WCTT analyses consume.
    """

    name: str
    axes: Tuple[str, str]

    def __post_init__(self) -> None:
        if tuple(sorted(self.axes)) != ("x", "y"):
            raise ValueError(f"axes must be a permutation of ('x', 'y'), got {self.axes}")

    # ------------------------------------------------------------------
    def output_port(self, steps: Dict[str, int]) -> Port:
        """Output port for the per-axis signed steps (``0`` = axis resolved).

        ``steps["x"]`` is ``+1``/``-1``/``0`` for travel in +x / -x / done,
        likewise for ``"y"``; returns ``LOCAL`` when both axes are resolved.
        """
        for axis in self.axes:
            step = steps[axis]
            if step > 0:
                return Port.XPLUS if axis == "x" else Port.YPLUS
            if step < 0:
                return Port.XMINUS if axis == "x" else Port.YMINUS
        return Port.LOCAL

    # ------------------------------------------------------------------
    @property
    def legal_inputs(self) -> Dict[Port, Tuple[Port, ...]]:
        """For each output port, the input ports that may ever request it."""
        return _XY_LEGAL_INPUTS if self.axes[0] == "x" else _YX_LEGAL_INPUTS

    @property
    def legal_outputs(self) -> Dict[Port, Tuple[Port, ...]]:
        """For each input port, the output ports a packet on it may request."""
        return _XY_LEGAL_OUTPUTS if self.axes[0] == "x" else _YX_LEGAL_OUTPUTS


#: X-first dimension-ordered routing (the paper's XY).
XY = RoutingStrategy("xy", ("x", "y"))
#: Y-first dimension-ordered routing.
YX = RoutingStrategy("yx", ("y", "x"))

#: Strategies addressable by name (:meth:`repro.api.Scenario.topology`).
ROUTING_STRATEGIES: Dict[str, RoutingStrategy] = {"xy": XY, "yx": YX}


@dataclass(frozen=True)
class Topology(Mesh):
    """Base class of every concrete topology.

    Subclasses choose the physical connectivity by overriding
    :meth:`~repro.geometry.Mesh.downstream` / :meth:`~repro.geometry.Mesh.upstream`
    (wrap-around links, missing dimensions, ...) and the distance metric by
    overriding :meth:`axis_step`; routing, legal turns and route validation
    are implemented here once, in terms of those two hooks.
    """

    routing: RoutingStrategy = XY

    #: Registry key of the topology (overridden by every subclass).
    kind = "abstract"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not isinstance(self.routing, RoutingStrategy):
            raise ValueError(f"routing must be a RoutingStrategy, got {self.routing!r}")

    # ------------------------------------------------------------------
    # Structure hooks
    # ------------------------------------------------------------------
    def axis_step(self, current: Coord, destination: Coord, axis: str) -> int:
        """Signed unit step (+1/-1/0) along ``axis`` from ``current`` towards
        ``destination``, honouring the topology's link structure.

        Must be *consistent*: repeatedly stepping must reach the destination
        in a minimal number of hops, and the step must not change sign along
        the way (dimension-ordered routes never reverse within an axis).
        """
        raise NotImplementedError

    def axis_distance(self, source: Coord, destination: Coord, axis: str) -> int:
        """Routed hop count along one axis (``abs`` difference on a mesh,
        shortest way around on a wrapped axis)."""
        raise NotImplementedError

    def distance(self, source: Coord, destination: Coord) -> int:
        """Routed hop distance between two nodes (0 for a node to itself)."""
        return self.axis_distance(source, destination, "x") + self.axis_distance(
            source, destination, "y"
        )

    @property
    def terminals_per_node(self) -> int:
        """Processing elements attached to each router (1 except CMesh)."""
        return 1

    @property
    def num_terminals(self) -> int:
        """Total processing elements of the system."""
        return self.num_nodes * self.terminals_per_node

    @property
    def has_wraparound(self) -> bool:
        """True when some link wraps an edge (torus/ring); the closed-form
        mesh weight equations and the ``any_direction`` contender recursion
        only apply when this is False."""
        return False

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def output_port(self, current: Coord, destination: Coord) -> Port:
        """Output port selected at ``current`` for ``destination``.

        Returns ``Port.LOCAL`` when ``current == destination``.
        """
        steps = {
            "x": 0 if current.x == destination.x else self.axis_step(current, destination, "x"),
            "y": 0 if current.y == destination.y else self.axis_step(current, destination, "y"),
        }
        return self.routing.output_port(steps)

    def route(self, source: Coord, destination: Coord) -> List[Hop]:
        """Full deterministic route from ``source`` to ``destination``.

        The first hop's input port is ``LOCAL`` (injection at the source
        router) and the last hop's output port is ``LOCAL`` (ejection at the
        destination router).  A route from a node to itself is a single hop
        ``Hop(router, LOCAL, LOCAL)``.
        """
        self.require(source)
        self.require(destination)

        hops: List[Hop] = []
        current = source
        in_port = Port.LOCAL
        # The path length is bounded by the routed distance, so the loop below
        # always terminates; the explicit bound guards against routing bugs.
        for _ in range(self.distance(source, destination) + 1):
            out_port = self.output_port(current, destination)
            hops.append(Hop(current, in_port, out_port))
            if out_port is Port.LOCAL:
                return hops
            nxt = self.downstream(current, out_port)
            if nxt is None:  # pragma: no cover - defensive
                raise RuntimeError(f"route left the topology at {current} via {out_port}")
            # Travel-direction port naming: the packet enters the next router
            # on the input port named after its direction of travel.
            in_port = out_port
            current = nxt
        raise RuntimeError(  # pragma: no cover - defensive
            f"route from {source} to {destination} did not terminate"
        )

    def route_routers(self, source: Coord, destination: Coord) -> List[Coord]:
        """Just the sequence of routers crossed by the route."""
        return [hop.router for hop in self.route(source, destination)]

    # ------------------------------------------------------------------
    # Legal turns (time-composable contention structure)
    # ------------------------------------------------------------------
    def legal_inputs_for_output(self, router: Coord, out_port: Port) -> Tuple[Port, ...]:
        """Input ports of ``router`` that may request ``out_port``.

        Only ports that physically exist at ``router`` are returned.  The
        LOCAL input is a legitimate contender for every directional output
        (the local core can inject towards any direction) but never for the
        LOCAL output (a node does not send packets to itself through the
        network).
        """
        existing = set(self.input_ports(router))
        return tuple(p for p in self.routing.legal_inputs[out_port] if p in existing)

    def legal_outputs_for_input(self, router: Coord, in_port: Port) -> Tuple[Port, ...]:
        """Output ports of ``router`` that a packet on ``in_port`` may request."""
        existing = set(self.output_ports(router))
        return tuple(p for p in self.routing.legal_outputs[in_port] if p in existing)

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def short_label(self) -> str:
        """Compact label used in result rows.

        ``Mesh2D`` overrides this to the bare ``"8x8"`` so existing mesh
        experiment outputs are unchanged; every other topology names itself.
        """
        return self.describe_short()

    def describe_short(self) -> str:
        """Human-readable structure description, e.g. ``"8x8 torus"``."""
        return f"{self.width}x{self.height} {self.kind}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe_short()


@lru_cache(maxsize=128)
def _mesh2d_for(width: int, height: int) -> "Topology":
    from .mesh import Mesh2D

    return Mesh2D(width, height)


def as_topology(mesh: Mesh) -> Topology:
    """Normalise a plain :class:`~repro.geometry.Mesh` to a topology object.

    A :class:`Topology` passes through unchanged; a bare ``Mesh`` (the seed
    representation, still produced by ``Scenario.mesh(...)`` without a
    topology axis) is viewed as a :class:`~repro.topology.mesh.Mesh2D` with
    XY routing, which is behaviourally identical.
    """
    if isinstance(mesh, Topology):
        return mesh
    return _mesh2d_for(mesh.width, mesh.height)
