"""Flow-set-aware competing WCTT analyses: holistic and trajectory.

The paper's analyses are *traffic-agnostic*: the regular-mesh bound charges
every legal input port of every crossed output port (assumption 1 of Section
II.A -- "every node may communicate with every other node"), and the WaW+WaP
bound charges one full arbitration round per hop.  When the interfering
traffic is actually known -- the evaluated manycore only carries core <->
memory-controller flows -- both over-approximate: input ports that carry no
flow of the workload never request an output port and contribute no
contention.

This module adds two analyses that exploit a known interfering
:class:`~repro.core.flows.FlowSet`, the classic competing lenses of the
WCRT-analysis literature (holistic vs trajectory):

* :class:`HolisticAnalysis` -- a per-router busy-period view.  At every
  output port crossed by the packet the *input ports* that carry at least
  one interfering flow are charged: each active input contributes its
  worst-case occupancy once per arbitration round (its WaW flit credits
  under weighted arbitration, one packet slot under round-robin), and the
  per-packet occupancy is the same back-pressure-aware downstream recursion
  the regular-mesh reference uses.  Restricted to a full all-to-one flow set
  on the plain mesh this collapses to exactly the regular recursion, which
  is how the analysis inherits the reference's validated structure.
* :class:`TrajectoryAnalysis` -- a path-following view.  The bound walks the
  packet's route source -> destination and accumulates, per hop, one
  worst-case service per interfering *flow* crossing the hop's output port
  (not per input port).  Counting flows instead of ports is never below the
  holistic per-port pressure (every active port carries >= 1 flow, and under
  WaW each flow is charged at least its port's credit share), and the
  accumulation is a plain sum with no progress ``max()`` -- so the
  trajectory bound dominates the holistic bound hop for hop.  It is the
  deliberately pessimistic second opinion of the pair.

On a WaW+WaP design both analyses switch to the *local* per-hop model the
paper's weighted bound is built on (min-size packets are fully absorbed by
downstream buffers, so a hop's delay no longer depends on downstream
contention): one arbitration round per hop, but a round only serves the
*active* inputs' credit slots instead of every input's -- which is exactly
where a flow-aware bound can beat the paper on sparse workloads.

Burst safety: the adversarial validation traffic keeps several messages per
flow outstanding, so interfering packets may sit *ahead of the analysed
packet in its own input buffer*.  Under round-robin with recursive service
times the busy-period recursion dominates any finite backlog (the same
argument the regular reference relies on and the validation experiment
confirms); under WaW+WaP the buffered backlog is charged explicitly as
extra arbitration rounds -- the same correction the weighted bound's
``regulated_contenders=False`` variant applies.  Both analyses are
therefore burst-safe as-is and serve as their own validation variant.

Both analyses are topology-generic: routes, port legality and downstream
links all come from :mod:`repro.topology`, so tori, rings and concentrated
meshes analyse exactly like the plain mesh.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.config import NoCConfig
from ..core.flows import Flow, FlowSet
from ..core.weights import WeightTable
from ..geometry import Coord, Mesh, Port
from ..topology.base import Hop

__all__ = ["FlowAwareWCTTAnalysis", "HolisticAnalysis", "TrajectoryAnalysis"]


class FlowAwareWCTTAnalysis:
    """Common machinery of the holistic and trajectory analyses.

    Parameters
    ----------
    config:
        The NoC design point.  Any arbitration/packetization combination is
        accepted: WaP bounds the contending packet size to ``m`` flits, WaW
        weights the per-input pressure by the input's flit credits.
    flow_set:
        The interfering flows.  Defaults to the all-to-one memory traffic of
        the evaluated manycore (every node towards the memory controller).
        The bound only covers flows of this set -- analysing a flow outside
        it raises.
    weight_table:
        WaW credits per input port.  Only consulted on weighted-arbitration
        designs; defaults to the weights derived from ``flow_set`` (the
        table the hardware of the evaluated system would be configured
        with).  Pass the network's actual table when it differs.
    """

    def __init__(
        self,
        config: NoCConfig,
        flow_set: Optional[FlowSet] = None,
        *,
        weight_table: Optional[WeightTable] = None,
    ):
        self.config = config
        self.mesh: Mesh = config.mesh
        self.topology = config.topology
        self.flow_set: FlowSet = (
            flow_set
            if flow_set is not None
            else FlowSet.all_to_one(config.mesh, config.memory_controller)
        )
        if len(self.flow_set) == 0:
            raise ValueError("flow-aware analyses need a non-empty flow set")
        self.weights: Optional[WeightTable] = None
        if config.is_waw:
            self.weights = (
                weight_table
                if weight_table is not None
                else WeightTable.from_flow_set(self.flow_set)
            )
        #: Size assumed for contending packets: WaP caps every arbitration
        #: slot at the minimum packet size, otherwise contenders are maximal.
        self.contender_packet_flits = (
            config.min_packet_flits if config.is_wap else config.max_packet_flits
        )
        self._crossing_cache: Dict[Tuple[Coord, Port], Dict[Port, int]] = {}
        self._pressure_cache: Dict[Tuple[Coord, Port], int] = {}

    # ------------------------------------------------------------------
    # Contention structure
    # ------------------------------------------------------------------
    def crossing_by_input(self, router: Coord, out_port: Port) -> Dict[Port, int]:
        """Interfering-flow count per input port feeding ``out_port``."""
        key = (router, out_port)
        cached = self._crossing_cache.get(key)
        if cached is not None:
            return cached
        crossing: Dict[Port, int] = {}
        for flow in self.flow_set.flows_through_output(router, out_port):
            for hop in flow.route(self.mesh):
                if hop.router == router and hop.out_port == out_port:
                    crossing[hop.in_port] = crossing.get(hop.in_port, 0) + 1
                    break
        self._crossing_cache[key] = crossing
        return crossing

    def _input_slots(self, router: Coord, in_port: Port) -> int:
        """Packet slots an active input may consume per arbitration round."""
        if self.weights is None:
            return 1  # round-robin: one grant between two grants to ours
        return max(1, self.weights.input_credits(router, in_port))

    def _port_pressure(self, router: Coord, crossing: Dict[Port, int]) -> int:
        """Subclass hook: contending packet slots per round of one port."""
        raise NotImplementedError

    def pressure(self, router: Coord, out_port: Port) -> int:
        """Worst-case contending packet slots per round of ``out_port``.

        Zero when no interfering flow crosses the port at all.
        """
        key = (router, out_port)
        cached = self._pressure_cache.get(key)
        if cached is None:
            cached = self._port_pressure(router, self.crossing_by_input(router, out_port))
            self._pressure_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Per-port service times (back-pressure-aware, merging recursion)
    # ------------------------------------------------------------------
    @property
    def _serialization(self) -> int:
        return self.contender_packet_flits * self.config.timing.flit_cycle

    def _route_service_times(self, route: List[Hop]) -> List[int]:
        """Worst occupancy of each route output port by one contending packet.

        Structurally identical to the regular reference's merging recursion
        (a contender that wins a port follows the remainder of our route),
        with the all-inputs contender count replaced by the flow-aware
        pressure of the port.
        """
        timing = self.config.timing
        serialization = self._serialization
        services = [0] * len(route)
        services[-1] = serialization  # ejection: drained at link rate
        for i in range(len(route) - 2, -1, -1):
            next_hop = route[i + 1]
            pressure = max(1, self.pressure(next_hop.router, next_hop.out_port))
            occupancy = timing.routing_latency + pressure * services[i + 1]
            services[i] = max(serialization, occupancy) + timing.link_latency
        return services

    # ------------------------------------------------------------------
    # Per-hop wait (busy-period mode, non-WaW+WaP designs)
    # ------------------------------------------------------------------
    def _hop_wait(self, hop: Hop, service: int) -> int:
        """Worst cycles the packet waits for ``hop``'s output-port grant."""
        pressure = max(1, self.pressure(hop.router, hop.out_port))
        return (pressure - 1) * service

    # ------------------------------------------------------------------
    # Local per-hop delay (WaW+WaP designs)
    # ------------------------------------------------------------------
    def _extra_backlog_rounds(self, hop: Hop) -> int:
        """Arbitration rounds draining our own input's buffered backlog.

        Non-conforming (bursty) upstream flows may have filled the packet's
        input buffer ahead of it; each round drains the input's credit worth
        of packet slots.  Mirrors the weighted bound's
        ``regulated_contenders=False`` correction, charged unconditionally
        so the analyses stay sound against adversarial traffic.
        """
        backlog_slots = self.config.buffer_depth
        input_slots = self._input_slots(hop.router, hop.in_port)
        return max(0, -(-backlog_slots // input_slots) - 1)

    def _local_hop_delay(self, hop: Hop) -> int:
        """WaW+WaP hop delay: router pipeline + arbitration rounds + link.

        Identical in structure to the weighted reference's ``hop_delay``
        (time-composability makes the hop local) with the full-weight round
        replaced by the flow-aware round -- only active inputs' slots are
        served.
        """
        timing = self.config.timing
        m = self.contender_packet_flits
        slots = max(1, self.pressure(hop.router, hop.out_port))
        rounds = 1 + self._extra_backlog_rounds(hop)
        return (
            timing.routing_latency
            + rounds * slots * m * timing.flit_cycle
            + (0 if hop.out_port is Port.LOCAL else timing.link_latency)
        )

    # ------------------------------------------------------------------
    # Packet / message bounds
    # ------------------------------------------------------------------
    def _own_flow(self, source: Coord, destination: Coord) -> Flow:
        if source == destination:
            raise ValueError("source and destination coincide")
        flow = Flow(source, destination)
        if flow not in self.flow_set:
            raise ValueError(
                f"flow {source}->{destination} is not part of the interfering "
                f"flow set this {type(self).__name__} was built for; construct "
                "the analysis with a flow set containing it"
            )
        return flow

    def _own_flits(self, packet_flits: Optional[int]) -> int:
        if packet_flits is None:
            return (
                self.config.min_packet_flits
                if self.config.is_wap
                else self.config.max_packet_flits
            )
        if packet_flits < 1:
            raise ValueError("packet_flits must be >= 1")
        if self.config.is_wap and packet_flits > self.config.min_packet_flits:
            raise ValueError(
                "WaP never injects packets larger than the minimum size "
                f"({self.config.min_packet_flits} flits); got {packet_flits}"
            )
        return packet_flits

    def wctt_packet(
        self, source: Coord, destination: Coord, *, packet_flits: Optional[int] = None
    ) -> int:
        raise NotImplementedError

    def wctt_message(self, source: Coord, destination: Coord, *, payload_flits: int) -> int:
        """WCTT of a whole message: the sum of its slices' packet bounds.

        Deliberately NO inter-slice pipelining credit: the weighted
        reference's ``first + (slices - 1) * bottleneck_round`` argument
        assumes regulated contenders, and against non-conforming (bursty)
        traffic the input-buffer backlog re-accumulates between slices --
        the ``bound_comparison`` experiment demonstrates observations above
        the pipelined bound.  Charging every slice the full packet bound
        keeps the flow-aware message bounds burst-safe as-is.
        """
        if payload_flits < 1:
            raise ValueError("payload_flits must be >= 1")
        if self.config.is_wap:
            messages = self.config.messages
            if payload_flits == 1:
                slices = 1
            else:
                payload_bits = (
                    payload_flits * messages.link_width_bits - messages.control_bits
                )
                slices = messages.wap_packets_for_payload_bits(payload_bits)
            return slices * self.wctt_packet(source, destination)
        max_flits = self.config.max_packet_flits
        full, rest = divmod(payload_flits, max_flits)
        total = 0
        if full:
            total += full * self.wctt_packet(source, destination, packet_flits=max_flits)
        if rest:
            total += self.wctt_packet(source, destination, packet_flits=rest)
        return total

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def zero_load_latency(self, source: Coord, destination: Coord, packet_flits: int = 1) -> int:
        """Latency with no contention at all (lower bound, used by tests)."""
        route = self.topology.route(source, destination)
        timing = self.config.timing
        hops = len(route)
        return (
            hops * timing.routing_latency
            + (hops - 1) * timing.link_latency
            + packet_flits * timing.flit_cycle
        )

    def route(self, source: Coord, destination: Coord) -> List[Hop]:
        return self.topology.route(source, destination)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}({self.config.describe()}, "
            f"{len(self.flow_set)} interfering flows)"
        )


class HolisticAnalysis(FlowAwareWCTTAnalysis):
    """Per-router busy-period iteration over the interfering flow set.

    The packet's route is walked destination -> source: the converged
    busy-period length of each output port (one full round of every active
    input's slots, each slot held for the back-pressure-aware downstream
    service time) feeds the wait of the hop before it, exactly like the
    regular reference -- but only input ports that actually carry an
    interfering flow are charged, and under WaW each is charged its
    configured credit share.
    """

    def _port_pressure(self, router: Coord, crossing: Dict[Port, int]) -> int:
        return sum(self._input_slots(router, in_port) for in_port in crossing)

    def wctt_packet(
        self, source: Coord, destination: Coord, *, packet_flits: Optional[int] = None
    ) -> int:
        self._own_flow(source, destination)
        own_flits = self._own_flits(packet_flits)
        timing = self.config.timing
        route = self.topology.route(source, destination)
        if self.config.is_waw_wap:
            return sum(self._local_hop_delay(hop) for hop in route)
        services = self._route_service_times(route)
        own_serialization = own_flits * timing.flit_cycle

        progress_after: int = own_serialization
        for i in range(len(route) - 1, 0, -1):
            wait = self._hop_wait(route[i], services[i])
            stage = timing.link_latency + timing.routing_latency + wait + progress_after
            progress_after = max(own_serialization, stage)

        injection_wait = self._hop_wait(route[0], services[0])
        return timing.routing_latency + injection_wait + progress_after


class TrajectoryAnalysis(FlowAwareWCTTAnalysis):
    """Path-following worst-case accumulation along the packet's route.

    The bound follows the packet source -> destination and simply adds, per
    hop, the router pipeline, the link and a wait of one worst-case service
    per interfering *flow* crossing the output port.  Charging flows rather
    than input ports (and a plain sum rather than the holistic progress
    ``max``) makes this bound dominate the holistic one everywhere -- the
    conservative end of the competing pair.
    """

    def _port_pressure(self, router: Coord, crossing: Dict[Port, int]) -> int:
        if self.weights is None:
            return sum(crossing.values())
        return sum(
            max(count, self._input_slots(router, in_port))
            for in_port, count in crossing.items()
        )

    def wctt_packet(
        self, source: Coord, destination: Coord, *, packet_flits: Optional[int] = None
    ) -> int:
        self._own_flow(source, destination)
        own_flits = self._own_flits(packet_flits)
        timing = self.config.timing
        route = self.topology.route(source, destination)
        if self.config.is_waw_wap:
            return sum(self._local_hop_delay(hop) for hop in route)
        services = self._route_service_times(route)

        total = timing.routing_latency  # injection-router pipeline
        for i, hop in enumerate(route):
            if i > 0:
                total += timing.link_latency + timing.routing_latency
            total += self._hop_wait(hop, services[i])
        return total + own_flits * timing.flit_cycle
