"""Analysis utilities: the pluggable :class:`AnalysisBackend` registry with
the competing flow-aware analyses (:mod:`repro.analysis.flowaware`), bound
validation, report formatting and the numpy-vectorized batch evaluator
(:mod:`repro.analysis.vector`)."""

from .backends import (
    AnalysisBackend,
    available_analysis_backends,
    make_analysis_backend,
    normalize_analysis_backend_name,
    register_analysis_backend,
)
from .flowaware import FlowAwareWCTTAnalysis, HolisticAnalysis, TrajectoryAnalysis
from .reporting import format_grid, format_key_values, format_table, format_title
from .validation import BoundValidationResult, validate_design, validate_flow_bound
from .vector import (
    GridEvaluator,
    VectorRegularAnalysis,
    VectorWaWWaPAnalysis,
    evaluate_grid,
    make_vector_analysis,
    vector_supported,
    vector_ubd_entries,
    vector_wctt_map,
    vector_wctt_summary,
)

__all__ = [
    "AnalysisBackend",
    "available_analysis_backends",
    "make_analysis_backend",
    "normalize_analysis_backend_name",
    "register_analysis_backend",
    "FlowAwareWCTTAnalysis",
    "HolisticAnalysis",
    "TrajectoryAnalysis",
    "format_grid",
    "format_key_values",
    "format_table",
    "format_title",
    "BoundValidationResult",
    "validate_design",
    "validate_flow_bound",
    "GridEvaluator",
    "VectorRegularAnalysis",
    "VectorWaWWaPAnalysis",
    "evaluate_grid",
    "make_vector_analysis",
    "vector_supported",
    "vector_ubd_entries",
    "vector_wctt_map",
    "vector_wctt_summary",
]
