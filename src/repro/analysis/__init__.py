"""Analysis utilities: bound validation and report formatting."""

from .reporting import format_grid, format_key_values, format_table, format_title
from .validation import BoundValidationResult, validate_design, validate_flow_bound

__all__ = [
    "format_grid",
    "format_key_values",
    "format_table",
    "format_title",
    "BoundValidationResult",
    "validate_design",
    "validate_flow_bound",
]
