"""Numpy-vectorized batch evaluation of the analytical models.

The scalar WCTT analyses (:mod:`repro.core.wctt_regular`,
:mod:`repro.core.wctt_weighted`) walk every flow's route hop by hop in pure
python, so a ``sweep()`` grid of design points pays
``O(flows x route length)`` python-loop iterations per point.  This module
evaluates the same closed forms as array operations over the whole node
grid at once:

* per-port weight/contender count matrices come straight from the closed
  forms (:func:`closed_form_count_arrays`) or from an existing
  :class:`~repro.core.weights.WeightTable` (:func:`weight_count_arrays`);
* all XY routes towards one destination ``d = (dx, dy)`` share their
  column suffix at ``x = dx``, so the per-source WCTT map decomposes into
  one O(height) column chain plus row-wise prefix sums -- a handful of
  cumulative sums instead of a route walk per flow;
* message bounds follow by broadcast arithmetic (WaW: first slice plus
  ``(k - 1)`` bottleneck rounds via cumulative maxima; regular: the bound
  is affine in the packet's own flit count).

Exactness is non-negotiable: the vectorized engine must produce
*bit-identical integers* to the scalar path (the differential harness
``tests/test_differential_analysis.py`` enforces it across a wide grid).
Two facts make that possible:

1. In the regular merging-policy analysis both ``max()`` operations
   provably never bind when ``routing_latency >= 1`` (the recursive
   occupancy always exceeds the serialization floor), so the service
   recursion and the route walk collapse to linear recurrences.  Those are
   evaluated on **object-dtype arrays holding python ints**, because
   regular-mesh bounds grow exponentially (contender products) and must
   not be squeezed into ``int64``.
2. The WaW+WaP per-hop delay depends only on the (input port, output
   port) pair of a hop, and XY routes have a fixed port structure --
   delays sum as ``int64`` cumulative sums (a conservative overflow bound
   is checked at construction; :func:`vector_supported` refuses design
   points that could exceed ``2**62``).

Scope: edge-bounded meshes (plain :class:`~repro.geometry.Mesh`,
:class:`~repro.topology.mesh.Mesh2D`,
:class:`~repro.topology.concentrated.ConcentratedMesh`) with XY routing
and the ``merging`` contender policy.  Everything else (torus, ring, YX,
``any_direction``) falls back to the scalar reference --
:func:`vector_supported` is the single gatekeeper the wiring in
:mod:`repro.experiments.scenario_wctt` and :class:`repro.core.ubd.UBDTable`
consults.
"""

from __future__ import annotations

from statistics import mean
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

try:  # numpy is an install_requires, but degrade gracefully without it.
    import numpy as np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover - exercised only on stripped installs
    np = None  # type: ignore[assignment]
    HAS_NUMPY = False

from ..geometry import Coord, Mesh, Port
from ..topology.base import Topology, as_topology
from ..core.config import NoCConfig
from ..core.wctt import WCTTSummary
from ..core.weights import WeightTable

__all__ = [
    "HAS_NUMPY",
    "closed_form_count_arrays",
    "weight_count_arrays",
    "vector_supported",
    "VectorWaWWaPAnalysis",
    "VectorRegularAnalysis",
    "make_vector_analysis",
    "vector_wctt_map",
    "vector_wctt_summary",
    "vector_ubd_entries",
    "GridEvaluator",
    "evaluate_grid",
]

#: Largest intermediate the int64 WaW kernel may produce before the design
#: point is refused (headroom below ``2**63 - 1`` for sums and products).
_INT64_SAFE = 2**62

#: Topology kinds whose route structure matches the edge-bounded XY mesh.
_SUPPORTED_KINDS = ("mesh", "cmesh")


# ----------------------------------------------------------------------
# Count matrices
# ----------------------------------------------------------------------
def _coordinate_grids(width: int, height: int):
    """Broadcastable column (``xs``) and row (``ys``) index grids."""
    xs = np.arange(width, dtype=np.int64).reshape(1, width)
    ys = np.arange(height, dtype=np.int64).reshape(height, 1)
    return xs, ys


def closed_form_count_arrays(
    mesh: Mesh, *, as_printed: bool = False
) -> Tuple[Dict[Port, Any], Dict[Port, Any]]:
    """Per-port flow-count matrices from the paper's closed forms.

    Vectorized counterpart of
    :func:`repro.core.weights.source_port_counts` (default) /
    :func:`repro.core.weights.paper_port_counts` (``as_printed=True``),
    scaled by the topology's ``terminals_per_node`` exactly like
    :meth:`WeightTable.from_closed_form`.  Returns ``(inputs, outputs)``:
    dicts mapping each :class:`Port` to an ``(height, width)`` int64 array
    indexed ``[y, x]``.
    """
    topology = as_topology(mesh)
    n, m = mesh.width, mesh.height
    xs, ys = _coordinate_grids(n, m)
    ones = np.ones((m, n), dtype=np.int64)
    inputs = {
        Port.XPLUS: xs * ones,
        # The printed forms count one fictitious node beyond the X- edge.
        Port.XMINUS: (n - (0 if as_printed else 1) - xs) * ones,
        Port.YPLUS: n * ys * ones,
        Port.YMINUS: n * (m - 1 - ys) * ones,
        Port.LOCAL: ones.copy(),
    }
    outputs = {
        Port.XPLUS: (xs + 1) * ones,
        Port.XMINUS: (n - xs + (1 if as_printed else 0)) * ones,
        Port.YPLUS: n * (ys + 1) * ones,
        Port.YMINUS: n * (m - ys) * ones,
        Port.LOCAL: (n * m - 1) * ones,
    }
    scale = topology.terminals_per_node
    if scale != 1:
        inputs = {p: a * scale for p, a in inputs.items()}
        outputs = {p: a * scale for p, a in outputs.items()}
    return inputs, outputs


def weight_count_arrays(
    table: WeightTable,
) -> Tuple[Dict[Port, Any], Dict[Port, Any]]:
    """Extract a :class:`WeightTable`'s counts as ``(height, width)`` arrays.

    Works for any construction path (closed form, flow-derived memory
    traffic, explicit counts); missing ports read as 0, exactly like
    :meth:`PortCounts.input_count` / ``output_count``.
    """
    mesh = table.mesh
    inputs = {p: np.zeros((mesh.height, mesh.width), dtype=np.int64) for p in Port}
    outputs = {p: np.zeros((mesh.height, mesh.width), dtype=np.int64) for p in Port}
    for router in mesh.nodes():
        counts = table.counts(router)
        for port in Port:
            inputs[port][router.y, router.x] = counts.input_count(port)
            outputs[port][router.y, router.x] = counts.output_count(port)
    return inputs, outputs


# ----------------------------------------------------------------------
# Support predicate
# ----------------------------------------------------------------------
def vector_supported(
    config: NoCConfig, *, contender_policy: str = "merging"
) -> Optional[str]:
    """Why ``config`` cannot take the vectorized path (``None`` = it can).

    The single gatekeeper for all auto-wiring: a non-``None`` return is a
    human-readable reason (missing numpy, wrap-around links, YX routing,
    ``any_direction`` policy, int64 overflow risk) and the caller must use
    the scalar reference instead.
    """
    if not HAS_NUMPY:
        return "numpy is not installed"
    topology = config.topology
    if topology.has_wraparound:
        return f"wrap-around links ({topology.describe_short()}) need the scalar path"
    kind = getattr(topology, "kind", "mesh")
    if kind not in _SUPPORTED_KINDS:
        return f"unsupported topology kind {kind!r}"
    if topology.routing.axes[0] != "x":
        return "only XY routing is vectorized"
    if contender_policy != "merging":
        return f"contender policy {contender_policy!r} is not vectorized"
    if config.is_waw_wap:
        # Conservative per-hop ceiling: every port round is at most the
        # all-to-all total times the concentration, every input may owe a
        # full buffer of backlog rounds.
        timing = config.timing
        round_ceiling = max(
            1, config.mesh.num_nodes * topology.terminals_per_node
        )
        hop_ceiling = (
            timing.routing_latency
            + config.buffer_depth
            * round_ceiling
            * config.min_packet_flits
            * timing.flit_cycle
            + timing.link_latency
        )
        hops = config.mesh.width + config.mesh.height + 2
        if hops * hop_ceiling > _INT64_SAFE:
            return "bounds could overflow the int64 kernel; use the scalar path"
    return None


# ----------------------------------------------------------------------
# Route-window helpers (shared by both kernels)
# ----------------------------------------------------------------------
def _suffix_sums(arr):
    """``out[..., j] = sum(arr[..., j:])`` along the last axis."""
    return np.flip(np.cumsum(np.flip(arr, axis=-1), axis=-1), axis=-1)


def _suffix_max(arr):
    """``out[..., j] = max(arr[..., j:])`` along the last axis."""
    return np.flip(np.maximum.accumulate(np.flip(arr, axis=-1), axis=-1), axis=-1)


class VectorWaWWaPAnalysis:
    """Vectorized WaW+WaP bounds (int64 kernel).

    Mirrors :class:`~repro.core.wctt_weighted.WaWWaPWCTTAnalysis`
    bit-for-bit: same weight defaults (closed-form source counts), same
    ``max(1, .)`` clamps, same regulated/bursty round accounting, same
    message slicing.  ``wctt_grid_to(d)`` returns the packet bound of every
    source towards ``d`` in one shot; ``message_grid_to`` /
    ``message_grid_from`` add the WaP slice pipeline for whole messages.
    """

    def __init__(
        self,
        config: NoCConfig,
        weight_table: Optional[WeightTable] = None,
        *,
        regulated_contenders: bool = True,
    ):
        if not config.is_waw or not config.is_wap:
            raise ValueError(
                "VectorWaWWaPAnalysis requires a WaW+WaP configuration; "
                f"got {config.describe()}"
            )
        reason = vector_supported(config)
        if reason is not None:
            raise ValueError(f"configuration not vectorizable: {reason}")
        self.config = config
        self.mesh: Mesh = config.mesh
        self.topology: Topology = config.topology
        self.regulated_contenders = regulated_contenders
        if weight_table is None:
            counts_in, counts_out = closed_form_count_arrays(config.mesh)
        else:
            counts_in, counts_out = weight_count_arrays(weight_table)

        timing = config.timing
        m = config.min_packet_flits
        # Flits served by one full arbitration round of each output port.
        self._round_flits = {p: np.maximum(1, counts_out[p]) for p in Port}
        # Arbitration rounds a packet arriving on each input port waits.
        if regulated_contenders:
            rounds = {p: np.ones_like(counts_in[p]) for p in Port}
        else:
            backlog = config.buffer_depth
            rounds = {}
            for p in Port:
                credits = np.maximum(1, counts_in[p])
                extra = np.maximum(0, -(-backlog // credits) - 1)
                rounds[p] = 1 + extra
        self._rounds = rounds
        #: Cycles one arbitration round of each output port occupies.
        self._round_cycles = {
            p: self._round_flits[p] * (m * timing.flit_cycle) for p in Port
        }
        self._rl = timing.routing_latency
        self._ll = timing.link_latency
        self._delay_cache: Dict[Tuple[Port, Port], Any] = {}

    # -- per-hop delay matrices ---------------------------------------
    def _delay(self, in_port: Port, out_port: Port):
        """``hop_delay(router, in_port, out_port)`` for every router at once."""
        key = (in_port, out_port)
        cached = self._delay_cache.get(key)
        if cached is None:
            link = 0 if out_port is Port.LOCAL else self._ll
            cached = (
                self._rl
                + self._rounds[in_port] * self._round_cycles[out_port]
                + link
            )
            self._delay_cache[key] = cached
        return cached

    def _column_out(self, sys_col, dy: int, in_port: Port, dx: int):
        """Delay of the hop at ``(dx, y)`` entering on ``in_port`` and
        leaving towards row ``dy`` (``LOCAL`` at ``y == dy``)."""
        return np.where(
            sys_col < dy,
            self._delay(in_port, Port.YPLUS)[:, dx],
            np.where(
                sys_col > dy,
                self._delay(in_port, Port.YMINUS)[:, dx],
                self._delay(in_port, Port.LOCAL)[:, dx],
            ),
        )

    def _validate_packet(self, packet_flits: Optional[int]) -> None:
        if packet_flits is not None and packet_flits > self.config.min_packet_flits:
            raise ValueError(
                "WaP never injects packets larger than the minimum size "
                f"({self.config.min_packet_flits} flits); got {packet_flits}"
            )

    # -- to-destination kernels ---------------------------------------
    def wctt_grid_to(
        self, destination: Coord, *, packet_flits: Optional[int] = None
    ):
        """Packet WCTT of every source towards ``destination``.

        Returns an ``(height, width)`` int64 array indexed ``[sy, sx]``;
        the destination's own cell is 0 (a node does not send to itself).
        """
        self.mesh.require(destination)
        self._validate_packet(packet_flits)
        h, w = self.mesh.height, self.mesh.width
        dx, dy = destination.x, destination.y
        ys = np.arange(h, dtype=np.int64)

        # Column suffix (shared by every source of a row): the hops at
        # (dx, y) strictly between sy and dy plus the ejection hop.
        up = self._delay(Port.YPLUS, Port.YPLUS)[:, dx]
        dn = self._delay(Port.YMINUS, Port.YMINUS)[:, dx]
        cs_up = np.concatenate(([0], np.cumsum(up)))
        cs_dn = np.concatenate(([0], np.cumsum(dn)))
        col_path = np.where(
            ys < dy,
            cs_up[dy] - cs_up[np.minimum(ys + 1, dy)]
            + self._delay(Port.YPLUS, Port.LOCAL)[dy, dx],
            np.where(
                ys > dy,
                cs_dn[np.maximum(ys, dy + 1)] - cs_dn[dy + 1]
                + self._delay(Port.YMINUS, Port.LOCAL)[dy, dx],
                0,
            ),
        )

        grid = np.zeros((h, w), dtype=np.int64)

        # Sources in the destination column inject straight onto it.
        src_col = self._column_out(ys, dy, Port.LOCAL, dx)
        grid[:, dx] = np.where(ys != dy, src_col + col_path, 0)

        # Sources left of the destination travel X+ then turn at (dx, sy).
        if dx > 0:
            xp = self._delay(Port.XPLUS, Port.XPLUS)
            between = np.concatenate(
                (_suffix_sums(xp[:, 1:dx]), np.zeros((h, 1), dtype=np.int64)),
                axis=1,
            )  # between[:, sx] = sum of hops at sx+1 .. dx-1
            turn = self._column_out(ys, dy, Port.XPLUS, dx)
            left = (
                self._delay(Port.LOCAL, Port.XPLUS)[:, :dx]
                + between
                + (turn + col_path)[:, None]
            )
            grid[:, :dx] = left

        # Sources right of the destination travel X- then turn.
        if dx < w - 1:
            xm = self._delay(Port.XMINUS, Port.XMINUS)
            between = np.concatenate(
                (
                    np.zeros((h, 1), dtype=np.int64),
                    np.cumsum(xm[:, dx + 1 : w - 1], axis=1),
                ),
                axis=1,
            )  # between[:, sx - dx - 1] = sum of hops at dx+1 .. sx-1
            turn = self._column_out(ys, dy, Port.XMINUS, dx)
            right = (
                self._delay(Port.LOCAL, Port.XMINUS)[:, dx + 1 :]
                + between
                + (turn + col_path)[:, None]
            )
            grid[:, dx + 1 :] = right
        return grid

    def bottleneck_grid_to(self, destination: Coord):
        """Largest arbitration round (cycles) along every source's route."""
        self.mesh.require(destination)
        h, w = self.mesh.height, self.mesh.width
        dx, dy = destination.x, destination.y
        ys = np.arange(h, dtype=np.int64)

        # Output-port rounds along the column portion, including the turn
        # hop's output at (dx, sy) and the ejection round at (dx, dy).
        col_round = np.where(
            ys < dy,
            self._round_cycles[Port.YPLUS][:, dx],
            np.where(
                ys > dy,
                self._round_cycles[Port.YMINUS][:, dx],
                self._round_cycles[Port.LOCAL][dy, dx],
            ),
        )
        eject = self._round_cycles[Port.LOCAL][dy, dx]
        if dy > 0:
            up = np.flip(np.maximum.accumulate(np.flip(col_round[:dy])))
        if dy < h - 1:
            dn = np.maximum.accumulate(col_round[dy + 1 :])
        col_max = np.empty(h, dtype=np.int64)
        col_max[dy] = eject
        if dy > 0:
            col_max[:dy] = np.maximum(up, eject)
        if dy < h - 1:
            col_max[dy + 1 :] = np.maximum(dn, eject)

        grid = np.empty((h, w), dtype=np.int64)
        grid[:, dx] = col_max
        if dx > 0:
            row = _suffix_max(self._round_cycles[Port.XPLUS][:, :dx])
            grid[:, :dx] = np.maximum(row, col_max[:, None])
        if dx < w - 1:
            row = np.maximum.accumulate(
                self._round_cycles[Port.XMINUS][:, dx + 1 :], axis=1
            )
            grid[:, dx + 1 :] = np.maximum(row, col_max[:, None])
        grid[dy, dx] = 0
        return grid

    def _slices(self, payload_flits: int) -> int:
        if payload_flits < 1:
            raise ValueError("payload_flits must be >= 1")
        messages = self.config.messages
        if payload_flits == 1:
            return 1
        payload_bits = (
            payload_flits * messages.link_width_bits - messages.control_bits
        )
        return messages.wap_packets_for_payload_bits(payload_bits)

    def message_grid_to(self, destination: Coord, *, payload_flits: int):
        """Whole-message WCTT of every source towards ``destination``."""
        slices = self._slices(payload_flits)
        first = self.wctt_grid_to(destination)
        if slices == 1:
            return first
        return first + (slices - 1) * self.bottleneck_grid_to(destination)

    # -- from-source kernels (UBD reply legs) -------------------------
    def wctt_grid_from(self, source: Coord):
        """Packet WCTT from ``source`` to every destination (cell = dest)."""
        self.mesh.require(source)
        h, w = self.mesh.height, self.mesh.width
        sx, sy = source.x, source.y
        xs = np.arange(w, dtype=np.int64)
        ys = np.arange(h, dtype=np.int64)

        # Row prefix: source hop plus the X hops strictly before the turn
        # column, as a function of the destination column dx.
        row_pre = np.zeros(w, dtype=np.int64)
        if sx < w - 1:
            xp = self._delay(Port.XPLUS, Port.XPLUS)[sy]
            cs = np.concatenate(([0], np.cumsum(xp)))
            # hops at sx+1 .. dx-1 for dx > sx
            row_pre[sx + 1 :] = (
                self._delay(Port.LOCAL, Port.XPLUS)[sy, sx]
                + cs[np.maximum(xs[sx + 1 :], sx + 1)]
                - cs[sx + 1]
            )
        if sx > 0:
            xm = self._delay(Port.XMINUS, Port.XMINUS)[sy]
            cs = np.concatenate(([0], np.cumsum(xm)))
            # hops at dx+1 .. sx-1 for dx < sx
            row_pre[:sx] = (
                self._delay(Port.LOCAL, Port.XMINUS)[sy, sx]
                + cs[sx]
                - cs[xs[:sx] + 1]
            )

        # Turn hop at (dx, sy): input port depends on the travel direction,
        # output on where the destination row lies.
        turn = np.zeros((h, w), dtype=np.int64)
        for in_port, cols in (
            (Port.XPLUS, slice(sx + 1, w)),
            (Port.XMINUS, slice(0, sx)),
            (Port.LOCAL, slice(sx, sx + 1)),
        ):
            turn[:, cols] = np.where(
                (ys < sy)[:, None],
                self._delay(in_port, Port.YMINUS)[sy, cols][None, :],
                np.where(
                    (ys > sy)[:, None],
                    self._delay(in_port, Port.YPLUS)[sy, cols][None, :],
                    self._delay(in_port, Port.LOCAL)[sy, cols][None, :],
                ),
            )

        # Column tail: hops strictly between sy and dy plus the ejection
        # hop, per destination column.
        col_tail = np.zeros((h, w), dtype=np.int64)
        if sy < h - 1:
            yp = self._delay(Port.YPLUS, Port.YPLUS)
            cs = np.concatenate(
                (np.zeros((1, w), dtype=np.int64), np.cumsum(yp, axis=0))
            )
            rows = ys[sy + 1 :]
            col_tail[sy + 1 :, :] = (
                cs[np.maximum(rows, sy + 1)] - cs[sy + 1]
                + self._delay(Port.YPLUS, Port.LOCAL)[sy + 1 :, :]
            )
        if sy > 0:
            ym = self._delay(Port.YMINUS, Port.YMINUS)
            cs = np.concatenate(
                (np.zeros((1, w), dtype=np.int64), np.cumsum(ym, axis=0))
            )
            rows = ys[:sy]
            col_tail[:sy, :] = (
                cs[sy] - cs[rows + 1]
                + self._delay(Port.YMINUS, Port.LOCAL)[:sy, :]
            )

        grid = row_pre[None, :] + turn + col_tail
        grid[sy, sx] = 0
        return grid

    def bottleneck_grid_from(self, source: Coord):
        """Largest arbitration round along the route to every destination."""
        self.mesh.require(source)
        h, w = self.mesh.height, self.mesh.width
        sx, sy = source.x, source.y
        ys = np.arange(h, dtype=np.int64)

        # Rounds of the X+ / X- outputs crossed before the turn column.
        row_max = np.zeros(w, dtype=np.int64)
        if sx < w - 1:
            row_max[sx + 1 :] = np.maximum.accumulate(
                self._round_cycles[Port.XPLUS][sy, sx : w - 1]
            )
        if sx > 0:
            row_max[:sx] = np.flip(
                np.maximum.accumulate(
                    np.flip(self._round_cycles[Port.XMINUS][sy, 1 : sx + 1])
                )
            )

        # Rounds of the column outputs from the turn hop (inclusive) to the
        # ejection round at the destination.
        col_max = np.zeros((h, w), dtype=np.int64)
        eject = self._round_cycles[Port.LOCAL]
        if sy < h - 1:
            yp = np.maximum.accumulate(
                self._round_cycles[Port.YPLUS][sy : h - 1, :], axis=0
            )
            col_max[sy + 1 :, :] = np.maximum(yp, eject[sy + 1 :, :])
        if sy > 0:
            ym = np.flip(
                np.maximum.accumulate(
                    np.flip(self._round_cycles[Port.YMINUS][1 : sy + 1, :], axis=0),
                    axis=0,
                ),
                axis=0,
            )
            col_max[:sy, :] = np.maximum(ym, eject[:sy, :])
        col_max[sy, :] = eject[sy, :]

        grid = np.maximum(row_max[None, :], col_max)
        grid[sy, sx] = 0
        return grid

    def message_grid_from(self, source: Coord, *, payload_flits: int):
        """Whole-message WCTT from ``source`` to every destination."""
        slices = self._slices(payload_flits)
        first = self.wctt_grid_from(source)
        if slices == 1:
            return first
        return first + (slices - 1) * self.bottleneck_grid_from(source)


class VectorRegularAnalysis:
    """Vectorized regular-mesh bounds (object-dtype exact-int kernel).

    Mirrors :class:`~repro.core.wctt_regular.RegularMeshWCTTAnalysis` under
    the ``merging`` contender policy.  Because ``routing_latency >= 1`` the
    scalar recursion's ``max(serialization, occupancy)`` always resolves to
    the occupancy term and the route walk's ``max(own_serialization, stage)``
    always resolves to the stage, so

    * per-hop service times follow the linear recurrence
      ``service[i] = (rl + ll) + contenders[i+1] * service[i+1]``, and
    * the packet bound is the plain sum
      ``own_serialization + hops*rl + (hops-1)*ll + sum((c_i - 1) * service_i)``.

    Both are evaluated over object-dtype arrays of python ints (the service
    products grow exponentially with the route length), with the row
    recurrences vectorized across all rows at once.
    """

    def __init__(
        self,
        config: NoCConfig,
        *,
        contender_packet_flits: Optional[int] = None,
    ):
        reason = vector_supported(config)
        if reason is not None:
            raise ValueError(f"configuration not vectorizable: {reason}")
        self.config = config
        self.mesh: Mesh = config.mesh
        self.topology: Topology = config.topology
        self.contender_packet_flits = (
            contender_packet_flits
            if contender_packet_flits is not None
            else config.max_packet_flits
        )
        if self.contender_packet_flits < 1:
            raise ValueError("contender_packet_flits must be >= 1")
        timing = config.timing
        self._rl = timing.routing_latency
        self._ll = timing.link_latency
        self._fc = timing.flit_cycle
        self._serialization = self.contender_packet_flits * self._fc

        w, h = self.mesh.width, self.mesh.height
        xs, ys = _coordinate_grids(w, h)
        has_xp_in = (xs > 0) * 1  # X+ input exists
        has_xm_in = (xs < w - 1) * 1
        has_yp_in = (ys > 0) * 1
        has_ym_in = (ys < h - 1) * 1
        ones = np.ones((h, w), dtype=np.int64)
        # Contender counts: physically existing ports among the XY legal
        # inputs of each output (repro.topology.base._XY_LEGAL_INPUTS).
        # Kept as object arrays of python ints: the service recurrences
        # multiply these into exponentially large values, which must never
        # be squeezed (and silently wrapped) into int64.
        self._contenders = {
            Port.XPLUS: (ones + has_xp_in).astype(object),
            Port.XMINUS: (ones + has_xm_in).astype(object),
            Port.YPLUS: (ones + has_yp_in + has_xp_in + has_xm_in).astype(object),
            Port.YMINUS: (ones + has_ym_in + has_xp_in + has_xm_in).astype(object),
            Port.LOCAL: ((has_xp_in + has_xm_in + has_yp_in + has_ym_in) * ones).astype(object),
        }
        self._base_cache: Dict[Coord, Any] = {}

    def _col_out(self, y: int, dy: int) -> Port:
        if y < dy:
            return Port.YPLUS
        if y > dy:
            return Port.YMINUS
        return Port.LOCAL

    def base_grid_to(self, destination: Coord):
        """Packet bound minus the packet's own serialization, per source.

        The full bound is ``base + packet_flits * flit_cycle`` -- the own
        flits only enter through the additive serialization term, so one
        base grid serves every packet size of a design point.  Object-dtype
        ``(height, width)`` array of python ints; destination cell 0.
        """
        self.mesh.require(destination)
        cached = self._base_cache.get(destination)
        if cached is not None:
            return cached
        h, w = self.mesh.height, self.mesh.width
        dx, dy = destination.x, destination.y
        a = self._rl + self._ll
        S = self._serialization
        C = self._contenders

        # Column chain at x = dx: service time and accumulated
        # (contenders - 1) * service of the hops from (dx, y) to (dx, dy).
        col_serv: List[int] = [0] * h
        col_sum: List[int] = [0] * h
        col_serv[dy] = S
        col_sum[dy] = (int(C[Port.LOCAL][dy, dx]) - 1) * S
        for y in range(dy - 1, -1, -1):
            nxt = int(C[self._col_out(y + 1, dy)][y + 1, dx])
            col_serv[y] = a + nxt * col_serv[y + 1]
            own = int(C[Port.YPLUS][y, dx])
            col_sum[y] = (own - 1) * col_serv[y] + col_sum[y + 1]
        for y in range(dy + 1, h):
            nxt = int(C[self._col_out(y - 1, dy)][y - 1, dx])
            col_serv[y] = a + nxt * col_serv[y - 1]
            own = int(C[Port.YMINUS][y, dx])
            col_sum[y] = (own - 1) * col_serv[y] + col_sum[y - 1]
        col_serv_v = np.array(col_serv, dtype=object)
        col_sum_v = np.array(col_sum, dtype=object)

        ys = np.arange(h, dtype=np.int64)
        xs = np.arange(w, dtype=np.int64)
        # Contenders of the turn hop at (dx, sy) -- its output port.
        turn_c = np.where(
            ys < dy,
            C[Port.YPLUS][:, dx],
            np.where(ys > dy, C[Port.YMINUS][:, dx], C[Port.LOCAL][:, dx]),
        )

        total = np.zeros((h, w), dtype=object)
        total[:, dx] = col_sum_v
        # Row recurrences, vectorized across rows (loop over columns only).
        if dx > 0:
            serv = a + turn_c * col_serv_v  # service at (dx - 1, sy)
            acc = (C[Port.XPLUS][:, dx - 1] - 1) * serv + col_sum_v
            total[:, dx - 1] = acc
            for x in range(dx - 2, -1, -1):
                serv = a + C[Port.XPLUS][:, x + 1] * serv
                acc = acc + (C[Port.XPLUS][:, x] - 1) * serv
                total[:, x] = acc
        if dx < w - 1:
            serv = a + turn_c * col_serv_v  # service at (dx + 1, sy)
            acc = (C[Port.XMINUS][:, dx + 1] - 1) * serv + col_sum_v
            total[:, dx + 1] = acc
            for x in range(dx + 2, w):
                serv = a + C[Port.XMINUS][:, x - 1] * serv
                acc = acc + (C[Port.XMINUS][:, x] - 1) * serv
                total[:, x] = acc

        hops = (np.abs(xs[None, :] - dx) + np.abs(ys[:, None] - dy) + 1).astype(object)
        base = total + self._rl * hops + self._ll * (hops - 1)
        base[dy, dx] = 0
        self._base_cache[destination] = base
        return base

    def wctt_grid_to(self, destination: Coord, *, packet_flits: Optional[int] = None):
        """Packet WCTT of every source towards ``destination`` (object ints)."""
        own = (
            packet_flits if packet_flits is not None else self.config.max_packet_flits
        )
        if own < 1:
            raise ValueError("packet_flits must be >= 1")
        grid = self.base_grid_to(destination) + own * self._fc
        grid[destination.y, destination.x] = 0
        return grid

    def message_grid_to(self, destination: Coord, *, payload_flits: int):
        """Whole-message WCTT (maximum-size packets plus one remainder)."""
        if payload_flits < 1:
            raise ValueError("payload_flits must be >= 1")
        max_flits = self.config.max_packet_flits
        full, rest = divmod(payload_flits, max_flits)
        grid = np.zeros((self.mesh.height, self.mesh.width), dtype=object)
        if full:
            grid = grid + full * self.wctt_grid_to(destination, packet_flits=max_flits)
        if rest:
            grid = grid + self.wctt_grid_to(destination, packet_flits=rest)
        grid[destination.y, destination.x] = 0
        return grid


# ----------------------------------------------------------------------
# Front-end mirroring repro.core.wctt
# ----------------------------------------------------------------------
VectorAnalysisType = Union[VectorWaWWaPAnalysis, VectorRegularAnalysis]


def make_vector_analysis(
    config: NoCConfig,
    *,
    weight_table: Optional[WeightTable] = None,
    contender_packet_flits: Optional[int] = None,
) -> VectorAnalysisType:
    """Vector counterpart of :func:`repro.core.wctt.make_wctt_analysis`."""
    if config.is_waw_wap:
        return VectorWaWWaPAnalysis(config, weight_table)
    if contender_packet_flits is None and config.is_wap:
        contender_packet_flits = config.min_packet_flits
    return VectorRegularAnalysis(
        config, contender_packet_flits=contender_packet_flits
    )


def _grid_to_map(mesh: Mesh, grid, destination: Coord) -> Dict[Coord, int]:
    return {
        coord: int(grid[coord.y, coord.x])
        for coord in mesh.nodes()
        if coord != destination
    }


def vector_wctt_map(
    analysis: VectorAnalysisType, destination: Coord, *, packet_flits: int = 1
) -> Dict[Coord, int]:
    """Vector counterpart of :func:`repro.core.wctt.wctt_map`."""
    grid = analysis.wctt_grid_to(destination, packet_flits=packet_flits)
    return _grid_to_map(analysis.mesh, grid, destination)


def vector_wctt_summary(
    config: NoCConfig,
    *,
    packet_flits: int = 1,
    design_label: Optional[str] = None,
    weight_table: Optional[WeightTable] = None,
) -> WCTTSummary:
    """All-to-one WCTT summary, bit-identical to the scalar pipeline.

    Equivalent to ``wctt_summary(make_wctt_analysis(config),
    FlowSet.all_to_one(mesh, memory_controller), packet_flits=...)`` but
    computed from one to-destination grid.  The mean reuses
    :func:`statistics.mean` over the exact python ints so even the float
    rounding matches the scalar path.
    """
    analysis = make_vector_analysis(config, weight_table=weight_table)
    destination = config.memory_controller
    values = [
        int(v)
        for v in vector_wctt_map(
            analysis, destination, packet_flits=packet_flits
        ).values()
    ]
    if not values:
        raise ValueError("flow set is empty")
    label = design_label if design_label is not None else (
        "WaW+WaP" if config.is_waw_wap else "regular"
    )
    return WCTTSummary(
        design=label,
        mesh=config.topology.short_label(),
        maximum=max(values),
        average=mean(values),
        minimum=min(values),
        flow_count=len(values),
    )


def vector_ubd_entries(
    config: NoCConfig,
    *,
    weight_table: Optional[WeightTable] = None,
    regulated_contenders: bool = True,
    service_latency: int = 30,
) -> Dict[Coord, Any]:
    """Per-core UBD entries from the vectorized WaW+WaP kernels.

    Vector counterpart of :meth:`repro.core.ubd.UBDTable._build` for
    WaW+WaP design points: four message grids (request/reply towards and
    from the memory controller) replace the per-core route walks.  Returns
    ``{core: UBDEntry}`` in mesh iteration order, bit-identical to the
    scalar table.
    """
    from ..core.ubd import UBDEntry

    analysis = VectorWaWWaPAnalysis(
        config, weight_table, regulated_contenders=regulated_contenders
    )
    mc = config.memory_controller
    msgs = config.messages
    request = analysis.message_grid_to(mc, payload_flits=msgs.request_flits)
    eviction = analysis.message_grid_to(mc, payload_flits=msgs.eviction_flits)
    reply = analysis.message_grid_from(mc, payload_flits=msgs.reply_flits)
    eviction_ack = analysis.message_grid_from(
        mc, payload_flits=msgs.eviction_ack_flits
    )
    entries: Dict[Coord, Any] = {}
    for core in config.mesh.nodes():
        if core == mc:
            continue
        req = int(request[core.y, core.x])
        rep = int(reply[core.y, core.x])
        evi = int(eviction[core.y, core.x])
        ack = int(eviction_ack[core.y, core.x])
        entries[core] = UBDEntry(
            core=core,
            load_ubd=req + service_latency + rep,
            eviction_ubd=evi + service_latency + ack,
            request_wctt=req,
            reply_wctt=rep,
            eviction_wctt=evi,
            eviction_ack_wctt=ack,
        )
    return entries


# ----------------------------------------------------------------------
# Grid evaluation with structural caching
# ----------------------------------------------------------------------
class GridEvaluator:
    """Evaluate many design points, reusing structure across packet sizes.

    A sweep that varies ``packet_flits`` on top of a structural grid hits
    the same count matrices and service chains repeatedly: the WaW+WaP
    packet bound does not depend on the packet size at all, and the
    regular bound is affine in it (``base + packet_flits * flit_cycle``).
    The evaluator caches the per-flow base values under the scenario's
    canonical dict form, so packet-size variants cost O(flows) additions
    instead of a fresh kernel run.
    """

    def __init__(self) -> None:
        self._cache: Dict[str, Tuple[str, List[int], int, int]] = {}
        self.hits = 0
        self.misses = 0

    def _values(self, scenario_dict: Mapping[str, Any], config: NoCConfig, packet_flits: int) -> List[int]:
        import json

        key = json.dumps(scenario_dict, sort_keys=True, default=str)
        cached = self._cache.get(key)
        if cached is None:
            self.misses += 1
            analysis = make_vector_analysis(config)
            destination = config.memory_controller
            if isinstance(analysis, VectorWaWWaPAnalysis):
                base = list(
                    vector_wctt_map(analysis, destination, packet_flits=1).values()
                )
                cached = ("waw", base, 0, config.min_packet_flits)
            else:
                grid = analysis.base_grid_to(destination)
                base = [
                    int(grid[c.y, c.x])
                    for c in config.mesh.nodes()
                    if c != destination
                ]
                cached = ("regular", base, config.timing.flit_cycle, 0)
            self._cache[key] = cached
        else:
            self.hits += 1
        kind, base, fc, min_flits = cached
        if kind == "waw":
            if packet_flits > min_flits:
                raise ValueError(
                    "WaP never injects packets larger than the minimum size "
                    f"({min_flits} flits); got {packet_flits}"
                )
            return base
        if packet_flits < 1:
            raise ValueError("packet_flits must be >= 1")
        own = packet_flits * fc
        return [b + own for b in base]

    def summary(self, scenario: Any, *, packet_flits: int = 1) -> WCTTSummary:
        """The all-to-one WCTT summary of one scenario (or its dict form)."""
        from ..api.scenario import Scenario

        if isinstance(scenario, Mapping):
            scenario = Scenario.from_dict(scenario)
        config = scenario.build()
        reason = vector_supported(config)
        if reason is not None:
            # Scalar fallback keeps grid evaluation total over any sweep.
            from ..core.flows import FlowSet
            from ..core.wctt import make_wctt_analysis, wctt_summary

            flows = FlowSet.all_to_one(config.mesh, config.memory_controller)
            return wctt_summary(
                make_wctt_analysis(config), flows, packet_flits=packet_flits
            )
        values = self._values(scenario.to_dict(), config, packet_flits)
        if not values:
            raise ValueError("flow set is empty")
        return WCTTSummary(
            design="WaW+WaP" if config.is_waw_wap else "regular",
            mesh=config.topology.short_label(),
            maximum=max(values),
            average=mean(values),
            minimum=min(values),
            flow_count=len(values),
        )


def evaluate_grid(
    scenarios: Iterable[Any], *, packet_flits: Union[int, Sequence[int]] = 1
) -> List[WCTTSummary]:
    """Batch-evaluate the WCTT summary of every scenario in ``scenarios``.

    ``packet_flits`` may be a single size or one size per scenario.  Design
    points the vector engine does not support transparently fall back to
    the scalar reference, so the result list is always complete.
    """
    scenarios = list(scenarios)
    if isinstance(packet_flits, int):
        sizes = [packet_flits] * len(scenarios)
    else:
        sizes = list(packet_flits)
        if len(sizes) != len(scenarios):
            raise ValueError(
                f"got {len(sizes)} packet sizes for {len(scenarios)} scenarios"
            )
    evaluator = GridEvaluator()
    return [
        evaluator.summary(scenario, packet_flits=size)
        for scenario, size in zip(scenarios, sizes)
    ]
