"""The :class:`AnalysisBackend` interface and the analysis-backend registry.

Mirror of :mod:`repro.sim.backend` for the *analytical* side of the repo: a
backend owns one way of bounding worst-case traversal times -- nothing else.
The bound mathematics stay in :mod:`repro.core.wctt_regular`,
:mod:`repro.core.wctt_weighted`, :mod:`repro.analysis.flowaware` and
:mod:`repro.analysis.vector`; a backend adapts one of them to a small,
uniform surface (``supports``, ``analysis``, ``wctt_packet``,
``wctt_message``, ``wctt_map``, ``wctt_summary``), so competing analyses can
be swept side by side over the same design points and cross-checked against
each other and against simulation.

Registered backends:

``regular``
    The paper's regular-mesh bound (back-pressure-aware merging recursion,
    all legal inputs contend).  Sound for round-robin arbitration only --
    it refuses WaW configurations, where another input may be granted more
    than once between two grants to ours.
``weighted``
    The paper's WaW+WaP closed-form bound (one weighted arbitration round
    per hop).  Requires a WaW+WaP configuration.
``holistic``
    Flow-set-aware per-router busy-period iteration
    (:class:`~repro.analysis.flowaware.HolisticAnalysis`).
``trajectory``
    Flow-set-aware path-following accumulation
    (:class:`~repro.analysis.flowaware.TrajectoryAnalysis`).
``vector``
    The numpy-vectorized engine of :mod:`repro.analysis.vector`; available
    only where :func:`~repro.analysis.vector.vector_supported` says so
    (numpy installed, plain XY mesh, no overflow risk) and bit-identical to
    ``regular``/``weighted`` there.

Every backend additionally exposes ``validation_analysis`` /
``validation_bound``: the *burst-safe* variant of its bound, sound even
against the non-conforming adversarial traffic the simulator-based
validation machinery injects.  For the flow-aware analyses that is the
analysis itself; the paper's weighted bound switches to unregulated
contenders with all-to-one weights (exactly what
:mod:`repro.analysis.validation` has always validated).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type, Union

from ..core.config import NoCConfig
from ..core.flows import FlowSet
from ..core.weights import WeightTable
from ..core.wctt import WCTTSummary
from ..core.wctt import wctt_map as _scalar_wctt_map
from ..core.wctt import wctt_summary as _scalar_wctt_summary
from ..core.wctt_regular import RegularMeshWCTTAnalysis
from ..core.wctt_weighted import WaWWaPWCTTAnalysis
from ..geometry import Coord
from .flowaware import FlowAwareWCTTAnalysis, HolisticAnalysis, TrajectoryAnalysis

__all__ = [
    "AnalysisBackend",
    "available_analysis_backends",
    "make_analysis_backend",
    "normalize_analysis_backend_name",
    "register_analysis_backend",
]


class AnalysisBackend:
    """Interface of one way of computing WCTT bounds.

    Backends are stateless: every call receives the :class:`NoCConfig` it
    applies to, so one backend instance can serve any number of concurrent
    design points (internal caching lives in the analysis objects a backend
    hands out, never in the backend itself).
    """

    #: Registry name of the backend (overridden by every implementation).
    name = "abstract"
    #: One-line description shown by ``repro-experiments list`` and docs.
    description = ""

    # ------------------------------------------------------------------
    # Applicability
    # ------------------------------------------------------------------
    def supports(self, config: NoCConfig) -> Optional[str]:
        """``None`` when the backend's bound is sound for ``config``,
        otherwise a human-readable reason it is not."""
        return None

    def require(self, config: NoCConfig) -> None:
        """Raise ``ValueError`` (with the reason) on an unsupported config."""
        reason = self.supports(config)
        if reason is not None:
            raise ValueError(
                f"analysis backend {self.name!r} does not apply to "
                f"{config.describe()}: {reason}"
            )

    # ------------------------------------------------------------------
    # Analysis construction
    # ------------------------------------------------------------------
    def analysis(
        self,
        config: NoCConfig,
        *,
        destination: Optional[Coord] = None,
        flow_set: Optional[FlowSet] = None,
        weight_table: Optional[WeightTable] = None,
    ):
        """Build the underlying analysis object for ``config``.

        ``destination`` hints the traffic pattern (all nodes towards that
        node, default: the memory controller) for flow-aware backends;
        traffic-agnostic backends ignore it.  The returned object satisfies
        the :class:`repro.core.wctt.WCTTAnalysis` protocol.
        """
        raise NotImplementedError

    def validation_analysis(
        self,
        config: NoCConfig,
        *,
        destination: Optional[Coord] = None,
        flow_set: Optional[FlowSet] = None,
        weight_table: Optional[WeightTable] = None,
    ):
        """The burst-safe analysis variant used for soundness validation.

        Must bound latencies even under non-conforming (bursty) interfering
        traffic.  Defaults to :meth:`analysis`; backends whose headline
        bound assumes regulated contenders override this.
        """
        return self.analysis(
            config, destination=destination, flow_set=flow_set, weight_table=weight_table
        )

    # ------------------------------------------------------------------
    # Uniform bound surface
    # ------------------------------------------------------------------
    def wctt_packet(
        self,
        config: NoCConfig,
        source: Coord,
        destination: Coord,
        *,
        packet_flits: Optional[int] = None,
    ) -> int:
        self.require(config)
        return self.analysis(config, destination=destination).wctt_packet(
            source, destination, packet_flits=packet_flits
        )

    def wctt_message(
        self,
        config: NoCConfig,
        source: Coord,
        destination: Coord,
        *,
        payload_flits: int,
    ) -> int:
        self.require(config)
        return self.analysis(config, destination=destination).wctt_message(
            source, destination, payload_flits=payload_flits
        )

    def wctt_map(
        self, config: NoCConfig, destination: Coord, *, packet_flits: int = 1
    ) -> Dict[Coord, int]:
        """Per-source packet bound towards ``destination`` (UBD-table shape)."""
        self.require(config)
        analysis = self.analysis(config, destination=destination)
        return _scalar_wctt_map(analysis, destination, packet_flits=packet_flits)

    def wctt_summary(
        self,
        config: NoCConfig,
        *,
        destination: Optional[Coord] = None,
        packet_flits: int = 1,
        design_label: Optional[str] = None,
    ) -> WCTTSummary:
        """Max/mean/min bound over all-to-one traffic towards ``destination``
        (default: the memory controller) -- one Table II row."""
        self.require(config)
        dest = destination if destination is not None else config.memory_controller
        analysis = self.analysis(config, destination=dest)
        flows = FlowSet.all_to_one(config.mesh, dest)
        return _scalar_wctt_summary(
            analysis, flows, packet_flits=packet_flits, design_label=design_label
        )

    def validation_bound(
        self,
        config: NoCConfig,
        source: Coord,
        destination: Coord,
        *,
        packet_flits: Optional[int] = None,
        weight_table: Optional[WeightTable] = None,
    ) -> int:
        """Burst-safe packet bound for the simulator-based soundness check."""
        self.require(config)
        analysis = self.validation_analysis(
            config, destination=destination, weight_table=weight_table
        )
        return analysis.wctt_packet(source, destination, packet_flits=packet_flits)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


#: name -> backend class.  Aliases map long names onto the canonical ones.
_REGISTRY: Dict[str, Type[AnalysisBackend]] = {}
_ALIASES: Dict[str, str] = {
    "regular-mesh": "regular",
    "waw_wap": "weighted",
    "waw-wap": "weighted",
    "numpy": "vector",
}
#: Backends are stateless, so one instance per class suffices.
_INSTANCES: Dict[str, AnalysisBackend] = {}


def register_analysis_backend(cls: Type[AnalysisBackend]) -> Type[AnalysisBackend]:
    """Class decorator registering an analysis backend under its ``name``."""
    name = cls.name
    if not isinstance(name, str) or not name or name == "abstract":
        raise ValueError(f"backend class {cls.__name__} needs a concrete name")
    _REGISTRY[name] = cls
    return cls


def available_analysis_backends() -> List[str]:
    """The canonical analysis-backend names, sorted."""
    return sorted(_REGISTRY)


def normalize_analysis_backend_name(name: str) -> str:
    """Resolve aliases and validate ``name`` against the registry."""
    canonical = _ALIASES.get(name, name)
    if canonical not in _REGISTRY:
        known = ", ".join(available_analysis_backends())
        raise ValueError(
            f"unknown analysis backend {name!r}; known backends: {known}"
        )
    return canonical


def make_analysis_backend(
    spec: Union[str, AnalysisBackend, None],
) -> AnalysisBackend:
    """Resolve a backend name (or pass an instance through) to a backend.

    ``None`` resolves to the paper's analysis pair: ``weighted`` bounds for
    WaW+WaP design points, ``regular`` bounds for everything else -- i.e.
    exactly what :func:`repro.core.wctt.make_wctt_analysis` has always
    produced.  Because that default is config-dependent, ``None`` resolves
    to the dispatching :class:`PaperAnalysisBackend` rather than a fixed
    registry entry.
    """
    if spec is None:
        return _paper_backend()
    if isinstance(spec, AnalysisBackend):
        return spec
    if not isinstance(spec, str):
        raise TypeError(
            f"analysis backend must be a name or an AnalysisBackend, got {spec!r}"
        )
    canonical = normalize_analysis_backend_name(spec)
    instance = _INSTANCES.get(canonical)
    if instance is None:
        instance = _INSTANCES.setdefault(canonical, _REGISTRY[canonical]())
    return instance


# ----------------------------------------------------------------------
# The paper's analyses
# ----------------------------------------------------------------------
@register_analysis_backend
class RegularAnalysisBackend(AnalysisBackend):
    """The paper's regular-mesh bound (Section II.A reference analysis)."""

    name = "regular"
    description = "paper regular-mesh bound: all legal inputs contend, merging recursion"

    def supports(self, config: NoCConfig) -> Optional[str]:
        if config.is_waw:
            return (
                "the regular-mesh bound assumes round-robin arbitration "
                "(at most one grant to each other input between two grants "
                "to ours); weighted arbitration breaks that premise"
            )
        return None

    def analysis(
        self,
        config: NoCConfig,
        *,
        destination: Optional[Coord] = None,
        flow_set: Optional[FlowSet] = None,
        weight_table: Optional[WeightTable] = None,
    ) -> RegularMeshWCTTAnalysis:
        self.require(config)
        contender = config.min_packet_flits if config.is_wap else None
        return RegularMeshWCTTAnalysis(config, contender_packet_flits=contender)


@register_analysis_backend
class WeightedAnalysisBackend(AnalysisBackend):
    """The paper's WaW+WaP closed-form bound (Section III)."""

    name = "weighted"
    description = "paper WaW+WaP bound: one weighted arbitration round per hop"

    def supports(self, config: NoCConfig) -> Optional[str]:
        if not config.is_waw_wap:
            return "the WaW+WaP bound needs weighted arbitration AND min-size packetization"
        return None

    def analysis(
        self,
        config: NoCConfig,
        *,
        destination: Optional[Coord] = None,
        flow_set: Optional[FlowSet] = None,
        weight_table: Optional[WeightTable] = None,
    ) -> WaWWaPWCTTAnalysis:
        self.require(config)
        return WaWWaPWCTTAnalysis(config, weight_table)

    def validation_analysis(
        self,
        config: NoCConfig,
        *,
        destination: Optional[Coord] = None,
        flow_set: Optional[FlowSet] = None,
        weight_table: Optional[WeightTable] = None,
    ) -> WaWWaPWCTTAnalysis:
        # Burst-safe variant: unregulated contenders (own-buffer backlog
        # charged) with weights matching the validated all-to-one traffic --
        # the analysis repro.analysis.validation has always checked.
        self.require(config)
        if weight_table is None:
            dest = destination if destination is not None else config.memory_controller
            weight_table = WeightTable.from_flow_set(
                FlowSet.all_to_one(config.mesh, dest)
            )
        return WaWWaPWCTTAnalysis(config, weight_table, regulated_contenders=False)


# ----------------------------------------------------------------------
# Flow-aware competing analyses
# ----------------------------------------------------------------------
class _FlowAwareBackend(AnalysisBackend):
    """Shared adapter for the holistic/trajectory analyses."""

    _analysis_cls: Type[FlowAwareWCTTAnalysis] = FlowAwareWCTTAnalysis

    def analysis(
        self,
        config: NoCConfig,
        *,
        destination: Optional[Coord] = None,
        flow_set: Optional[FlowSet] = None,
        weight_table: Optional[WeightTable] = None,
    ) -> FlowAwareWCTTAnalysis:
        if flow_set is None:
            dest = destination if destination is not None else config.memory_controller
            flow_set = FlowSet.all_to_one(config.mesh, dest)
        return self._analysis_cls(config, flow_set, weight_table=weight_table)


@register_analysis_backend
class HolisticAnalysisBackend(_FlowAwareBackend):
    """Flow-aware per-router busy-period bound."""

    name = "holistic"
    description = "flow-aware per-router busy-period iteration (active inputs only)"
    _analysis_cls = HolisticAnalysis


@register_analysis_backend
class TrajectoryAnalysisBackend(_FlowAwareBackend):
    """Flow-aware path-following accumulation bound."""

    name = "trajectory"
    description = "flow-aware path-following accumulation (one service per crossing flow)"
    _analysis_cls = TrajectoryAnalysis


# ----------------------------------------------------------------------
# The numpy-vectorized engine
# ----------------------------------------------------------------------
@register_analysis_backend
class VectorAnalysisBackend(AnalysisBackend):
    """The numpy array engine -- bit-identical to the paper pair where it
    applies, evaluated grid-at-a-time."""

    name = "vector"
    description = "numpy-vectorized paper bounds (grid-at-a-time, plain XY mesh only)"

    def supports(self, config: NoCConfig) -> Optional[str]:
        from .vector import vector_supported

        # vector_supported reports "numpy is not installed" itself when the
        # import guard tripped, so one delegation covers every reason.
        return vector_supported(config)

    def analysis(
        self,
        config: NoCConfig,
        *,
        destination: Optional[Coord] = None,
        flow_set: Optional[FlowSet] = None,
        weight_table: Optional[WeightTable] = None,
    ):
        from .vector import make_vector_analysis

        self.require(config)
        return make_vector_analysis(config, weight_table=weight_table)

    def validation_analysis(
        self,
        config: NoCConfig,
        *,
        destination: Optional[Coord] = None,
        flow_set: Optional[FlowSet] = None,
        weight_table: Optional[WeightTable] = None,
    ):
        from .vector import VectorWaWWaPAnalysis

        self.require(config)
        if not config.is_waw_wap:
            return self.analysis(config)
        if weight_table is None:
            dest = destination if destination is not None else config.memory_controller
            weight_table = WeightTable.from_flow_set(
                FlowSet.all_to_one(config.mesh, dest)
            )
        return VectorWaWWaPAnalysis(config, weight_table, regulated_contenders=False)

    # The vector analyses expose grid-shaped kernels rather than the scalar
    # protocol, so the uniform surface is implemented on top of the grids.
    def wctt_packet(
        self,
        config: NoCConfig,
        source: Coord,
        destination: Coord,
        *,
        packet_flits: Optional[int] = None,
    ) -> int:
        grid = self.analysis(config).wctt_grid_to(destination, packet_flits=packet_flits)
        return int(grid[source.y, source.x])

    def wctt_message(
        self,
        config: NoCConfig,
        source: Coord,
        destination: Coord,
        *,
        payload_flits: int,
    ) -> int:
        grid = self.analysis(config).message_grid_to(
            destination, payload_flits=payload_flits
        )
        return int(grid[source.y, source.x])

    def wctt_map(
        self, config: NoCConfig, destination: Coord, *, packet_flits: int = 1
    ) -> Dict[Coord, int]:
        from .vector import vector_wctt_map

        return vector_wctt_map(
            self.analysis(config), destination, packet_flits=packet_flits
        )

    def wctt_summary(
        self,
        config: NoCConfig,
        *,
        destination: Optional[Coord] = None,
        packet_flits: int = 1,
        design_label: Optional[str] = None,
    ) -> WCTTSummary:
        from .vector import vector_wctt_summary

        self.require(config)
        if destination is not None and destination != config.memory_controller:
            return super().wctt_summary(
                config,
                destination=destination,
                packet_flits=packet_flits,
                design_label=design_label,
            )
        return vector_wctt_summary(
            config, packet_flits=packet_flits, design_label=design_label
        )

    def validation_bound(
        self,
        config: NoCConfig,
        source: Coord,
        destination: Coord,
        *,
        packet_flits: Optional[int] = None,
        weight_table: Optional[WeightTable] = None,
    ) -> int:
        analysis = self.validation_analysis(
            config, destination=destination, weight_table=weight_table
        )
        grid = analysis.wctt_grid_to(destination, packet_flits=packet_flits)
        return int(grid[source.y, source.x])


class PaperAnalysisBackend(AnalysisBackend):
    """Config-dispatching default: ``weighted`` on WaW+WaP, else ``regular``.

    Not registered (its name would shadow neither constituent); it backs
    ``make_analysis_backend(None)`` so "no backend selected" keeps meaning
    "the paper's analysis for this design point".
    """

    name = "paper"
    description = "paper default: weighted bound on WaW+WaP designs, regular otherwise"

    def _delegate(self, config: NoCConfig) -> AnalysisBackend:
        return make_analysis_backend("weighted" if config.is_waw_wap else "regular")

    def supports(self, config: NoCConfig) -> Optional[str]:
        return self._delegate(config).supports(config)

    def analysis(self, config: NoCConfig, **kwargs):
        return self._delegate(config).analysis(config, **kwargs)

    def validation_analysis(self, config: NoCConfig, **kwargs):
        return self._delegate(config).validation_analysis(config, **kwargs)


_PAPER_BACKEND: Optional[PaperAnalysisBackend] = None


def _paper_backend() -> PaperAnalysisBackend:
    global _PAPER_BACKEND
    if _PAPER_BACKEND is None:
        _PAPER_BACKEND = PaperAnalysisBackend()
    return _PAPER_BACKEND
