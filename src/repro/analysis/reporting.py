"""Plain-text report formatting for experiment results.

All experiment drivers produce structured Python data (lists of dicts or
small dataclasses) and use these helpers to render the paper-style tables on
stdout.  Keeping formatting separate from computation lets tests assert on
the structured results and keeps the drivers short.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

__all__ = ["format_table", "format_grid", "format_title", "format_key_values"]

Value = Union[str, int, float]


def _fmt(value: Value, float_digits: int = 2) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e6 or abs(value) < 1e-3):
            return f"{value:.3e}"
        return f"{value:.{float_digits}f}"
    return str(value)


def format_title(title: str, *, underline: str = "=") -> str:
    """A section title with an underline of the same length."""
    return f"{title}\n{underline * len(title)}"


def format_table(
    rows: Sequence[Mapping[str, Value]],
    *,
    columns: Optional[Sequence[str]] = None,
    float_digits: int = 2,
) -> str:
    """Render a list of homogeneous dicts as an aligned text table."""
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    rendered: List[List[str]] = [[_fmt(row.get(c, ""), float_digits) for c in cols] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(cols)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(cols))
    separator = "  ".join("-" * widths[i] for i in range(len(cols)))
    body = "\n".join(
        "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)) for row in rendered
    )
    return "\n".join([header, separator, body])


def format_grid(
    values: Mapping, width: int, height: int, *, float_digits: int = 4, cell_width: int = 9
) -> str:
    """Render an ``(x, y) -> value`` mapping as a paper-style 2D grid.

    Rows are y coordinates (vertical axis), columns are x coordinates, as in
    the paper's Table III.  Missing cells (e.g. the memory-controller node)
    are rendered as ``--``.
    """
    lines = []
    header = "y\\x " + "".join(str(x).rjust(cell_width) for x in range(width))
    lines.append(header)
    for y in range(height):
        cells = []
        for x in range(width):
            key = _grid_key(values, x, y)
            if key is None:
                cells.append("--".rjust(cell_width))
            else:
                cells.append(_fmt(values[key], float_digits).rjust(cell_width))
        lines.append(str(y).ljust(4) + "".join(cells))
    return "\n".join(lines)


def _grid_key(values: Mapping, x: int, y: int):
    """Accept mappings keyed by Coord-like objects or (x, y) tuples."""
    for key in values:
        kx = getattr(key, "x", None)
        ky = getattr(key, "y", None)
        if kx is None and isinstance(key, tuple) and len(key) == 2:
            kx, ky = key
        if kx == x and ky == y:
            return key
    return None


def format_key_values(pairs: Mapping[str, Value], *, float_digits: int = 3) -> str:
    """Render a flat mapping as aligned ``key : value`` lines."""
    if not pairs:
        return "(empty)"
    width = max(len(k) for k in pairs)
    return "\n".join(f"{k.ljust(width)} : {_fmt(v, float_digits)}" for k, v in pairs.items())
