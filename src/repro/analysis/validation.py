"""Validation of the analytical WCTT bounds against the cycle-accurate simulator.

A worst-case bound is only useful if it is *safe*: no traversal observed on
the real (here: simulated) network may exceed it.  This module builds the
most adversarial congestion scenario the simulator can express for a chosen
victim flow -- every node whose path overlaps the victim's path keeps several
messages outstanding towards the victim's destination -- measures the worst
traversal time of probe packets of the victim flow, and compares it against
the analytical bound of the corresponding design point.

Because the analytical models assume an unbounded backlog of interfering
packets at *every* hop simultaneously (which finite buffers cannot fully
sustain), the measured worst case is expected to stay below the bound, often
by a comfortable margin for the regular design; the validation asserts the
safety direction (measured <= bound) and reports the tightness ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.config import NoCConfig
from ..core.wctt import make_wctt_analysis
from ..core.wctt_weighted import WaWWaPWCTTAnalysis
from ..geometry import Coord
from ..noc.network import Network
from ..workloads.synthetic import AdversarialCongestionTraffic

__all__ = ["BoundValidationResult", "validate_flow_bound", "validate_design"]


@dataclass(frozen=True)
class BoundValidationResult:
    """Outcome of one bound-vs-measurement comparison."""

    design: str
    source: Coord
    destination: Coord
    analytical_bound: int
    observed_worst: int
    probes: int

    @property
    def is_safe(self) -> bool:
        """True when no observed traversal exceeded the analytical bound."""
        return self.observed_worst <= self.analytical_bound

    @property
    def tightness(self) -> float:
        """Observed worst case as a fraction of the bound (1.0 = tight)."""
        return self.observed_worst / self.analytical_bound if self.analytical_bound else 0.0


def validate_flow_bound(
    config: NoCConfig,
    source: Coord,
    destination: Coord,
    *,
    congestion_cycles: int = 2_000,
    background_outstanding: int = 4,
    probe_period: int = 200,
    payload_flits: Optional[int] = None,
) -> BoundValidationResult:
    """Measure the worst probe traversal under adversarial congestion.

    ``payload_flits`` defaults to the design's minimum packet size so that a
    probe is a single packet in both designs and the measurement compares
    directly against :meth:`wctt_packet`.
    """
    payload = payload_flits if payload_flits is not None else config.min_packet_flits

    if config.is_waw_wap:
        # The adversarial background traffic keeps several packets per flow
        # outstanding, i.e. it does *not* conform to the per-round regulation
        # the paper-style bound assumes, so the comparison uses the
        # backlog-aware (burst-safe) variant of the WaW+WaP bound.
        analysis = WaWWaPWCTTAnalysis.for_memory_traffic(
            config, include_replies=False, regulated_contenders=False
        )
    else:
        analysis = make_wctt_analysis(config)
    bound = analysis.wctt_packet(source, destination, packet_flits=payload)

    network = Network(
        config,
        weight_table=analysis.weights if isinstance(analysis, WaWWaPWCTTAnalysis) else None,
    )
    traffic = AdversarialCongestionTraffic(
        mesh=config.mesh,
        victim_source=source,
        victim_destination=destination,
        background_outstanding=background_outstanding,
        probe_period=probe_period,
        payload_flits=payload,
    )
    probes, _ = traffic.drive(network, congestion_cycles)
    latencies = [p.network_latency for p in probes if p.network_latency is not None]
    if not latencies:
        raise RuntimeError("no probe completed during validation")

    return BoundValidationResult(
        design="WaW+WaP" if config.is_waw_wap else "regular",
        source=source,
        destination=destination,
        analytical_bound=bound,
        observed_worst=max(latencies),
        probes=len(latencies),
    )


def validate_design(
    config: NoCConfig,
    *,
    destination: Optional[Coord] = None,
    sources: Optional[List[Coord]] = None,
    congestion_cycles: int = 1_500,
) -> List[BoundValidationResult]:
    """Validate the bound for a representative set of flows of a design point.

    By default the destination is the memory controller and the sources are
    the nearest node, the farthest node and a mid-distance node -- the three
    regimes where the bound behaves differently.
    """
    mesh = config.mesh
    dst = destination if destination is not None else config.memory_controller
    if sources is None:
        far = Coord(mesh.width - 1, mesh.height - 1)
        near = Coord(1, 0) if dst == Coord(0, 0) else Coord(max(0, dst.x - 1), dst.y)
        mid = Coord(mesh.width // 2, mesh.height // 2)
        sources = [s for s in (near, mid, far) if s != dst]
    results = []
    for source in sources:
        results.append(
            validate_flow_bound(
                config, source, dst, congestion_cycles=congestion_cycles
            )
        )
    return results
