"""In-order blocking core model driven by a workload operation stream.

The cores of the evaluated manycore are simple in-order cores: on a cache
miss the core sends a load request to the memory controller and stalls until
the cache-line reply arrives; dirty-line evictions are posted (the core does
not wait for the acknowledgement, which matches the common write-back buffer
behaviour).  Between NoC operations the core computes for the number of
cycles dictated by its workload.

The core can be driven by either workload representation of
:mod:`repro.workloads.trace`:

* profile-driven streams issue one NoC load per operation (the profile
  already counts *misses*);
* address-level traces go through the private :class:`~repro.manycore.cache.Cache`
  first, and only misses/write-backs reach the NoC.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..geometry import Coord
from ..noc.flit import Message
from ..noc.network import Network
from ..workloads.trace import MemoryOperation
from .cache import Cache

__all__ = ["Core"]


class Core:
    """One processing core attached to a node of the network."""

    def __init__(
        self,
        node: Coord,
        network: Network,
        operations: Iterator[MemoryOperation],
        *,
        cache: Optional[Cache] = None,
        memory_controller: Optional[Coord] = None,
        name: str = "",
    ):
        self.node = node
        self.network = network
        self.config = network.config
        self.config.mesh.require(node)
        self.memory_controller = (
            memory_controller if memory_controller is not None else self.config.memory_controller
        )
        if self.memory_controller == node:
            raise ValueError("a core cannot be placed on the memory-controller node")
        self.name = name or f"core@{node}"
        self.cache = cache

        self._operations = iter(operations)
        self._compute_remaining = 0
        self._current_op: Optional[MemoryOperation] = None
        self._waiting_reply = False
        self._finished_stream = False

        # Statistics
        self.issued_loads = 0
        self.issued_evictions = 0
        self.completed_loads = 0
        self.stall_cycles = 0
        self.compute_cycles = 0
        self.start_cycle: Optional[int] = None
        self.finish_cycle: Optional[int] = None

        network.add_listener(node, self._on_message)
        self._fetch_next()

    # ------------------------------------------------------------------
    # Workload stream handling
    # ------------------------------------------------------------------
    def _fetch_next(self) -> None:
        try:
            op = next(self._operations)
        except StopIteration:
            self._current_op = None
            self._finished_stream = True
            return
        self._current_op = op
        self._compute_remaining = op.compute_cycles

    # ------------------------------------------------------------------
    # NoC interaction
    # ------------------------------------------------------------------
    def _on_message(self, message: Message, cycle: int) -> None:
        if message.kind == "reply" and message.context is self:
            self._waiting_reply = False
            self.completed_loads += 1
            # The reply of the last operation finishes the core's execution.
            self._maybe_finish(cycle)
        # Eviction acknowledgements are not waited for.

    def _issue(self, op: MemoryOperation) -> None:
        """Translate one workload operation into NoC traffic."""
        messages = self.config.messages
        if self.cache is not None and op.address is not None:
            result = self.cache.access(op.address, is_write=op.is_write)
            if result.writeback:
                self.network.send(
                    self.node,
                    self.memory_controller,
                    messages.eviction_flits,
                    kind="eviction",
                    context=self,
                )
                self.issued_evictions += 1
            if result.hit:
                return  # no NoC traffic, continue with the next operation
            self._send_load()
            return

        # Profile-driven operation: writes model dirty-line evictions, reads
        # model load misses.
        if op.is_write:
            self.network.send(
                self.node,
                self.memory_controller,
                messages.eviction_flits,
                kind="eviction",
                context=self,
            )
            self.issued_evictions += 1
        else:
            self._send_load()

    def _send_load(self) -> None:
        messages = self.config.messages
        self.network.send(
            self.node,
            self.memory_controller,
            messages.request_flits,
            kind="load",
            context=self,
        )
        self.issued_loads += 1
        self._waiting_reply = True

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """True once the workload stream is exhausted and nothing is pending."""
        return self._finished_stream and self._current_op is None and not self._waiting_reply

    def step(self, cycle: int) -> None:
        """Advance the core by one cycle."""
        if self.done:
            self._maybe_finish(cycle)
            return
        if self.start_cycle is None:
            self.start_cycle = cycle

        if self._waiting_reply:
            self.stall_cycles += 1
            return

        if self._current_op is None:
            self._fetch_next()
            if self._current_op is None:
                self._maybe_finish(cycle)
                return

        if self._compute_remaining > 0:
            self._compute_remaining -= 1
            self.compute_cycles += 1
            return

        op = self._current_op
        self._current_op = None
        self._issue(op)
        self._fetch_next()
        self._maybe_finish(cycle)

    def _maybe_finish(self, cycle: int) -> None:
        if self.done and self.finish_cycle is None:
            self.finish_cycle = cycle

    # ------------------------------------------------------------------
    # Activity introspection / bulk idle (event-driven backend support)
    # ------------------------------------------------------------------
    def next_activity_cycle(self, now: int) -> Optional[int]:
        """Earliest cycle at which :meth:`step` does more than bookkeeping.

        ``None`` means the core cannot act on its own (it is stalled on a
        reply, or finished) -- something else in the system must wake it.
        ``now`` forces a real step whenever the core still has timestamps to
        record or an operation to fetch/issue.
        """
        if self.done:
            # A finished core only needs one more step to stamp finish_cycle.
            return now if self.finish_cycle is None else None
        if self.start_cycle is None:
            return now
        if self._waiting_reply:
            return None
        if self._current_op is None:
            return now
        if self._compute_remaining > 0:
            return now + self._compute_remaining
        return now

    def skip_cycles(self, cycles: int) -> None:
        """Replay ``cycles`` steps in which this core only counts time.

        Exactly mirrors what ``cycles`` calls to :meth:`step` would do while
        the core is stalled (stall accounting) or mid-compute-gap (gap
        countdown); the event-driven backend guarantees the core cannot
        reach an issue/fetch point inside the skipped stretch.
        """
        if cycles <= 0 or self.done:
            return
        if self._waiting_reply:
            self.stall_cycles += cycles
            return
        if self._current_op is None or self._compute_remaining < cycles:
            raise RuntimeError(
                f"{self.name}: skipped {cycles} cycles across an activity point "
                "(event-driven backend bug)"
            )
        self._compute_remaining -= cycles
        self.compute_cycles += cycles

    @property
    def elapsed_cycles(self) -> Optional[int]:
        if self.start_cycle is None or self.finish_cycle is None:
            return None
        return self.finish_cycle - self.start_cycle

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self.done else ("stalled" if self._waiting_reply else "running")
        return f"Core({self.name}, {state}, loads={self.issued_loads})"
