"""WCET-computation mode: analytical WCET estimates from UBD tables.

The evaluated architecture supports the WCET-computation mode of Paolieri et
al. [17]: at analysis time every NoC access of the task under analysis is
delayed by an upper bound delay (UBD), so the execution time observed in that
mode is a safe and *time-composable* WCET estimate -- it does not depend on
what any co-runner does, because the UBD already accounts for the worst
possible interference.

Because in that mode every NoC access costs exactly its UBD, the WCET
estimate of a task is a closed-form function of its profile:

    WCET(task, core) = compute_cycles
                     + loads      * UBD_load(core)
                     + evictions  * UBD_eviction(core)

and the WCET estimate of a barrier-synchronised parallel application is the
sum over phases of the slowest thread's estimate plus the barrier cost.
This module implements both, on top of :class:`repro.core.ubd.UBDTable`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.ubd import UBDTable
from ..geometry import Coord
from ..workloads.parallel import ParallelWorkload
from ..workloads.trace import TaskProfile
from .placement import Placement

__all__ = [
    "TaskWCET",
    "PhaseWCET",
    "ParallelWCET",
    "wcet_of_profile",
    "wcet_of_parallel_workload",
]


@dataclass(frozen=True)
class TaskWCET:
    """WCET estimate of one single-threaded task on one core."""

    task: str
    core: Coord
    compute_cycles: int
    load_cycles: int
    eviction_cycles: int

    @property
    def total(self) -> int:
        return self.compute_cycles + self.load_cycles + self.eviction_cycles

    @property
    def noc_fraction(self) -> float:
        """Fraction of the WCET spent on (bounded) NoC round trips."""
        return (self.load_cycles + self.eviction_cycles) / self.total if self.total else 0.0


def wcet_of_profile(profile: TaskProfile, core: Coord, ubd_table: UBDTable) -> TaskWCET:
    """WCET estimate of a profile-driven task running on ``core``."""
    entry = ubd_table.entry(core)
    return TaskWCET(
        task=profile.name,
        core=core,
        compute_cycles=profile.compute_cycles,
        load_cycles=profile.memory_loads * entry.load_ubd,
        eviction_cycles=profile.evictions * entry.eviction_ubd,
    )


@dataclass(frozen=True)
class PhaseWCET:
    """WCET estimate of one phase of a parallel application."""

    phase: str
    per_thread: Dict[int, int]
    critical_thread: int
    critical_cycles: int


@dataclass(frozen=True)
class ParallelWCET:
    """WCET estimate of a complete barrier-synchronised application."""

    workload: str
    placement: str
    phases: List[PhaseWCET]
    barrier_cycles: int

    @property
    def total(self) -> int:
        return sum(p.critical_cycles for p in self.phases) + self.barrier_cycles * len(self.phases)

    def phase_totals(self) -> List[int]:
        return [p.critical_cycles for p in self.phases]


def wcet_of_parallel_workload(
    workload: ParallelWorkload,
    placement: Placement,
    ubd_table: UBDTable,
    *,
    name: Optional[str] = None,
) -> ParallelWCET:
    """WCET estimate of a parallel workload under a given placement.

    Every thread's per-phase estimate uses the UBD of the core it is placed
    on; the phase WCET is the maximum over threads (barrier semantics) and
    the application WCET adds the fixed barrier cost per phase.
    """
    placement.validate(ubd_table.config.mesh, forbidden=[ubd_table.config.memory_controller])
    missing = [tid for tid in range(workload.num_threads) if tid not in placement.mapping]
    if missing:
        raise ValueError(f"placement {placement.name} does not place threads {missing}")

    phases: List[PhaseWCET] = []
    for phase in workload.phases:
        per_thread: Dict[int, int] = {}
        for thread_id in range(workload.num_threads):
            work = phase.work_of(thread_id)
            entry = ubd_table.entry(placement.node_of(thread_id))
            per_thread[thread_id] = (
                work.compute_cycles
                + work.loads * entry.load_ubd
                + work.evictions * entry.eviction_ubd
            )
        critical_thread = max(per_thread, key=per_thread.get)
        phases.append(
            PhaseWCET(
                phase=phase.name,
                per_thread=per_thread,
                critical_thread=critical_thread,
                critical_cycles=per_thread[critical_thread],
            )
        )
    return ParallelWCET(
        workload=name if name is not None else workload.name,
        placement=placement.name,
        phases=phases,
        barrier_cycles=workload.barrier_cycles,
    )
