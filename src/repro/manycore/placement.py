"""Task-to-core placements.

Where the threads of a parallel application are placed on the mesh is a
first-order factor of its WCET on a regular wNoC (the paper's Figure 2(b)
shows more than 6x variation across placements), whereas WaW+WaP keeps the
variation within ~20 %.  :class:`Placement` maps logical thread ids to mesh
coordinates; :func:`standard_placements` builds the four 16-core placements
(P0..P3) used in the reproduction of that experiment:

* **P0** -- a compact 4x4 block adjacent to the memory controller corner;
* **P1** -- a compact 4x4 block in the opposite (far) corner;
* **P2** -- two full rows in the middle of the chip;
* **P3** -- threads spread along the main diagonal and its neighbourhood.

The exact placements of the paper are not published; these four capture the
same intent (near, far, stripe, scattered) and therefore the same spread of
NoC distances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..geometry import Coord, Mesh

__all__ = ["Placement", "standard_placements", "block_placement", "diagonal_placement", "row_placement"]


@dataclass
class Placement:
    """A mapping of logical thread ids onto mesh nodes."""

    name: str
    mapping: Dict[int, Coord] = field(default_factory=dict)

    def assign(self, thread_id: int, node: Coord) -> None:
        if thread_id in self.mapping:
            raise ValueError(f"thread {thread_id} already placed at {self.mapping[thread_id]}")
        if node in self.mapping.values():
            raise ValueError(f"node {node} already hosts a thread")
        self.mapping[thread_id] = node

    def node_of(self, thread_id: int) -> Coord:
        if thread_id not in self.mapping:
            raise KeyError(f"thread {thread_id} is not placed")
        return self.mapping[thread_id]

    def thread_ids(self) -> List[int]:
        return sorted(self.mapping.keys())

    def nodes(self) -> List[Coord]:
        return [self.mapping[tid] for tid in self.thread_ids()]

    def __len__(self) -> int:
        return len(self.mapping)

    def validate(self, mesh: Mesh, *, forbidden: Iterable[Coord] = ()) -> None:
        """Check every node is inside the mesh and none is forbidden (e.g. the MC)."""
        forbidden = set(forbidden)
        for tid, node in self.mapping.items():
            mesh.require(node)
            if node in forbidden:
                raise ValueError(f"thread {tid} placed on a forbidden node {node}")

    def average_distance_to(self, target: Coord) -> float:
        """Mean Manhattan distance of the placed threads to ``target``."""
        if not self.mapping:
            raise ValueError("empty placement")
        return sum(node.manhattan(target) for node in self.mapping.values()) / len(self.mapping)


# ----------------------------------------------------------------------
# Placement constructors
# ----------------------------------------------------------------------
def block_placement(
    name: str,
    mesh: Mesh,
    *,
    origin: Coord,
    width: int,
    height: int,
    skip: Iterable[Coord] = (),
) -> Placement:
    """Place threads on a compact ``width x height`` block starting at ``origin``."""
    skip = set(skip)
    placement = Placement(name)
    thread_id = 0
    for dy in range(height):
        for dx in range(width):
            node = Coord(origin.x + dx, origin.y + dy)
            mesh.require(node)
            if node in skip:
                continue
            placement.assign(thread_id, node)
            thread_id += 1
    return placement


def row_placement(
    name: str, mesh: Mesh, *, rows: Iterable[int], skip: Iterable[Coord] = ()
) -> Placement:
    """Place threads along full mesh rows (a stripe placement)."""
    skip = set(skip)
    placement = Placement(name)
    thread_id = 0
    for y in rows:
        for x in range(mesh.width):
            node = Coord(x, y)
            mesh.require(node)
            if node in skip:
                continue
            placement.assign(thread_id, node)
            thread_id += 1
    return placement


def diagonal_placement(
    name: str, mesh: Mesh, *, count: int, skip: Iterable[Coord] = ()
) -> Placement:
    """Scatter threads along the main diagonal and its immediate neighbours."""
    skip = set(skip)
    placement = Placement(name)
    thread_id = 0
    # Walk the diagonal, then the band next to it, until ``count`` threads are placed.
    for offset in range(mesh.width + mesh.height):
        for d in range(min(mesh.width, mesh.height)):
            x, y = d, (d + offset) % mesh.height
            node = Coord(x, y)
            if not mesh.contains(node) or node in skip or node in placement.mapping.values():
                continue
            placement.assign(thread_id, node)
            thread_id += 1
            if thread_id >= count:
                return placement
    if thread_id < count:
        raise ValueError(f"could not place {count} threads on {mesh}")
    return placement


def standard_placements(
    mesh: Mesh, *, num_threads: int = 16, memory_controller: Optional[Coord] = None
) -> Dict[str, Placement]:
    """The four placements (P0..P3) of the Figure 2(b) reproduction.

    Requires a mesh of at least 8x8 for the canonical 16-thread setup; the
    memory-controller node is never used for application threads.
    """
    mc = memory_controller if memory_controller is not None else Coord(0, 0)
    if num_threads != 16 or mesh.width < 8 or mesh.height < 8:
        raise ValueError("standard placements are defined for 16 threads on an 8x8 (or larger) mesh")

    placements = {
        # Compact block next to the memory-controller corner.  The corner
        # node itself hosts the MC, so the block starts one column away.
        "P0": block_placement("P0", mesh, origin=Coord(1, 0), width=4, height=4, skip=[mc]),
        # Compact block around the centre of the chip.
        "P1": block_placement("P1", mesh, origin=Coord(2, 2), width=4, height=4, skip=[mc]),
        # Two full rows across the middle of the chip.
        "P2": row_placement("P2", mesh, rows=[mesh.height // 2 - 1, mesh.height // 2], skip=[mc]),
        # Scattered along the main diagonal (spans the whole chip, including
        # nodes far from the memory controller).
        "P3": diagonal_placement("P3", mesh, count=num_threads, skip=[mc]),
    }
    for placement in placements.values():
        placement.validate(mesh, forbidden=[mc])
        # Stripe/diagonal constructors may place more than 16 threads; trim.
        extra = [tid for tid in placement.thread_ids() if tid >= num_threads]
        for tid in extra:
            del placement.mapping[tid]
    return placements
