"""Private per-core cache model.

Each core of the evaluated manycore has a private cache; only its *misses*
and *write-backs* reach the NoC.  The reproduction provides a small but real
set-associative write-back cache model so that address-level workloads (the
3D path-planning application, custom traces) generate realistic NoC traffic,
and so that the profile-driven workloads (EEMBC-like) can be expressed as
miss statistics without address streams.

The model is deliberately simple -- LRU replacement, write-allocate,
write-back -- because only the *number* of NoC transactions matters for the
paper's experiments, not hit latencies.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["CacheConfig", "CacheAccessResult", "Cache"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of a private cache."""

    size_bytes: int = 16 * 1024
    line_bytes: int = 64
    associativity: int = 4

    def __post_init__(self) -> None:
        if self.line_bytes < 1 or self.size_bytes < self.line_bytes:
            raise ValueError("invalid cache geometry")
        if self.associativity < 1:
            raise ValueError("associativity must be >= 1")
        if self.size_bytes % (self.line_bytes * self.associativity) != 0:
            raise ValueError("size must be a multiple of line_bytes * associativity")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass(frozen=True)
class CacheAccessResult:
    """Outcome of one access: does it miss, and does it evict a dirty line?"""

    hit: bool
    writeback: bool
    #: Address of the evicted dirty line (line-aligned), if any.
    evicted_line: Optional[int] = None


class Cache:
    """Set-associative write-back write-allocate cache with LRU replacement."""

    def __init__(self, config: Optional[CacheConfig] = None):
        self.config = config if config is not None else CacheConfig()
        #: Per-set ordered mapping tag -> dirty flag; ordering encodes LRU
        #: (most recently used last).
        self._sets: Dict[int, "OrderedDict[int, bool]"] = {
            idx: OrderedDict() for idx in range(self.config.num_sets)
        }
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    # ------------------------------------------------------------------
    def _locate(self, address: int) -> Tuple[int, int]:
        line = address // self.config.line_bytes
        set_index = line % self.config.num_sets
        tag = line // self.config.num_sets
        return set_index, tag

    def access(self, address: int, *, is_write: bool = False) -> CacheAccessResult:
        """Perform one access and return its NoC-visible consequences."""
        if address < 0:
            raise ValueError("addresses must be non-negative")
        set_index, tag = self._locate(address)
        ways = self._sets[set_index]

        if tag in ways:
            self.hits += 1
            dirty = ways.pop(tag)
            ways[tag] = dirty or is_write
            return CacheAccessResult(hit=True, writeback=False)

        self.misses += 1
        evicted_line: Optional[int] = None
        writeback = False
        if len(ways) >= self.config.associativity:
            victim_tag, victim_dirty = ways.popitem(last=False)
            if victim_dirty:
                writeback = True
                self.writebacks += 1
                victim_line = victim_tag * self.config.num_sets + set_index
                evicted_line = victim_line * self.config.line_bytes
        ways[tag] = is_write
        return CacheAccessResult(hit=False, writeback=writeback, evicted_line=evicted_line)

    # ------------------------------------------------------------------
    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset_statistics(self) -> None:
        self.hits = self.misses = self.writebacks = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Cache({self.config.size_bytes}B, {self.config.associativity}-way, "
            f"{self.misses}/{self.accesses} misses)"
        )
