"""Memory controller model.

The evaluated manycore routes every off-chip access through a single memory
controller attached to router ``R(0, 0)``.  The controller model listens for
request messages completing at its NIC, applies a fixed service latency and
injects the corresponding reply:

* ``"load"`` requests (1 flit) are answered with a ``"reply"`` carrying a
  cache line (4 flits of payload under regular packetization);
* ``"eviction"`` write-backs (4 flits) are answered with a 1-flit
  ``"eviction_ack"``.

The service latency models DRAM access plus controller queueing and is
identical for both NoC design points, so it shifts both designs' results by
the same amount.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from ..core.config import NoCConfig
from ..core.ubd import MemoryTiming
from ..geometry import Coord
from ..noc.flit import Message
from ..noc.network import Network

__all__ = ["MemoryController"]


class MemoryController:
    """Request/reply protocol engine attached to one node of the network."""

    def __init__(
        self,
        network: Network,
        node: Optional[Coord] = None,
        *,
        timing: Optional[MemoryTiming] = None,
    ):
        self.network = network
        self.config: NoCConfig = network.config
        self.node = node if node is not None else self.config.memory_controller
        self.config.mesh.require(self.node)
        self.timing = timing if timing is not None else MemoryTiming()

        #: Replies scheduled for future injection: (ready_cycle, seq, message).
        self._pending: List[Tuple[int, int, Message]] = []
        self._seq = 0
        self.served_loads = 0
        self.served_evictions = 0

        network.add_listener(self.node, self._on_message)

    # ------------------------------------------------------------------
    def _on_message(self, message: Message, cycle: int) -> None:
        """NIC callback: a request message has fully arrived."""
        if message.destination != self.node:
            return
        messages = self.config.messages
        if message.kind == "load":
            self.served_loads += 1
            reply_kind = "reply"
            reply_flits = messages.reply_flits
        elif message.kind == "eviction":
            self.served_evictions += 1
            reply_kind = "eviction_ack"
            reply_flits = messages.eviction_ack_flits
        else:
            # Unknown kinds (raw synthetic traffic) are consumed silently.
            return
        ready = cycle + self.timing.service_latency
        heapq.heappush(
            self._pending,
            (ready, self._next_seq(), Message(
                source=self.node,
                destination=message.source,
                payload_flits=reply_flits,
                kind=reply_kind,
                context=message.context,
            )),
        )

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # ------------------------------------------------------------------
    def step(self, cycle: int) -> None:
        """Inject every reply whose service latency has elapsed."""
        while self._pending and self._pending[0][0] <= cycle:
            _, __, reply = heapq.heappop(self._pending)
            self.network.nics[self.node].send_message(reply, cycle)
            self.network.stats.record_send(reply)

    def has_work(self) -> bool:
        return bool(self._pending)

    def pending_replies(self) -> int:
        return len(self._pending)

    def next_ready_cycle(self) -> Optional[int]:
        """Cycle at which the earliest pending reply becomes injectable.

        ``None`` when no reply is pending; used by the event-driven backend
        to bound how far the clock may jump.
        """
        return self._pending[0][0] if self._pending else None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MemoryController(node={self.node}, served={self.served_loads} loads, "
            f"{self.served_evictions} evictions)"
        )
