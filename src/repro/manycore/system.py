"""Assembly of the full manycore: cores + NoC + memory controller.

:class:`ManycoreSystem` owns a :class:`~repro.noc.network.Network`, a
:class:`~repro.manycore.memory.MemoryController` at the configured node and
any number of :class:`~repro.manycore.core.Core` instances, and advances all
of them in lock-step.  It is the entry point for the *average-performance*
experiments (actual execution on the cycle-accurate NoC, no upper-bound
delays) and for any user who wants to run their own workloads on the
simulated platform.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Union

from ..core.config import NoCConfig
from ..core.ubd import MemoryTiming
from ..core.weights import WeightTable
from ..geometry import Coord
from ..noc.network import Network
from ..sim import SimulationBackend, make_backend
from ..workloads.parallel import ParallelWorkload
from ..workloads.trace import AccessTrace, MemoryOperation, TaskProfile
from .cache import Cache, CacheConfig
from .core import Core
from .memory import MemoryController
from .placement import Placement

__all__ = ["ManycoreSystem"]


class ManycoreSystem:
    """A simulated manycore: N x M mesh, one memory controller, many cores."""

    def __init__(
        self,
        config: NoCConfig,
        *,
        weight_table: Optional[WeightTable] = None,
        memory_timing: Optional[MemoryTiming] = None,
        backend: Union[str, SimulationBackend, None] = None,
    ):
        self.config = config
        self.backend = make_backend(backend if backend is not None else config.sim_backend)
        self.network = Network(config, weight_table, backend=self.backend)
        self.memory_timing = memory_timing if memory_timing is not None else MemoryTiming()
        self.memory_controller = MemoryController(
            self.network, config.memory_controller, timing=self.memory_timing
        )
        self.cores: Dict[Coord, Core] = {}

    # ------------------------------------------------------------------
    # Core construction helpers
    # ------------------------------------------------------------------
    def add_core(
        self,
        node: Coord,
        operations: Iterator[MemoryOperation],
        *,
        cache: Optional[Cache] = None,
        name: str = "",
    ) -> Core:
        """Attach a core running an explicit operation stream at ``node``."""
        if node in self.cores:
            raise ValueError(f"node {node} already hosts a core")
        core = Core(
            node,
            self.network,
            operations,
            cache=cache,
            memory_controller=self.config.memory_controller,
            name=name,
        )
        self.cores[node] = core
        return core

    def add_profile_core(self, node: Coord, profile: TaskProfile) -> Core:
        """Attach a core running a profile-driven (EEMBC-like) task."""
        return self.add_core(node, profile.operations(), name=profile.name)

    def add_trace_core(
        self,
        node: Coord,
        trace: AccessTrace,
        *,
        cache_config: Optional[CacheConfig] = None,
    ) -> Core:
        """Attach a core running an address-level trace behind a private cache."""
        cache = Cache(cache_config)
        return self.add_core(node, trace.operations(), cache=cache, name=trace.name)

    def add_parallel_workload(
        self,
        workload: ParallelWorkload,
        placement: Placement,
        *,
        per_phase_serialisation: bool = False,
    ) -> List[Core]:
        """Attach one core per thread of a barrier-synchronised workload.

        The operation stream of each thread concatenates its phases; the
        barrier synchronisation itself is not enforced cycle-accurately
        (threads proceed independently), which is sufficient for the
        average-performance experiment.  ``per_phase_serialisation`` inserts
        the barrier cost as extra compute cycles between phases.
        """
        cores: List[Core] = []
        for thread_id in range(workload.num_threads):
            node = placement.node_of(thread_id)
            ops = self._thread_operations(workload, thread_id, per_phase_serialisation)
            cores.append(self.add_core(node, ops, name=f"{workload.name}-t{thread_id}"))
        return cores

    @staticmethod
    def _thread_operations(
        workload: ParallelWorkload, thread_id: int, per_phase_serialisation: bool
    ) -> Iterator[MemoryOperation]:
        def _generate() -> Iterator[MemoryOperation]:
            for phase in workload.phases:
                work = phase.work_of(thread_id)
                ops = work.noc_operations
                if ops == 0:
                    if work.compute_cycles:
                        yield MemoryOperation(compute_cycles=work.compute_cycles, is_write=True)
                    continue
                gap = max(1, work.compute_cycles // ops)
                evictions = work.evictions
                for i in range(ops):
                    # Integer spreading gives exactly ``evictions`` writes.
                    is_write = (i + 1) * evictions // ops > i * evictions // ops
                    yield MemoryOperation(compute_cycles=gap, is_write=is_write)
                if per_phase_serialisation and workload.barrier_cycles:
                    yield MemoryOperation(compute_cycles=workload.barrier_cycles, is_write=True)

        return _generate()

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    @property
    def cycle(self) -> int:
        return self.network.cycle

    def step(self) -> None:
        """Advance cores, memory controller and network by one cycle."""
        now = self.network.cycle
        for core in self.cores.values():
            core.step(now)
        self.memory_controller.step(now)
        self.network.step()

    def step_active(self) -> None:
        """Like :meth:`step`, but the network touches only busy routers.

        Outcome-identical (see :meth:`Network.step_active`); used by the
        event-driven backend.
        """
        now = self.network.cycle
        for core in self.cores.values():
            core.step(now)
        self.memory_controller.step(now)
        self.network.step_active()

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step()

    def all_cores_done(self) -> bool:
        return all(core.done for core in self.cores.values())

    def is_complete(self) -> bool:
        """True when every core finished, the NoC drained and no reply is due."""
        return (
            self.all_cores_done()
            and self.network.is_idle()
            and not self.memory_controller.has_work()
        )

    def run_to_completion(self, *, max_cycles: int = 5_000_000) -> int:
        """Run until every core finished its workload and the NoC drained.

        Time advancement is delegated to the configured
        :class:`~repro.sim.SimulationBackend`; raises
        :class:`~repro.sim.SimulationStallError` -- naming the unfinished
        cores and the in-flight traffic -- after ``max_cycles``.
        """
        injector = self.network.fault_injector
        if injector is not None:
            injector.spec.reliability.validate_drain_budget(max_cycles)
        return self.backend.run_to_completion(self, max_cycles=max_cycles)

    # ------------------------------------------------------------------
    # Activity introspection / bulk idle (event-driven backend support)
    # ------------------------------------------------------------------
    def next_activity_cycle(self) -> Optional[int]:
        """Earliest cycle at which any core, the MC or the NoC can act."""
        now = self.network.cycle
        best: Optional[int] = None
        for core in self.cores.values():
            ready = core.next_activity_cycle(now)
            if ready is None:
                continue
            if ready <= now:
                return now
            if best is None or ready < best:
                best = ready
        ready = self.memory_controller.next_ready_cycle()
        if ready is not None:
            if ready <= now:
                return now
            if best is None or ready < best:
                best = ready
        ready = self.network.next_activity_cycle()
        if ready is not None:
            if ready <= now:
                return now
            if best is None or ready < best:
                best = ready
        return best

    def skip_cycles(self, cycles: int) -> None:
        """Advance the whole system over ``cycles`` provably dead cycles."""
        if cycles <= 0:
            return
        for core in self.cores.values():
            core.skip_cycles(cycles)
        # The memory controller keeps no per-cycle state; the network applies
        # its arbiters' idle accounting and moves the clock.
        self.network.skip_idle_cycles(cycles)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def makespan(self) -> int:
        """Cycles from start until the last core finished (after a run)."""
        finishes = [core.finish_cycle for core in self.cores.values()]
        if any(f is None for f in finishes):
            raise RuntimeError("some cores have not finished yet")
        return max(finishes)  # type: ignore[arg-type]

    def per_core_cycles(self) -> Dict[Coord, int]:
        """Per-core elapsed execution cycles (after a completed run)."""
        result = {}
        for node, core in self.cores.items():
            elapsed = core.elapsed_cycles
            if elapsed is None:
                raise RuntimeError(f"core at {node} has not finished")
            result[node] = elapsed
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ManycoreSystem({self.config.describe()}, {len(self.cores)} cores)"
