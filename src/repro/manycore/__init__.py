"""Manycore substrate: cores, caches, memory controller and WCET machinery."""

from .cache import Cache, CacheAccessResult, CacheConfig
from .core import Core
from .memory import MemoryController
from .placement import (
    Placement,
    block_placement,
    diagonal_placement,
    row_placement,
    standard_placements,
)
from .system import ManycoreSystem
from .wcet_mode import (
    ParallelWCET,
    PhaseWCET,
    TaskWCET,
    wcet_of_parallel_workload,
    wcet_of_profile,
)

__all__ = [
    "Cache",
    "CacheAccessResult",
    "CacheConfig",
    "Core",
    "MemoryController",
    "Placement",
    "block_placement",
    "diagonal_placement",
    "row_placement",
    "standard_placements",
    "ManycoreSystem",
    "ParallelWCET",
    "PhaseWCET",
    "TaskWCET",
    "wcet_of_parallel_workload",
    "wcet_of_profile",
]
