"""WaW arbitration weights (paper Section III).

WaW performs weighted round-robin arbitration at every router output port.
The weight of an (input port, output port) pair is

    W(I_dir_i, O_dir_o) = I_dir_i / O_dir_o                       (paper Eq. 1)

where ``I_dir_i`` is the number of communication flows that can enter the
router through input ``dir_i`` and ``O_dir_o`` the number of flows that can
leave through output ``dir_o``.  With XY routing both numbers only depend on
the router coordinates, so the weights can be computed statically and wired
into the arbiters.

This module provides three ways to obtain those counts:

* :func:`paper_port_counts` -- the closed-form expressions exactly as printed
  in the paper (with their ``X-`` off-by-one quirk, see below);
* :func:`source_port_counts` -- the counts of *upstream source nodes* that
  can cross each port under XY routing, derived from first principles.  This
  is the counting that reproduces the paper's Table I example;
* :class:`WeightTable` built from an arbitrary :class:`~repro.core.flows.FlowSet`
  (e.g. all-to-one traffic towards the memory controller), which is what the
  WCTT analysis and the simulator of the evaluated manycore use.

Discrepancy note (also surfaced by the ``table1`` experiment's report): the
printed closed forms
give ``I_X- = N - x`` and ``O_X- = N - x + 1`` whereas the worked example of
Table I (router R(1,1) of a 2x2 mesh, ``W(PME, X-) = 1``) requires
``O_X- = N - x``; the printed forms count one fictitious node beyond the
mesh edge.  :func:`source_port_counts` uses the self-consistent counting,
:func:`paper_port_counts` reproduces the printed text verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..geometry import Coord, Mesh, Port
from ..topology.base import XY, as_topology
from .flows import FlowSet

__all__ = [
    "PortCounts",
    "paper_port_counts",
    "source_port_counts",
    "WeightTable",
    "waw_weight",
]


@dataclass(frozen=True)
class PortCounts:
    """Flow counts entering (``inputs``) and leaving (``outputs``) a router."""

    router: Coord
    inputs: Mapping[Port, int]
    outputs: Mapping[Port, int]

    def input_count(self, port: Port) -> int:
        return self.inputs.get(port, 0)

    def output_count(self, port: Port) -> int:
        return self.outputs.get(port, 0)


def paper_port_counts(mesh: Mesh, router: Coord) -> PortCounts:
    """Per-port flow counts using the closed forms exactly as printed.

    ``N`` is the horizontal dimension (mesh width), ``M`` the vertical one
    (mesh height), ``x``/``y`` the router coordinates -- the same notation as
    the paper.
    """
    mesh.require(router)
    n, m = mesh.width, mesh.height
    x, y = router.x, router.y
    inputs = {
        Port.XPLUS: x,
        Port.XMINUS: n - x,
        Port.YPLUS: n * y,
        Port.YMINUS: n * (m - y - 1),
        Port.LOCAL: 1,
    }
    outputs = {
        Port.XPLUS: x + 1,
        Port.XMINUS: n - x + 1,
        Port.YPLUS: n * (y + 1),
        Port.YMINUS: n * (m - y),
        Port.LOCAL: n * m - 1,
    }
    return PortCounts(router, inputs, outputs)


def source_port_counts(mesh: Mesh, router: Coord) -> PortCounts:
    """Per-port counts of source nodes whose traffic can cross each port.

    Derived from XY routing over all-to-all traffic, counting distinct
    *sources* (the granularity at which WaW balances bandwidth):

    * ``X+`` input: traffic moving in +x is still in its X phase, so it can
      only come from the ``x`` preceding nodes of the same row.
    * ``Y+`` input: traffic moving in +y already completed its X phase in
      this column, so it can come from any of the ``N * y`` nodes of the
      preceding rows.
    * ``X+`` output: the upstream sources of the ``X+`` input plus the local
      node itself.
    * ``PME`` (LOCAL) output: any of the other ``N*M - 1`` nodes can eject
      here; the LOCAL input always counts exactly one source (the node).
    """
    mesh.require(router)
    n, m = mesh.width, mesh.height
    x, y = router.x, router.y
    inputs = {
        Port.XPLUS: x,
        Port.XMINUS: n - 1 - x,
        Port.YPLUS: n * y,
        Port.YMINUS: n * (m - 1 - y),
        Port.LOCAL: 1,
    }
    outputs = {
        Port.XPLUS: x + 1,
        Port.XMINUS: n - x,
        Port.YPLUS: n * (y + 1),
        Port.YMINUS: n * (m - y),
        Port.LOCAL: n * m - 1,
    }
    return PortCounts(router, inputs, outputs)


def _scaled(counts: PortCounts, scale: int) -> PortCounts:
    """Multiply every port count by ``scale`` (terminals per router)."""
    if scale == 1:
        return counts
    return PortCounts(
        counts.router,
        {port: scale * value for port, value in counts.inputs.items()},
        {port: scale * value for port, value in counts.outputs.items()},
    )


def waw_weight(counts: PortCounts, in_port: Port, out_port: Port) -> Fraction:
    """Paper Eq. 1: ``W = I / O`` as an exact fraction.

    Returns 0 when the output port serves no flow (the pair is never
    arbitrated).
    """
    out_count = counts.output_count(out_port)
    if out_count == 0:
        return Fraction(0)
    return Fraction(counts.input_count(in_port), out_count)


class WeightTable:
    """Statically computed WaW weights for every router of a mesh.

    A weight table maps ``(router, input port, output port)`` to the integer
    number of flit credits the input port receives in one arbitration round
    of that output port.  The weighted-round-robin arbiter of the paper is
    expressed in flit counts ("input port weight is measured as the number of
    flits it can transmit to an output port"), so integer credits equal to
    the flow counts implement exactly ``W = I / O``: in one full round the
    output port serves ``O`` flits of which ``I`` come from the input.
    """

    def __init__(
        self,
        mesh: Mesh,
        counts_by_router: Mapping[Coord, PortCounts],
        *,
        origin: str = "explicit per-router counts",
    ):
        self.mesh = mesh
        self._counts: Dict[Coord, PortCounts] = dict(counts_by_router)
        #: Human-readable construction path, quoted by lookup errors.
        self.origin = origin

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_closed_form(cls, mesh: Mesh, *, as_printed: bool = False) -> "WeightTable":
        """Build the all-to-all weights for any topology.

        For the plain XY mesh the paper's closed forms apply directly
        (``as_printed=True`` uses the formulas verbatim from the paper,
        otherwise the self-consistent source counting is used).  For every
        other topology -- wrap-around links or YX routing invalidate the
        closed forms -- the same quantities are derived exactly from the
        all-to-all flow set routed through the topology.  A concentrated
        mesh scales every count by its ``concentration`` so that one
        arbitration round serves each *terminal* its guaranteed slot.
        """
        topology = as_topology(mesh)
        if topology.has_wraparound or topology.routing is not XY:
            if as_printed:
                raise ValueError(
                    "the paper's printed closed forms only describe the XY mesh; "
                    f"cannot apply them to a {topology.describe_short()}"
                )
            return cls.from_flow_set(FlowSet.all_to_all(mesh))
        counts_fn = paper_port_counts if as_printed else source_port_counts
        scale = topology.terminals_per_node
        return cls(
            mesh,
            {
                router: _scaled(counts_fn(mesh, router), scale)
                for router in mesh.nodes()
            },
            origin=(
                "closed form (paper's printed expressions)"
                if as_printed
                else "closed form (source counting)"
            ),
        )

    @classmethod
    def from_flow_set(
        cls, flow_set: FlowSet, *, granularity: str = "source"
    ) -> "WeightTable":
        """Build from an explicit flow set (e.g. all-to-one memory traffic).

        ``granularity`` selects whether ports are weighted by the number of
        distinct source nodes (``"source"``, the paper's counting) or by the
        number of individual flows (``"flow"``).
        """
        if granularity not in ("source", "flow"):
            raise ValueError("granularity must be 'source' or 'flow'")
        mesh = flow_set.mesh
        count = (
            flow_set.port_source_count
            if granularity == "source"
            else flow_set.port_flow_count
        )
        # On a concentrated mesh each coordinate-level flow aggregates the
        # traffic of a whole cluster, so every count scales by the number of
        # terminals behind a router.
        scale = as_topology(mesh).terminals_per_node
        counts_by_router: Dict[Coord, PortCounts] = {}
        for router in mesh.nodes():
            inputs = {port: scale * count(router, port, "in") for port in mesh.input_ports(router)}
            outputs = {
                port: scale * count(router, port, "out") for port in mesh.output_ports(router)
            }
            counts_by_router[router] = PortCounts(router, inputs, outputs)
        return cls(
            mesh,
            counts_by_router,
            origin=f"flow set ({len(flow_set)} flows, {granularity} granularity)",
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def counts(self, router: Coord) -> PortCounts:
        self.mesh.require(router)
        try:
            return self._counts[router]
        except KeyError:
            raise KeyError(
                f"router {router} is inside the mesh but has no entry in this "
                f"WeightTable built from {self.origin} "
                f"(covers {len(self._counts)} of {len(list(self.mesh.nodes()))} routers)"
            ) from None

    def input_credits(self, router: Coord, in_port: Port) -> int:
        """Flit credits of ``in_port`` in one arbitration round (the weight)."""
        return self.counts(router).input_count(in_port)

    def output_round_flits(self, router: Coord, out_port: Port) -> int:
        """Total flits served by ``out_port`` in one full arbitration round."""
        return self.counts(router).output_count(out_port)

    def weight(self, router: Coord, in_port: Port, out_port: Port) -> Fraction:
        """Paper Eq. 1 weight ``W(I, O)`` for the pair, as an exact fraction."""
        return waw_weight(self.counts(router), in_port, out_port)

    def arbitration_weights(self, router: Coord, out_port: Port) -> Dict[Port, int]:
        """Integer credits of every legal contender of ``out_port``.

        Ports with zero upstream flows are included with weight 0 so that the
        arbiter still grants them when they are the only requester (work
        conservation; see :mod:`repro.core.arbitration`).
        """
        counts = self.counts(router)
        legal = as_topology(self.mesh).legal_inputs_for_output(router, out_port)
        return {port: counts.input_count(port) for port in legal}

    def table_rows(self, router: Coord) -> Iterable[Tuple[Port, Port, Fraction]]:
        """All (input, output, weight) triples of a router with W > 0.

        Used to reproduce the paper's Table I.
        """
        counts = self.counts(router)
        topology = as_topology(self.mesh)
        for out_port in self.mesh.output_ports(router):
            if counts.output_count(out_port) == 0:
                continue
            for in_port in topology.legal_inputs_for_output(router, out_port):
                weight = waw_weight(counts, in_port, out_port)
                if weight > 0:
                    yield in_port, out_port, weight

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WeightTable({self.mesh})"


def round_robin_weight(
    mesh: Mesh, router: Coord, in_port: Port, out_port: Port, flow_set: Optional[FlowSet] = None
) -> Fraction:
    """Bandwidth fraction a plain round-robin arbiter gives to an input port.

    Round-robin splits the output bandwidth evenly among the input ports that
    carry at least one flow towards the output (or among all legal inputs if
    no flow information is given).  Used to reproduce the "Regular Mesh"
    column of the paper's Table I.
    """
    legal = as_topology(mesh).legal_inputs_for_output(router, out_port)
    if flow_set is not None:
        # One lookup per call: membership tests against a set instead of
        # re-deriving the output's flow tuple for every flow of every input.
        through_output = set(flow_set.flows_through_output(router, out_port))
        active = [
            p
            for p in legal
            if not through_output.isdisjoint(flow_set.flows_through_input(router, p))
        ]
    else:
        active = list(legal)
    if in_port not in active or not active:
        return Fraction(0)
    return Fraction(1, len(active))
