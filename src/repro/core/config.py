"""Configuration objects describing a wormhole mesh NoC design point.

The paper compares two design points of the *same* mesh substrate:

* the **regular** wNoC: one packet per request (whatever its size, up to the
  maximum allowed packet length), plain round-robin switch arbitration;
* the **WaW + WaP** wNoC: requests sliced into minimum-size packets at the
  NIC (WaP) and weighted round-robin arbitration with statically computed
  weights (WaW).

:class:`NoCConfig` captures everything the analytical models and the
simulator need to know about a design point: topology, router timing,
arbitration/packetization policy and message sizes.  The message-size
constants of the evaluated manycore (1-flit load requests, 4-flit cache-line
replies over 132-bit links, one extra control flit per multi-flit message
under WaP) are provided by :class:`MessageConfig` defaults.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Optional

from ..faults.models import FaultModel, ModelSpecLike, make_fault_model
from ..geometry import Coord, Mesh
from ..topology.base import Topology, as_topology

__all__ = [
    "ArbitrationPolicy",
    "PacketizationPolicy",
    "RouterTiming",
    "MessageConfig",
    "NoCConfig",
    "regular_mesh_config",
    "waw_wap_config",
]


class ArbitrationPolicy(Enum):
    """Switch-allocation arbitration policy of the routers."""

    ROUND_ROBIN = "round-robin"
    WEIGHTED_ROUND_ROBIN = "waw"


class PacketizationPolicy(Enum):
    """How the NIC turns a request/reply message into network packets."""

    #: One packet carrying the whole message payload (regular wNoC).
    SINGLE_PACKET = "single-packet"
    #: WaP: the payload is sliced into minimum-size packets, replicating the
    #: header/control information in every slice.
    MINIMUM_SIZE_PACKETS = "wap"


@dataclass(frozen=True)
class RouterTiming:
    """Per-hop timing constants of the router pipeline.

    ``routing_latency`` covers route computation, switch allocation and
    switch traversal of a header flit in the absence of contention (the
    canonical 3-stage router of the paper's baseline); ``link_latency`` is
    the wire/retiming delay between adjacent routers; ``flit_cycle`` is the
    number of cycles needed to forward one flit once the output port is
    owned (1 for a full-width link).
    """

    routing_latency: int = 3
    link_latency: int = 1
    flit_cycle: int = 1

    def __post_init__(self) -> None:
        if self.routing_latency < 1:
            raise ValueError("routing_latency must be >= 1")
        if self.link_latency < 0:
            raise ValueError("link_latency must be >= 0")
        if self.flit_cycle < 1:
            raise ValueError("flit_cycle must be >= 1")

    @property
    def hop_latency(self) -> int:
        """Zero-load latency contribution of one hop (header flit)."""
        return self.routing_latency + self.link_latency


@dataclass(frozen=True)
class MessageConfig:
    """Flit counts of the messages exchanged by the evaluated manycore.

    The defaults reproduce the system of Section IV: 64-byte cache lines and
    16 bits of control data over 132-bit links give 1-flit load/write-miss
    requests and 4-flit memory replies; evicted lines are 4-flit writes with
    a 1-flit acknowledgement.  Under WaP every flit of a multi-flit message
    carries its own control information, which costs one extra flit on the
    4-flit messages (25 % overhead), i.e. 5 single-flit packets.
    """

    #: Flits of a load / write-miss request travelling core -> memory.
    request_flits: int = 1
    #: Flits of a memory reply (a cache line) travelling memory -> core.
    reply_flits: int = 4
    #: Flits of an eviction (write-back) message travelling core -> memory.
    eviction_flits: int = 4
    #: Flits of the eviction acknowledgement travelling memory -> core.
    eviction_ack_flits: int = 1
    #: Per-packet header/control overhead, in flits, added to every packet
    #: created by WaP beyond the first (the first slice reuses the original
    #: header).  The paper's 512+5*16 bit example corresponds to one extra
    #: flit per 4-flit payload, i.e. ``wap_header_flits = 0.25`` per payload
    #: flit aggregated; we model it exactly by packet accounting instead, so
    #: this field stores the *flit* size of a control header.
    control_bits: int = 16
    #: Link width in bits (132 in the paper); used to convert payload bits to
    #: flits when building custom messages.
    link_width_bits: int = 132

    def __post_init__(self) -> None:
        for name in ("request_flits", "reply_flits", "eviction_flits", "eviction_ack_flits"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.link_width_bits <= self.control_bits:
            raise ValueError("link_width_bits must exceed control_bits")

    def flits_for_payload_bits(self, payload_bits: int) -> int:
        """Number of flits of a single-packet message carrying ``payload_bits``.

        The first flit carries ``control_bits`` of header alongside payload,
        mirroring the paper's 512+16-bit cache-line reply that fits 4 flits
        of a 132-bit link.
        """
        if payload_bits < 0:
            raise ValueError("payload_bits must be >= 0")
        return max(1, math.ceil((payload_bits + self.control_bits) / self.link_width_bits))

    def wap_packets_for_payload_bits(self, payload_bits: int) -> int:
        """Number of 1-flit WaP packets for a ``payload_bits`` message.

        Every slice replicates the control information, so the usable payload
        per flit shrinks by ``control_bits``; the paper's 512-bit line over
        132-bit flits with 16-bit control becomes 5 packets (25 % overhead).
        """
        if payload_bits < 0:
            raise ValueError("payload_bits must be >= 0")
        usable = self.link_width_bits - self.control_bits
        return max(1, math.ceil(payload_bits / usable))


@dataclass(frozen=True)
class NoCConfig:
    """Complete description of a wormhole NoC design point.

    ``mesh`` holds the network structure: either a plain
    :class:`~repro.geometry.Mesh` (the seed representation, treated as a 2D
    mesh with XY routing) or any :class:`~repro.topology.Topology`
    (torus, ring, concentrated mesh, YX routing, ...).  Use the
    :attr:`topology` property to obtain the normalised topology object.
    """

    mesh: Mesh
    arbitration: ArbitrationPolicy = ArbitrationPolicy.ROUND_ROBIN
    packetization: PacketizationPolicy = PacketizationPolicy.SINGLE_PACKET
    #: Maximum packet length allowed in the network, in flits (the paper's L).
    max_packet_flits: int = 4
    #: Minimum packet length, in flits (the paper's m); WaP slices every
    #: request into packets of exactly this size.
    min_packet_flits: int = 1
    #: Input buffer depth of every router port, in flits.
    buffer_depth: int = 4
    timing: RouterTiming = field(default_factory=RouterTiming)
    messages: MessageConfig = field(default_factory=MessageConfig)
    #: Location of the memory controller of the evaluated manycore.
    memory_controller: Coord = field(default_factory=lambda: Coord(0, 0))
    #: Simulation backend driving this design point's simulations:
    #: ``"cycle"`` (reference, step every component every cycle) or
    #: ``"event"`` (skip provably idle cycles; bit-identical results).  The
    #: name is resolved against :func:`repro.sim.make_backend` when a
    #: :class:`~repro.noc.network.Network` is built; it does not affect any
    #: analytical model.
    sim_backend: str = "cycle"
    #: Optional per-link fault model (:mod:`repro.faults`).  ``None`` -- and
    #: any *null* model whose fault rates are all zero -- simulates perfectly
    #: reliable links, bit-identically to the seed model; a faulty model
    #: additionally arms the NIC-level HARQ retransmission protocol
    #: configured by the model's ``reliability``.  Like ``sim_backend`` it
    #: affects only simulation, never the analytical WCTT models.
    fault_model: Optional[FaultModel] = None

    def __post_init__(self) -> None:
        if self.max_packet_flits < 1:
            raise ValueError("max_packet_flits must be >= 1")
        if self.min_packet_flits < 1:
            raise ValueError("min_packet_flits must be >= 1")
        if self.min_packet_flits > self.max_packet_flits:
            raise ValueError("min_packet_flits cannot exceed max_packet_flits")
        if self.buffer_depth < 1:
            raise ValueError("buffer_depth must be >= 1")
        if not isinstance(self.sim_backend, str) or not self.sim_backend:
            raise ValueError("sim_backend must be a non-empty backend name")
        if self.fault_model is not None and not isinstance(self.fault_model, FaultModel):
            raise ValueError(
                "fault_model must be a repro.faults.FaultModel (use "
                "make_fault_model / with_fault_model to build one) or None"
            )
        self.mesh.require(self.memory_controller)

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------
    @property
    def topology(self) -> Topology:
        """The network structure as a :class:`~repro.topology.Topology`.

        A plain :class:`~repro.geometry.Mesh` is normalised to the
        behaviourally identical :class:`~repro.topology.Mesh2D` with XY
        routing.
        """
        return as_topology(self.mesh)

    @property
    def is_waw(self) -> bool:
        return self.arbitration is ArbitrationPolicy.WEIGHTED_ROUND_ROBIN

    @property
    def is_wap(self) -> bool:
        return self.packetization is PacketizationPolicy.MINIMUM_SIZE_PACKETS

    @property
    def is_waw_wap(self) -> bool:
        return self.is_waw and self.is_wap

    @property
    def arbitration_slot_flits(self) -> int:
        """Worst-case arbitration slot duration (in flits) seen by contenders.

        This is the quantity WaP controls: with single-packet packetization a
        contender may hold an output port for a maximum-size packet; with WaP
        every packet has the minimum size.
        """
        return self.min_packet_flits if self.is_wap else self.max_packet_flits

    # ------------------------------------------------------------------
    # Variants
    # ------------------------------------------------------------------
    def with_mesh(self, mesh: Mesh) -> "NoCConfig":
        """Same design point on a different mesh size."""
        return replace(self, mesh=mesh)

    def with_max_packet_flits(self, flits: int) -> "NoCConfig":
        """Same design point with a different maximum packet length."""
        return replace(self, max_packet_flits=flits)

    def with_backend(self, backend: str) -> "NoCConfig":
        """Same design point simulated by a different backend."""
        return replace(self, sim_backend=backend)

    def with_fault_model(self, model: ModelSpecLike = None, **params) -> "NoCConfig":
        """Same design point with a different link fault model.

        Accepts whatever :func:`repro.faults.make_fault_model` accepts: a
        ready :class:`~repro.faults.FaultModel`, a kind name with keyword
        parameters (``config.with_fault_model("independent",
        loss_rate=0.01)``), a mapping, or ``None`` to remove the model.
        """
        return replace(self, fault_model=make_fault_model(model, **params))

    def describe(self) -> str:
        """One-line human readable description (used by reports)."""
        name = "WaW+WaP" if self.is_waw_wap else (
            "WaW" if self.is_waw else ("WaP" if self.is_wap else "regular")
        )
        return (
            f"{name} wNoC on a {self.topology.describe_short()}, "
            f"L={self.max_packet_flits} flits, m={self.min_packet_flits} flits, "
            f"buffers={self.buffer_depth} flits"
        )


def regular_mesh_config(
    width: int,
    height: Optional[int] = None,
    *,
    max_packet_flits: int = 4,
    buffer_depth: int = 4,
    memory_controller: Optional[Coord] = None,
    timing: Optional[RouterTiming] = None,
) -> NoCConfig:
    """Baseline design point: plain round-robin, single-packet messages."""
    mesh = Mesh(width, height if height is not None else width)
    return NoCConfig(
        mesh=mesh,
        arbitration=ArbitrationPolicy.ROUND_ROBIN,
        packetization=PacketizationPolicy.SINGLE_PACKET,
        max_packet_flits=max_packet_flits,
        buffer_depth=buffer_depth,
        timing=timing if timing is not None else RouterTiming(),
        memory_controller=memory_controller if memory_controller is not None else Coord(0, 0),
    )


def waw_wap_config(
    width: int,
    height: Optional[int] = None,
    *,
    max_packet_flits: int = 4,
    buffer_depth: int = 4,
    memory_controller: Optional[Coord] = None,
    timing: Optional[RouterTiming] = None,
) -> NoCConfig:
    """The paper's proposal: WaP packetization plus WaW weighted arbitration."""
    mesh = Mesh(width, height if height is not None else width)
    return NoCConfig(
        mesh=mesh,
        arbitration=ArbitrationPolicy.WEIGHTED_ROUND_ROBIN,
        packetization=PacketizationPolicy.MINIMUM_SIZE_PACKETS,
        max_packet_flits=max_packet_flits,
        buffer_depth=buffer_depth,
        timing=timing if timing is not None else RouterTiming(),
        memory_controller=memory_controller if memory_controller is not None else Coord(0, 0),
    )
