"""Unified front-end over the two WCTT analyses.

Most callers (the UBD tables, the experiments, the validation harness) do not
care which analytical model applies -- they hold a :class:`NoCConfig` and
want "the WCTT bound of this design point".  This module provides:

* :func:`make_wctt_analysis` -- factory dispatching on the configuration;
* :class:`WCTTSummary` / :func:`wctt_summary` -- the max/mean/min statistics
  over a flow set that the paper's Table II reports;
* :func:`wctt_map` -- the per-source WCTT map towards a single destination
  (used by the per-core UBD tables and the EEMBC experiment).
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Dict, Optional, Protocol, Union

from ..geometry import Coord
from .config import NoCConfig
from .flows import FlowSet
from .weights import WeightTable
from .wctt_regular import RegularMeshWCTTAnalysis
from .wctt_weighted import WaWWaPWCTTAnalysis

__all__ = [
    "WCTTAnalysis",
    "make_wctt_analysis",
    "WCTTSummary",
    "wctt_summary",
    "wctt_map",
]


class WCTTAnalysis(Protocol):
    """Common interface of the two analytical models."""

    config: NoCConfig

    def wctt_packet(
        self, source: Coord, destination: Coord, *, packet_flits: Optional[int] = None
    ) -> int: ...

    def wctt_message(self, source: Coord, destination: Coord, *, payload_flits: int) -> int: ...

    def zero_load_latency(self, source: Coord, destination: Coord, packet_flits: int = 1) -> int: ...


AnalysisType = Union[RegularMeshWCTTAnalysis, WaWWaPWCTTAnalysis]


def make_wctt_analysis(
    config: NoCConfig,
    *,
    weight_table: Optional[WeightTable] = None,
    contender_packet_flits: Optional[int] = None,
) -> AnalysisType:
    """Instantiate the WCTT analysis matching ``config``.

    A WaW+WaP configuration gets the bandwidth-share bound of
    :class:`WaWWaPWCTTAnalysis`; anything else (including WaW-only or
    WaP-only hybrids, analysed conservatively) gets the regular-mesh bound,
    with the contender packet size reduced to the minimum packet size when
    WaP is active -- that is exactly the benefit WaP provides on its own.
    """
    if config.is_waw_wap:
        return WaWWaPWCTTAnalysis(config, weight_table)
    if contender_packet_flits is None and config.is_wap:
        contender_packet_flits = config.min_packet_flits
    return RegularMeshWCTTAnalysis(config, contender_packet_flits=contender_packet_flits)


@dataclass(frozen=True)
class WCTTSummary:
    """Max/mean/min WCTT over a set of flows (one row of the paper's Table II)."""

    design: str
    mesh: str
    maximum: int
    average: float
    minimum: int
    flow_count: int

    def as_dict(self) -> Dict[str, Union[str, int, float]]:
        return {
            "design": self.design,
            "mesh": self.mesh,
            "max": self.maximum,
            "mean": round(self.average, 2),
            "min": self.minimum,
            "flows": self.flow_count,
        }


def wctt_summary(
    analysis: AnalysisType,
    flow_set: FlowSet,
    *,
    packet_flits: int = 1,
    design_label: Optional[str] = None,
) -> WCTTSummary:
    """Compute max/mean/min packet WCTT over every flow of ``flow_set``."""
    if len(flow_set) == 0:
        raise ValueError("flow set is empty")
    values = [
        analysis.wctt_packet(flow.source, flow.destination, packet_flits=packet_flits)
        for flow in flow_set
    ]
    config = analysis.config
    label = design_label if design_label is not None else (
        "WaW+WaP" if config.is_waw_wap else "regular"
    )
    return WCTTSummary(
        design=label,
        # ``short_label`` is "WxH" for the plain mesh (seed-identical rows)
        # and carries the topology kind otherwise (e.g. "4x4 torus").
        mesh=config.topology.short_label(),
        maximum=max(values),
        average=mean(values),
        minimum=min(values),
        flow_count=len(values),
    )


def wctt_map(
    analysis: AnalysisType,
    destination: Coord,
    *,
    packet_flits: int = 1,
) -> Dict[Coord, int]:
    """Per-source packet WCTT towards a single destination.

    Returns a mapping from every node (other than ``destination``) to its
    WCTT bound; the destination itself is omitted.  This is the quantity the
    per-core UBD tables of the evaluated manycore are built from.
    """
    mesh = analysis.config.mesh
    mesh.require(destination)
    return {
        src: analysis.wctt_packet(src, destination, packet_flits=packet_flits)
        for src in mesh.nodes()
        if src != destination
    }
