"""Packetization policies: regular single-packet and WaP slicing.

The NIC (network interface controller) turns a processor/memory *request*
into one or more network *packets*.  The paper contrasts:

* **regular packetization** -- the whole request becomes a single packet of
  up to the maximum allowed size ``L``; contenders must therefore be assumed
  to hold an output port for ``L`` flits when deriving time-composable
  bounds; and
* **WaP (WCTT-aware Packetization)** -- the request payload is sliced into
  minimum-size packets (``m`` flits, one flit in the evaluated system) and
  the header/control information is replicated in every slice.  The price is
  the replicated control data: a 4-flit cache-line reply becomes 5 one-flit
  packets (the paper's 25 % overhead example).

These classes are pure policy objects: they compute packet descriptors from
message descriptors and are shared by the analytical models (which only need
the flit counts) and by the cycle-accurate NIC model (which instantiates the
actual packets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .config import MessageConfig, NoCConfig, PacketizationPolicy

__all__ = [
    "MessageDescriptor",
    "PacketDescriptor",
    "Packetizer",
    "RegularPacketizer",
    "WaPPacketizer",
    "make_packetizer",
]


@dataclass(frozen=True)
class MessageDescriptor:
    """A request or reply as seen by the NIC, before packetization.

    ``payload_flits`` counts the flits needed to carry the payload with a
    single header (the regular-packetization size); ``kind`` is a free-form
    tag (``"load"``, ``"reply"``, ``"eviction"``...) used by statistics.
    """

    payload_flits: int
    kind: str = "data"

    def __post_init__(self) -> None:
        if self.payload_flits < 1:
            raise ValueError("payload_flits must be >= 1")


@dataclass(frozen=True)
class PacketDescriptor:
    """One network packet produced by a packetizer.

    ``flits`` is the total packet length including header/control overhead;
    ``index``/``total`` locate the packet within its parent message so the
    destination NIC can reassemble it.
    """

    flits: int
    index: int
    total: int
    kind: str = "data"

    def __post_init__(self) -> None:
        if self.flits < 1:
            raise ValueError("packets carry at least one flit")
        if not 0 <= self.index < self.total:
            raise ValueError("packet index out of range")


class Packetizer:
    """Interface of a packetization policy."""

    def __init__(self, config: NoCConfig):
        self.config = config

    def packetize(self, message: MessageDescriptor) -> List[PacketDescriptor]:
        """Split ``message`` into packets (never empty)."""
        raise NotImplementedError

    def total_flits(self, message: MessageDescriptor) -> int:
        """Total flits injected for ``message`` (including any WaP overhead)."""
        return sum(p.flits for p in self.packetize(message))

    def packet_count(self, message: MessageDescriptor) -> int:
        return len(self.packetize(message))

    def overhead_flits(self, message: MessageDescriptor) -> int:
        """Extra flits w.r.t. the regular single-packet encoding."""
        return self.total_flits(message) - message.payload_flits


class RegularPacketizer(Packetizer):
    """Baseline: one packet per message, capped by the maximum packet size.

    Messages larger than the maximum allowed packet size ``L`` are split into
    ceil(payload / L) packets of at most ``L`` flits each -- the behaviour of
    a conventional NIC once the network imposes a maximum packet length.  In
    the evaluated system all messages fit in one packet (L >= 4 flits).
    """

    def packetize(self, message: MessageDescriptor) -> List[PacketDescriptor]:
        max_flits = self.config.max_packet_flits
        remaining = message.payload_flits
        sizes: List[int] = []
        while remaining > 0:
            take = min(remaining, max_flits)
            sizes.append(take)
            remaining -= take
        total = len(sizes)
        return [
            PacketDescriptor(flits=size, index=i, total=total, kind=message.kind)
            for i, size in enumerate(sizes)
        ]


class WaPPacketizer(Packetizer):
    """WaP: slice the payload into minimum-size packets, replicating headers.

    Every slice carries ``min_packet_flits`` flits.  Header/control
    information is replicated in each slice, which consumes part of the flit
    capacity: the number of slices for a message of ``p`` payload flits is
    computed through the bit-level accounting of
    :meth:`repro.core.config.MessageConfig.wap_packets_for_payload_bits`, so a
    4-flit (512-bit) cache line over 132-bit flits with 16-bit control yields
    5 packets, the paper's 25 % overhead.
    """

    def packetize(self, message: MessageDescriptor) -> List[PacketDescriptor]:
        messages: MessageConfig = self.config.messages
        m = self.config.min_packet_flits
        if message.payload_flits == 1:
            # Single-flit requests already have the minimum size; WaP does
            # not add overhead to them (the origin of the "negligible average
            # degradation" result: only multi-flit messages pay the price).
            return [PacketDescriptor(flits=m, index=0, total=1, kind=message.kind)]
        payload_bits = message.payload_flits * messages.link_width_bits - messages.control_bits
        slices = messages.wap_packets_for_payload_bits(payload_bits)
        # Each slice is exactly one minimum-size packet.
        return [
            PacketDescriptor(flits=m, index=i, total=slices, kind=message.kind)
            for i in range(slices)
        ]


def make_packetizer(config: NoCConfig) -> Packetizer:
    """Instantiate the packetizer selected by ``config.packetization``."""
    if config.packetization is PacketizationPolicy.MINIMUM_SIZE_PACKETS:
        return WaPPacketizer(config)
    return RegularPacketizer(config)
