"""Router area model and the WaW/WaP overhead estimate (< 5 % claim).

The paper reports, from the NoC area decomposition of Roca's PhD thesis [24],
that the area increase incurred by WaW + WaP is below 5 % of the NoC area.
We reproduce the claim with a parametric gate-count model of a canonical
5-port input-buffered wormhole router:

* input buffers      -- ``ports x buffer_depth x flit_width`` bits of storage,
* crossbar           -- ``ports^2 x flit_width`` multiplexer bit-slices,
* routing logic      -- a small comparator block per input port,
* switch allocator   -- one round-robin arbiter per output port,
* link drivers       -- ``flit_width`` drivers per output port.

The WaW addition is, per output-port arbiter, one credit counter (of
``ceil(log2(max_weight + 1))`` bits), one comparator tree over the counters
and the refill logic; the WaP addition is a NIC-side register holding the
configured slice size plus the slicing finite-state machine.  Both are tiny
compared to buffers and crossbar, which is why the relative overhead stays in
the low single digits for realistic buffer depths and link widths.

All areas are expressed in NAND2-equivalent gates using the usual rough
conversion factors (6 gates per flip-flop bit, 4 per SRAM-like buffer bit,
3 per 2:1 mux bit-slice); absolute numbers are indicative, the experiment
only uses the *relative* overhead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from .config import NoCConfig

__all__ = ["AreaParameters", "AreaBreakdown", "router_area", "noc_area", "waw_wap_overhead"]

#: Gate-equivalents per storage / logic primitive.
GATES_PER_FLIPFLOP_BIT = 6.0
GATES_PER_BUFFER_BIT = 4.0
GATES_PER_MUX_BIT = 3.0
GATES_PER_COMPARATOR_BIT = 5.0
GATES_PER_ADDER_BIT = 7.0


@dataclass(frozen=True)
class AreaParameters:
    """Physical parameters of the router used by the area model."""

    flit_width_bits: int = 132
    ports: int = 5
    buffer_depth_flits: int = 4
    #: Largest WaW weight a counter must hold (bounded by the number of nodes).
    max_weight: int = 64

    def __post_init__(self) -> None:
        if self.flit_width_bits < 1 or self.ports < 2 or self.buffer_depth_flits < 1:
            raise ValueError("invalid area parameters")
        if self.max_weight < 1:
            raise ValueError("max_weight must be >= 1")

    @classmethod
    def from_config(cls, config: NoCConfig) -> "AreaParameters":
        return cls(
            flit_width_bits=config.messages.link_width_bits,
            ports=5,
            buffer_depth_flits=config.buffer_depth,
            max_weight=config.mesh.num_nodes,
        )


@dataclass(frozen=True)
class AreaBreakdown:
    """Gate-equivalent area of one network node (router + NIC), by component."""

    input_buffers: float
    crossbar: float
    routing_logic: float
    allocator: float
    link_drivers: float
    nic: float
    waw_arbiter_extra: float = 0.0
    wap_nic_extra: float = 0.0

    @property
    def baseline_total(self) -> float:
        return (
            self.input_buffers
            + self.crossbar
            + self.routing_logic
            + self.allocator
            + self.link_drivers
            + self.nic
        )

    @property
    def total(self) -> float:
        return self.baseline_total + self.waw_arbiter_extra + self.wap_nic_extra

    def as_dict(self) -> Dict[str, float]:
        return {
            "input_buffers": self.input_buffers,
            "crossbar": self.crossbar,
            "routing_logic": self.routing_logic,
            "allocator": self.allocator,
            "link_drivers": self.link_drivers,
            "nic": self.nic,
            "waw_arbiter_extra": self.waw_arbiter_extra,
            "wap_nic_extra": self.wap_nic_extra,
            "total": self.total,
        }


def router_area(params: AreaParameters, *, with_waw: bool = False, with_wap: bool = False) -> AreaBreakdown:
    """Gate-equivalent area of one network node: router plus its NIC.

    The decomposition follows the usual NoC area split (Roca [24]): input
    buffers and the crossbar dominate, followed by the NIC (packetization,
    reassembly and message staging buffers); allocation and routing logic are
    small.  The WaW addition is per-output-port credit counters with a
    comparison tree (the weights themselves are hardwired constants computed
    at design time from the router coordinates, so they cost no storage); the
    WaP addition is a slice-size register plus replication muxing in the NIC.
    """
    p, w, d = params.ports, params.flit_width_bits, params.buffer_depth_flits

    # Router input buffers are flip-flop based in this class of design.
    input_buffers = p * d * w * GATES_PER_FLIPFLOP_BIT
    crossbar = p * p * w * GATES_PER_MUX_BIT
    # Route computation: destination comparison against the local coordinates.
    routing_logic = p * 2 * 8 * GATES_PER_COMPARATOR_BIT
    # One round-robin arbiter per output port: priority register + grant logic.
    allocator = p * (p * GATES_PER_FLIPFLOP_BIT + p * p * GATES_PER_MUX_BIT)
    link_drivers = p * w * 1.0
    # NIC: staging for one outgoing and one incoming cache-line message (two
    # 512-bit buffers), packetization/reassembly state machines and the
    # processor-side interface.
    nic = (
        2 * 512 * GATES_PER_FLIPFLOP_BIT
        + 2 * w * GATES_PER_MUX_BIT
        + 600  # control FSMs and request tracking
    )

    waw_extra = 0.0
    if with_waw:
        counter_bits = max(1, math.ceil(math.log2(params.max_weight + 1)))
        # Only the inputs that can legally request an output under XY routing
        # need a counter; averaged over the five outputs this is ~3 inputs.
        contenders = 3
        per_output = (
            # one credit counter per contending input port
            contenders * counter_bits * GATES_PER_FLIPFLOP_BIT
            # comparator tree selecting the largest counter
            + (contenders - 1) * counter_bits * GATES_PER_COMPARATOR_BIT
            # shared increment/decrement logic (one adder, muxed across counters)
            + counter_bits * GATES_PER_ADDER_BIT
        )
        waw_extra = p * per_output

    wap_extra = 0.0
    if with_wap:
        # NIC-side additions: a slice-size configuration register, a payload
        # offset counter and the header-replication multiplexing.  The NIC
        # already contains packetization logic; WaP only parameterises it.
        wap_extra = (
            8 * GATES_PER_FLIPFLOP_BIT  # slice size register
            + 16 * GATES_PER_FLIPFLOP_BIT  # payload offset counter
            + 16 * GATES_PER_MUX_BIT  # header replication mux (control bits only)
        )

    return AreaBreakdown(
        input_buffers=input_buffers,
        crossbar=crossbar,
        routing_logic=routing_logic,
        allocator=allocator,
        link_drivers=link_drivers,
        nic=nic,
        waw_arbiter_extra=waw_extra,
        wap_nic_extra=wap_extra,
    )


def noc_area(config: NoCConfig, *, with_waw: bool = False, with_wap: bool = False) -> float:
    """Total gate-equivalent NoC area (all routers of the mesh)."""
    params = AreaParameters.from_config(config)
    per_router = router_area(params, with_waw=with_waw, with_wap=with_wap).total
    return per_router * config.mesh.num_nodes


def waw_wap_overhead(config: NoCConfig) -> float:
    """Relative area overhead of WaW + WaP over the baseline NoC (fraction).

    The paper reports this figure to be below 5 %.
    """
    baseline = noc_area(config, with_waw=False, with_wap=False)
    enhanced = noc_area(config, with_waw=True, with_wap=True)
    return (enhanced - baseline) / baseline
