"""Communication flows and per-port flow accounting.

A *flow* is a (source, destination) pair of nodes that exchange packets.  The
WaW arbitration weights of the paper are derived from how many flows (or,
more precisely, how many distinct *source nodes*) can cross each router port
under the topology's deterministic routing; this module provides:

* :class:`Flow` -- a single source/destination pair with its deterministic
  route through a given topology.
* :class:`FlowSet` -- a collection of flows with constructors for the traffic
  patterns used in the paper (all-to-all for the generic weight equations,
  all-to-one towards the memory controller for the evaluated manycore) and
  queries for per-port flow and source counts.  The ``mesh`` argument may be
  a plain :class:`~repro.geometry.Mesh` (XY mesh, the seed behaviour) or any
  :class:`~repro.topology.Topology`.

The distinction between *flow* counts and *source* counts matters: the
paper's closed-form port weights (Section III) count the number of upstream
source nodes whose traffic can cross a port, not the number of individual
(source, destination) flows.  :meth:`FlowSet.port_source_count` reproduces
the former, :meth:`FlowSet.port_flow_count` the latter; Table I of the paper
is reproduced with source counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..geometry import Coord, Mesh, Port
from ..topology.base import Hop, as_topology

__all__ = ["Flow", "FlowSet", "PortKey"]

#: Key identifying one side of a router port: (router, port, "in"|"out").
PortKey = Tuple[Coord, Port, str]


@dataclass(frozen=True)
class Flow:
    """A unidirectional communication flow between two nodes."""

    source: Coord
    destination: Coord

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise ValueError(f"flow source and destination coincide: {self.source}")

    def route(self, mesh: Mesh) -> List[Hop]:
        """Deterministic route of the flow through ``mesh`` (any topology)."""
        return as_topology(mesh).route(self.source, self.destination)

    def hop_count(self, mesh: Optional[Mesh] = None) -> int:
        """Number of routers crossed.

        Without a topology this is the Manhattan distance + 1 (exact for a
        mesh, an upper bound for wrapped topologies); pass the topology to
        get its routed distance instead.
        """
        if mesh is not None:
            return as_topology(mesh).distance(self.source, self.destination) + 1
        return self.source.manhattan(self.destination) + 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Flow({self.source}->{self.destination})"


class FlowSet:
    """A set of flows over a mesh, with per-port occupancy accounting.

    The constructor accepts any iterable of :class:`Flow`; the class methods
    build the canonical traffic patterns of the paper.
    """

    def __init__(self, mesh: Mesh, flows: Iterable[Flow]):
        self.mesh = mesh
        self._flows: List[Flow] = []
        seen: Set[Tuple[Coord, Coord]] = set()
        for flow in flows:
            mesh.require(flow.source)
            mesh.require(flow.destination)
            key = (flow.source, flow.destination)
            if key in seen:
                continue
            seen.add(key)
            self._flows.append(flow)
        self._port_flows: Optional[Dict[PortKey, List[Flow]]] = None

    # ------------------------------------------------------------------
    # Constructors for canonical traffic patterns
    # ------------------------------------------------------------------
    @classmethod
    def all_to_all(cls, mesh: Mesh) -> "FlowSet":
        """Every node sends to every other node (paper Section III weights)."""
        flows = (
            Flow(src, dst)
            for src in mesh.nodes()
            for dst in mesh.nodes()
            if src != dst
        )
        return cls(mesh, flows)

    @classmethod
    def all_to_one(cls, mesh: Mesh, destination: Coord) -> "FlowSet":
        """Every node sends to ``destination`` (cores -> memory controller)."""
        mesh.require(destination)
        return cls(mesh, (Flow(src, destination) for src in mesh.nodes() if src != destination))

    @classmethod
    def one_to_all(cls, mesh: Mesh, source: Coord) -> "FlowSet":
        """``source`` sends to every other node (memory controller -> cores)."""
        mesh.require(source)
        return cls(mesh, (Flow(source, dst) for dst in mesh.nodes() if dst != source))

    @classmethod
    def from_pairs(cls, mesh: Mesh, pairs: Iterable[Tuple[Coord, Coord]]) -> "FlowSet":
        """Build a flow set from explicit (source, destination) pairs."""
        return cls(mesh, (Flow(src, dst) for src, dst in pairs))

    # ------------------------------------------------------------------
    # Basic container behaviour
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self) -> Iterator[Flow]:
        return iter(self._flows)

    def __contains__(self, flow: Flow) -> bool:
        return flow in self._flows

    @property
    def flows(self) -> Tuple[Flow, ...]:
        return tuple(self._flows)

    # ------------------------------------------------------------------
    # Per-port accounting
    # ------------------------------------------------------------------
    def _index(self) -> Dict[PortKey, List[Flow]]:
        """Lazily build the port -> flows index."""
        if self._port_flows is None:
            index: Dict[PortKey, List[Flow]] = {}
            for flow in self._flows:
                for hop in flow.route(self.mesh):
                    index.setdefault((hop.router, hop.in_port, "in"), []).append(flow)
                    index.setdefault((hop.router, hop.out_port, "out"), []).append(flow)
            self._port_flows = index
        return self._port_flows

    def flows_through_input(self, router: Coord, port: Port) -> Tuple[Flow, ...]:
        """Flows whose route enters ``router`` through input ``port``."""
        return tuple(self._index().get((router, port, "in"), ()))

    def flows_through_output(self, router: Coord, port: Port) -> Tuple[Flow, ...]:
        """Flows whose route leaves ``router`` through output ``port``."""
        return tuple(self._index().get((router, port, "out"), ()))

    def port_flow_count(self, router: Coord, port: Port, direction: str) -> int:
        """Number of flows crossing a port (``direction`` is ``"in"``/``"out"``)."""
        if direction not in ("in", "out"):
            raise ValueError(f"direction must be 'in' or 'out', got {direction!r}")
        return len(self._index().get((router, port, direction), ()))

    def port_source_count(self, router: Coord, port: Port, direction: str) -> int:
        """Number of distinct *source nodes* whose traffic crosses a port.

        This is the quantity the paper's closed-form weight equations count:
        e.g. at router ``(x, y)`` the ``X+`` input port can carry traffic of
        the ``x`` nodes that precede the router in its row, regardless of how
        many destinations each of those nodes talks to.
        """
        if direction not in ("in", "out"):
            raise ValueError(f"direction must be 'in' or 'out', got {direction!r}")
        flows = self._index().get((router, port, direction), ())
        return len({flow.source for flow in flows})

    def flows_sharing_link(self, router: Coord, out_port: Port) -> Tuple[Flow, ...]:
        """Alias of :meth:`flows_through_output`, kept for readability."""
        return self.flows_through_output(router, out_port)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def max_link_load(self) -> int:
        """Largest number of flows sharing any single output port."""
        best = 0
        for (router, port, direction), flows in self._index().items():
            if direction == "out":
                best = max(best, len(flows))
        return best

    def destinations(self) -> Set[Coord]:
        return {flow.destination for flow in self._flows}

    def sources(self) -> Set[Coord]:
        return {flow.source for flow in self._flows}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FlowSet({len(self._flows)} flows on {self.mesh})"
