"""Output-port arbiters: round-robin and the WaW weighted round-robin.

These classes are the behavioural model of the arbitration hardware and are
used directly by the cycle-accurate router model (:mod:`repro.noc.router`).
They are deliberately free of any simulator dependency so that they can also
be unit- and property-tested in isolation (fairness, work conservation,
bandwidth shares).

The WaW arbiter implements the scheme described verbatim in the paper
(Section III, "WaW implementation"):

* each input port has a *flit count* initialised to its weight (the number of
  flits it may transmit to the output port in one round);
* when several input ports contend, the one with the **largest flit count**
  wins and its count is decremented by one;
* ties are broken with a conventional round-robin policy;
* when an input port is the **unique** candidate its flit count is unaltered
  (work conservation does not consume guaranteed bandwidth);
* when **no** input port demands the output port, every flit count is
  incremented, saturating at the port weight.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..geometry import Port

__all__ = ["Arbiter", "RoundRobinArbiter", "WeightedRoundRobinArbiter"]


class Arbiter:
    """Interface of a single output-port arbiter."""

    def __init__(self, candidates: Sequence[Port]):
        if not candidates:
            raise ValueError("an arbiter needs at least one candidate input port")
        if len(set(candidates)) != len(candidates):
            raise ValueError("duplicate candidate input ports")
        self.candidates: List[Port] = list(candidates)

    def grant(self, requesters: Iterable[Port]) -> Optional[Port]:
        """Select one of ``requesters`` (must be candidates); ``None`` if empty.

        Calling ``grant`` advances the arbiter state exactly as one
        arbitration cycle of the hardware would.
        """
        raise NotImplementedError

    def idle_cycle(self) -> None:
        """Notify the arbiter that the output port had no requester this cycle."""
        # Plain round-robin keeps no idle-cycle state; WaW refills credits.
        return None

    def idle_cycles(self, cycles: int) -> None:
        """Apply ``cycles`` consecutive requester-less cycles in one call.

        Must leave the arbiter in exactly the state that ``cycles`` calls to
        :meth:`idle_cycle` would; the event-driven simulation backend relies
        on this when it skips over stretches of cycles in which no port can
        move a flit.  Subclasses whose ``idle_cycle`` keeps state must
        override this with a closed-form equivalent.
        """
        if cycles < 0:
            raise ValueError("cycles must be >= 0")
        # The base arbiter (round-robin) keeps no idle-cycle state.
        return None

    def _check(self, requesters: Iterable[Port]) -> List[Port]:
        reqs = list(requesters)
        unknown = [r for r in reqs if r not in self.candidates]
        if unknown:
            raise ValueError(f"unknown requester port(s): {unknown}")
        return reqs


class RoundRobinArbiter(Arbiter):
    """Classic rotating-priority round-robin arbiter.

    The port granted most recently gets the lowest priority in the next
    arbitration, which guarantees that between two consecutive grants to the
    same port every other requesting port is served at most once -- the
    property the regular-mesh WCTT analysis relies on.
    """

    def __init__(self, candidates: Sequence[Port]):
        super().__init__(candidates)
        # Index into ``self.candidates`` of the port with the highest priority.
        self._next_priority = 0

    def grant(self, requesters: Iterable[Port]) -> Optional[Port]:
        reqs = set(self._check(requesters))
        if not reqs:
            return None
        n = len(self.candidates)
        for offset in range(n):
            idx = (self._next_priority + offset) % n
            port = self.candidates[idx]
            if port in reqs:
                # The winner becomes the lowest-priority port next time.
                self._next_priority = (idx + 1) % n
                return port
        return None  # pragma: no cover - unreachable, reqs is a subset of candidates

    def priority_order(self) -> List[Port]:
        """Current priority order, highest first (exposed for tests)."""
        n = len(self.candidates)
        return [self.candidates[(self._next_priority + i) % n] for i in range(n)]


class WeightedRoundRobinArbiter(Arbiter):
    """The WaW arbiter: per-input flit counters with largest-counter-first.

    ``weights`` maps each candidate input port to the number of flits it may
    transmit in one arbitration round (the integer WaW weight, i.e. the
    number of flows reaching the output through that input).  A port with
    weight zero can still be granted when it is the only requester or when
    every contender has exhausted its credits -- the arbiter is work
    conserving -- but it never takes bandwidth away from weighted ports under
    contention.
    """

    def __init__(self, candidates: Sequence[Port], weights: Mapping[Port, int]):
        super().__init__(candidates)
        missing = [p for p in candidates if p not in weights]
        if missing:
            raise ValueError(f"missing weights for ports: {missing}")
        negative = {p: w for p, w in weights.items() if w < 0}
        if negative:
            raise ValueError(f"weights must be non-negative: {negative}")
        self.weights: Dict[Port, int] = {p: int(weights[p]) for p in candidates}
        #: Current flit credits; start a round with full credits.
        self.credits: Dict[Port, int] = dict(self.weights)
        #: Tie-break round-robin among equal-credit contenders.
        self._tie_breaker = RoundRobinArbiter(candidates)

    # ------------------------------------------------------------------
    def grant(self, requesters: Iterable[Port]) -> Optional[Port]:
        reqs = self._check(requesters)
        if not reqs:
            self.idle_cycle()
            return None
        if len(reqs) == 1:
            # "When an input port is the unique candidate to access an output
            # port, its flit count is unaltered."
            return reqs[0]

        best_credit = max(self.credits[p] for p in reqs)
        tied = [p for p in reqs if self.credits[p] == best_credit]
        if len(tied) == 1:
            winner = tied[0]
        else:
            # "If more than one contender has the largest flit count, a
            # conventional round robin policy is used to arbitrate."
            winner = self._tie_breaker.grant(tied)
        assert winner is not None
        if self.credits[winner] > 0:
            self.credits[winner] -= 1
        else:
            # Every contender is exhausted; serving one anyway keeps the
            # output busy (work conservation) and the subsequent refill on
            # idle cycles restores the guaranteed shares.
            self._refill_all()
            if self.credits[winner] > 0:
                self.credits[winner] -= 1
        return winner

    def idle_cycle(self) -> None:
        """No requester this cycle: refill every counter up to its weight."""
        for port in self.candidates:
            if self.credits[port] < self.weights[port]:
                self.credits[port] += 1

    def idle_cycles(self, cycles: int) -> None:
        """Closed form of ``cycles`` consecutive :meth:`idle_cycle` calls.

        Each idle cycle increments every counter by one, saturating at the
        port weight, so ``cycles`` of them add ``cycles`` with the same cap.
        """
        if cycles < 0:
            raise ValueError("cycles must be >= 0")
        if cycles == 0:
            return
        for port in self.candidates:
            if self.credits[port] < self.weights[port]:
                self.credits[port] = min(self.weights[port], self.credits[port] + cycles)

    # ------------------------------------------------------------------
    def _refill_all(self) -> None:
        for port in self.candidates:
            self.credits[port] = self.weights[port]

    def credit_of(self, port: Port) -> int:
        """Current flit credit of ``port`` (exposed for tests/diagnostics)."""
        return self.credits[port]

    def guaranteed_share(self, port: Port) -> float:
        """Long-run bandwidth fraction guaranteed to ``port`` under saturation."""
        total = sum(self.weights.values())
        if total == 0:
            return 1.0 / len(self.candidates)
        return self.weights[port] / total


def make_arbiter(
    candidates: Sequence[Port],
    *,
    weighted: bool,
    weights: Optional[Mapping[Port, int]] = None,
) -> Arbiter:
    """Factory used by the router model.

    ``weights`` is required when ``weighted`` is true; candidates missing
    from the mapping default to weight zero (ports that no flow can use).
    """
    if not weighted:
        return RoundRobinArbiter(candidates)
    weights = dict(weights or {})
    for port in candidates:
        weights.setdefault(port, 0)
    return WeightedRoundRobinArbiter(candidates, weights)
