"""Time-composable WCTT analysis of the WaW + WaP wormhole mesh.

With the paper's two mechanisms in place the worst-case traversal time of a
packet no longer depends on how long contenders' packets are (WaP bounds
every arbitration slot to the minimum packet size ``m``) nor on how unfairly
the distributed round-robin arbiters split bandwidth (WaW guarantees every
input port of every output port a fixed share of the link).  The bound for a
packet then becomes *local* to each hop:

* at every output port ``o`` crossed by the packet, one full weighted
  arbitration round serves ``O`` flits, where ``O`` is the total weight of
  the port (the number of flows -- or upstream sources -- that can use it);
  the packet's input port owns ``I`` of those slots;
* in the worst case the packet finds the round at the least favourable
  position and every slot of the round is used, so it is forwarded after at
  most ``O`` flit times plus the router pipeline latency;
* subsequent packets of the same flow (WaP slices of a longer message) are
  guaranteed one slot per round on every port of the path, so the message
  rate is bounded by the largest round along the path.

The per-hop delays simply add up along the route, which yields bounds that
grow polynomially (roughly quadratically for the corner-to-corner flow) with
the mesh dimension and are within a small factor of each other across flows
-- the right half of the paper's Table II.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..geometry import Coord, Mesh, Port
from ..topology.base import Hop
from .config import NoCConfig
from .flows import FlowSet
from .weights import WeightTable

__all__ = ["WaWWaPWCTTAnalysis", "HopDelayBreakdown"]


@dataclass(frozen=True)
class HopDelayBreakdown:
    """Per-hop contribution to a WaW+WaP WCTT bound (diagnostics/reports)."""

    router: Coord
    in_port: Port
    out_port: Port
    round_flits: int
    own_input_weight: int
    delay: int


class WaWWaPWCTTAnalysis:
    """Worst-case traversal time bounds for the WaW + WaP design.

    Parameters
    ----------
    config:
        The NoC design point (must use WaW arbitration + WaP packetization
        for the bound to be sound; this is checked).
    weight_table:
        The statically configured WaW weights.  Defaults to the closed-form
        all-to-all weights of the paper (Section III); the evaluated manycore
        uses weights derived from its all-to-one memory traffic, which can be
        passed explicitly (see :meth:`for_memory_traffic`).
    regulated_contenders:
        ``True`` (default) reproduces the paper's model: every contending
        flow is assumed to conform to its guaranteed share, so a packet never
        finds more than one arbitration round's worth of backlog ahead of it
        at any hop.  ``False`` additionally accounts for the worst backlog
        that can physically sit in the packet's own input buffer
        (``buffer_depth`` flits injected by bursty upstream flows), which
        yields a larger bound that is safe even against non-conforming
        (bursty) traffic; the simulator-based validation uses this variant.
    """

    def __init__(
        self,
        config: NoCConfig,
        weight_table: Optional[WeightTable] = None,
        *,
        regulated_contenders: bool = True,
    ):
        if not config.is_waw or not config.is_wap:
            raise ValueError(
                "WaWWaPWCTTAnalysis requires a WaW+WaP configuration; "
                f"got {config.describe()}"
            )
        self.config = config
        self.mesh: Mesh = config.mesh
        self.topology = config.topology
        self.weights: WeightTable = (
            weight_table
            if weight_table is not None
            else WeightTable.from_closed_form(config.mesh)
        )
        self.regulated_contenders = regulated_contenders
        self._hop_cache: Dict[Tuple[Coord, Port, Port], int] = {}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def for_memory_traffic(
        cls,
        config: NoCConfig,
        *,
        include_replies: bool = True,
        regulated_contenders: bool = True,
    ) -> "WaWWaPWCTTAnalysis":
        """Analysis with weights derived from the evaluated manycore traffic.

        All cores send requests to the memory controller and (optionally) the
        memory controller sends replies back to every core; the WaW weights
        are derived from that flow set, which is how the hardware of the
        evaluated 64-core system would be configured.
        """
        mesh = config.mesh
        mc = config.memory_controller
        pairs = [(src, mc) for src in mesh.nodes() if src != mc]
        if include_replies:
            pairs += [(mc, dst) for dst in mesh.nodes() if dst != mc]
        flow_set = FlowSet.from_pairs(mesh, pairs)
        return cls(
            config,
            WeightTable.from_flow_set(flow_set),
            regulated_contenders=regulated_contenders,
        )

    # ------------------------------------------------------------------
    # Per-hop bound
    # ------------------------------------------------------------------
    def round_flits(self, router: Coord, out_port: Port) -> int:
        """Flits served in one full weighted arbitration round of a port."""
        return max(1, self.weights.output_round_flits(router, out_port))

    def hop_delay(self, router: Coord, in_port: Port, out_port: Port) -> int:
        """Worst-case cycles for a minimum-size packet to cross one hop.

        Covers the router pipeline, one full arbitration round of the output
        port (every slot of every input, including the backlog of flows
        sharing the packet's own input port) and the link traversal.
        """
        key = (router, in_port, out_port)
        cached = self._hop_cache.get(key)
        if cached is not None:
            return cached
        timing = self.config.timing
        m = self.config.min_packet_flits
        round_flits = self.round_flits(router, out_port)
        rounds = 1
        if not self.regulated_contenders:
            # Non-conforming upstream flows may have filled the packet's own
            # input buffer ahead of it; draining that backlog consumes the
            # input's guaranteed slots of additional arbitration rounds.
            input_weight = max(1, self.weights.input_credits(router, in_port))
            backlog_slots = self.config.buffer_depth
            rounds += max(0, -(-backlog_slots // input_weight) - 1)
        delay = (
            timing.routing_latency
            + rounds * round_flits * m * timing.flit_cycle
            + (0 if out_port is Port.LOCAL else timing.link_latency)
        )
        self._hop_cache[key] = delay
        return delay

    def hop_breakdowns(self, source: Coord, destination: Coord) -> List[HopDelayBreakdown]:
        """Per-hop breakdown of the bound of a flow (reports/diagnostics)."""
        result: List[HopDelayBreakdown] = []
        for hop in self.topology.route(source, destination):
            result.append(
                HopDelayBreakdown(
                    router=hop.router,
                    in_port=hop.in_port,
                    out_port=hop.out_port,
                    round_flits=self.round_flits(hop.router, hop.out_port),
                    own_input_weight=self.weights.input_credits(hop.router, hop.in_port),
                    delay=self.hop_delay(hop.router, hop.in_port, hop.out_port),
                )
            )
        return result

    # ------------------------------------------------------------------
    # Packet / message bounds
    # ------------------------------------------------------------------
    def wctt_packet(
        self, source: Coord, destination: Coord, *, packet_flits: Optional[int] = None
    ) -> int:
        """WCTT of a single minimum-size packet (WaP slice).

        ``packet_flits`` is accepted for interface compatibility with the
        regular-mesh analysis but must not exceed the minimum packet size --
        under WaP no larger packet ever enters the network.
        """
        if source == destination:
            raise ValueError("source and destination coincide")
        if packet_flits is not None and packet_flits > self.config.min_packet_flits:
            raise ValueError(
                "WaP never injects packets larger than the minimum size "
                f"({self.config.min_packet_flits} flits); got {packet_flits}"
            )
        total = 0
        for hop in self.topology.route(source, destination):
            total += self.hop_delay(hop.router, hop.in_port, hop.out_port)
        return total

    def bottleneck_round(self, source: Coord, destination: Coord) -> int:
        """Largest arbitration round (in cycles) along the route of a flow.

        This bounds the guaranteed service interval of the flow: one
        minimum-size packet of the flow is served at least once per round on
        every port of its path, so consecutive WaP slices are spaced by at
        most the largest round.
        """
        m = self.config.min_packet_flits
        flit = self.config.timing.flit_cycle
        worst = 0
        for hop in self.topology.route(source, destination):
            worst = max(worst, self.round_flits(hop.router, hop.out_port) * m * flit)
        return worst

    def wctt_message(self, source: Coord, destination: Coord, *, payload_flits: int) -> int:
        """WCTT of a whole message sliced by WaP into minimum-size packets.

        The first slice pays the full per-hop bound; every subsequent slice
        is guaranteed one slot per arbitration round on every link of the
        path, so the message completes within ``(k - 1)`` bottleneck rounds
        after the first slice, where ``k`` is the number of slices (including
        the replicated-header overhead computed by the WaP packetizer).
        """
        if payload_flits < 1:
            raise ValueError("payload_flits must be >= 1")
        messages = self.config.messages
        if payload_flits == 1:
            slices = 1
        else:
            payload_bits = payload_flits * messages.link_width_bits - messages.control_bits
            slices = messages.wap_packets_for_payload_bits(payload_bits)
        first = self.wctt_packet(source, destination)
        if slices == 1:
            return first
        return first + (slices - 1) * self.bottleneck_round(source, destination)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def zero_load_latency(self, source: Coord, destination: Coord, packet_flits: int = 1) -> int:
        """Latency with no contention at all (lower bound, used by tests)."""
        route = self.topology.route(source, destination)
        timing = self.config.timing
        hops = len(route)
        return (
            hops * timing.routing_latency
            + (hops - 1) * timing.link_latency
            + packet_flits * timing.flit_cycle
        )

    def route(self, source: Coord, destination: Coord) -> List[Hop]:
        return self.topology.route(source, destination)
