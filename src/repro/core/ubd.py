"""Upper-Bound Delays (UBD) for the WCET-computation mode.

The evaluated architecture supports the WCET-computation mode of Paolieri et
al. [17]: at analysis time every request that accesses the NoC is delayed by
an *upper bound delay* so that the measured execution time is a safe WCET
estimate; at deployment time the mode is disabled and requests experience
only their actual (smaller) delays.

For a core at node ``c`` accessing a memory controller at node ``mc`` the UBD
of one memory operation is the round trip

    UBD(c) = WCTT(request  c -> mc) + T_memory + WCTT(reply  mc -> c)

where the request/reply sizes follow the message configuration of the design
point (1-flit loads, 4-flit cache-line replies -- 5 one-flit packets under
WaP) and the WCTT terms come from the analytical model of the design point.
Evictions (write-backs) have their own round trip with a 4-flit request and a
1-flit acknowledgement.

:class:`UBDTable` precomputes these values for every core of the mesh; the
manycore WCET mode (:mod:`repro.manycore.wcet_mode`) and the EEMBC/3DPP
experiments consume it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..geometry import Coord
from .config import NoCConfig
from .wctt import AnalysisType, make_wctt_analysis
from .weights import WeightTable

__all__ = ["MemoryTiming", "UBDEntry", "UBDTable"]


@dataclass(frozen=True)
class MemoryTiming:
    """Latency of the memory controller itself (outside the NoC).

    ``service_latency`` is the worst-case cycles between the arrival of a
    request at the controller and the injection of its reply (DRAM access
    plus controller queueing bound); it is identical for both design points
    so it only shifts both WCET estimates by the same amount.
    """

    service_latency: int = 30

    def __post_init__(self) -> None:
        if self.service_latency < 0:
            raise ValueError("service_latency must be >= 0")


@dataclass(frozen=True)
class UBDEntry:
    """Upper bound delays of one core, in cycles."""

    core: Coord
    #: Round-trip bound of a load / write-miss (request + memory + reply).
    load_ubd: int
    #: Round-trip bound of an eviction (write-back + memory + acknowledge).
    eviction_ubd: int
    #: The individual legs, kept for reporting.
    request_wctt: int
    reply_wctt: int
    eviction_wctt: int
    eviction_ack_wctt: int


class UBDTable:
    """Per-core upper bound delays for one NoC design point.

    ``engine`` selects how the table is filled: ``"auto"`` (default) uses
    the vectorized WaW+WaP kernels of :mod:`repro.analysis.vector` when the
    design point supports them (four message grids replace the per-core
    route walks) and falls back to the scalar analysis otherwise;
    ``"scalar"`` forces the reference path.  Both fill the table with
    bit-identical values (``tests/test_differential_analysis.py``).

    ``backend`` selects a registered :class:`~repro.analysis.AnalysisBackend`
    by name (``regular``, ``weighted``, ``holistic``, ``trajectory``,
    ``vector``) to compute the WCTT legs with; the default ``None`` keeps
    the paper's analysis for the design point.  The analysis is built over
    the table's request/reply memory-traffic flow set, so flow-aware
    backends bound exactly the traffic the table describes.  Mutually
    exclusive with passing a ready ``analysis`` object.
    """

    def __init__(
        self,
        config: NoCConfig,
        *,
        memory: Optional[MemoryTiming] = None,
        analysis: Optional[AnalysisType] = None,
        weight_table: Optional[WeightTable] = None,
        engine: str = "auto",
        backend: Optional[str] = None,
    ):
        if engine not in ("auto", "scalar"):
            raise ValueError(f"engine must be 'auto' or 'scalar', got {engine!r}")
        self.config = config
        self.engine = engine
        self.memory = memory if memory is not None else MemoryTiming()
        if backend is not None and analysis is not None:
            raise ValueError("pass either backend= or analysis=, not both")
        if backend is not None:
            self.analysis = self._backend_analysis(backend, weight_table)
        elif analysis is not None:
            self.analysis: AnalysisType = analysis
        elif config.is_waw_wap and weight_table is None:
            # The UBD table describes memory traffic (cores <-> memory
            # controller), so by default the WaW weights are the ones the
            # evaluated manycore would be configured with: those derived from
            # that request/reply flow set.
            from .wctt_weighted import WaWWaPWCTTAnalysis

            self.analysis = WaWWaPWCTTAnalysis.for_memory_traffic(config)
        else:
            self.analysis = make_wctt_analysis(config, weight_table=weight_table)
        self._entries: Dict[Coord, UBDEntry] = {}
        self._build()

    # ------------------------------------------------------------------
    def _backend_analysis(self, backend: str, weight_table: Optional[WeightTable]):
        """Resolve ``backend=`` into an analysis over the memory flow set."""
        # Imported lazily: repro.analysis depends on this module.
        from ..analysis.backends import make_analysis_backend

        resolved = make_analysis_backend(backend)
        resolved.require(self.config)
        if resolved.name == "vector":
            # The vector engine is the bit-identical fast path of the paper's
            # pair; the table uses the same scalar analysis object and lets
            # the (already required-supported) auto vector build fill it.
            if self.config.is_waw_wap and weight_table is None:
                from .wctt_weighted import WaWWaPWCTTAnalysis

                return WaWWaPWCTTAnalysis.for_memory_traffic(self.config)
            return make_wctt_analysis(self.config, weight_table=weight_table)
        from .flows import FlowSet

        mesh = self.config.mesh
        mc = self.config.memory_controller
        pairs = [(src, mc) for src in mesh.nodes() if src != mc]
        pairs += [(mc, dst) for dst in mesh.nodes() if dst != mc]
        flow_set = FlowSet.from_pairs(mesh, pairs)
        if weight_table is None and self.config.is_waw:
            weight_table = WeightTable.from_flow_set(flow_set)
        return resolved.analysis(
            self.config, flow_set=flow_set, weight_table=weight_table
        )

    # ------------------------------------------------------------------
    def _build(self) -> None:
        if self.engine == "auto" and self._vector_build():
            return
        mesh = self.config.mesh
        mc = self.config.memory_controller
        msgs = self.config.messages
        for core in mesh.nodes():
            if core == mc:
                continue
            request = self.analysis.wctt_message(core, mc, payload_flits=msgs.request_flits)
            reply = self.analysis.wctt_message(mc, core, payload_flits=msgs.reply_flits)
            eviction = self.analysis.wctt_message(core, mc, payload_flits=msgs.eviction_flits)
            eviction_ack = self.analysis.wctt_message(
                mc, core, payload_flits=msgs.eviction_ack_flits
            )
            service = self.memory.service_latency
            self._entries[core] = UBDEntry(
                core=core,
                load_ubd=request + service + reply,
                eviction_ubd=eviction + service + eviction_ack,
                request_wctt=request,
                reply_wctt=reply,
                eviction_wctt=eviction,
                eviction_ack_wctt=eviction_ack,
            )

    def _vector_build(self) -> bool:
        """Fill the table through the vectorized kernels when applicable."""
        from .wctt_weighted import WaWWaPWCTTAnalysis

        if not isinstance(self.analysis, WaWWaPWCTTAnalysis):
            return False
        # Imported lazily: repro.analysis.vector depends on this module.
        from ..analysis.vector import vector_supported, vector_ubd_entries

        if vector_supported(self.config) is not None:
            return False
        self._entries = vector_ubd_entries(
            self.config,
            weight_table=self.analysis.weights,
            regulated_contenders=self.analysis.regulated_contenders,
            service_latency=self.memory.service_latency,
        )
        return True

    # ------------------------------------------------------------------
    def entry(self, core: Coord) -> UBDEntry:
        """UBD entry of one core; raises for the memory-controller node."""
        if core == self.config.memory_controller:
            raise ValueError("the memory-controller node does not run application cores")
        self.config.mesh.require(core)
        return self._entries[core]

    def load_ubd(self, core: Coord) -> int:
        return self.entry(core).load_ubd

    def eviction_ubd(self, core: Coord) -> int:
        return self.entry(core).eviction_ubd

    def cores(self):
        """Iterate the cores covered by the table (every node but the MC)."""
        return iter(self._entries.keys())

    def as_dict(self) -> Dict[Coord, UBDEntry]:
        return dict(self._entries)

    def max_load_ubd(self) -> int:
        return max(e.load_ubd for e in self._entries.values())

    def min_load_ubd(self) -> int:
        return min(e.load_ubd for e in self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UBDTable({self.config.describe()}, "
            f"load UBD {self.min_load_ubd()}..{self.max_load_ubd()} cycles)"
        )
