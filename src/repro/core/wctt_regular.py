"""Time-composable WCTT analysis of the *regular* wormhole mesh.

This module derives the worst-case traversal time (WCTT) of a packet through
a conventional wormhole mesh with XY routing and plain round-robin switch
arbitration under the paper's time-composability assumptions (Section II.A):

1. every node may communicate with every other node, so the analysis cannot
   rely on knowing the actual contending flows;
2. whenever a packet is injected, every possible contender is assumed to be
   requesting the same output ports along the whole path;
3. arbitration is round-robin, which guarantees that between two consecutive
   grants to an input port every other requesting input port is granted at
   most once;
4. contending packets have the maximum allowed size ``L``;
5. the network is congested when the packet is injected (full back-pressure).

Under wormhole switching a packet that wins an output port keeps it until its
tail flit has left, and with the network congested the packet can only drain
as fast as it acquires its *next* output port.  The per-packet service time
of an output port is therefore recursive over the downstream hops.  This
recursion -- multiplied at every hop by the number of possible contenders --
is what makes regular-mesh WCTT estimates explode with network size (the
left half of the paper's Table II).

Two variants of the recursion are provided through ``contender_policy``:

* ``"merging"`` (default, reproduces the paper's Table II shape): a contender
  that wins an output port on our path is assumed to continue along *our*
  path towards our destination, i.e. the interfering traffic merges with the
  analysed flow.  This matches the evaluated system, where every flow under
  analysis shares its destination (the memory controller) with its
  contenders, and keeps the bound of nodes adjacent to the destination small
  and independent of the mesh size (the constant ``min`` column of Table II).
* ``"any_direction"``: a contender may continue in whichever legal direction
  maximises its occupancy of the port.  This is the fully destination-
  agnostic (most conservative) bound; it grows faster and penalises even the
  nodes adjacent to the destination.  It is exposed for the ablation study
  (`repro.experiments.ablation_mechanisms`) and for users who need bounds
  valid under arbitrary traffic.

The model is parameterised by the router timing constants of
:class:`~repro.core.config.RouterTiming`; absolute cycle counts therefore
differ from the paper's (whose pipeline constants are not published) but the
growth law and the orders of magnitude are reproduced, which is what the
evaluation relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..geometry import Coord, Mesh, Port
from ..topology.base import Hop
from .config import NoCConfig

__all__ = ["RegularMeshWCTTAnalysis", "ServiceTimeBreakdown", "CONTENDER_POLICIES"]

#: Supported contender downstream-routing assumptions.
CONTENDER_POLICIES = ("merging", "any_direction")


@dataclass(frozen=True)
class ServiceTimeBreakdown:
    """Diagnostic record of one (router, output port) service-time evaluation."""

    router: Coord
    out_port: Port
    contenders: int
    service_time: int
    worst_next_port: Optional[Port]


class RegularMeshWCTTAnalysis:
    """Worst-case traversal time bounds for the regular (baseline) wNoC.

    Parameters
    ----------
    config:
        The NoC design point.  Only the mesh, the timing constants and the
        maximum packet size are used; the arbitration/packetization fields
        are ignored because this analysis *is* the round-robin / single
        packet baseline.
    contender_packet_flits:
        Size assumed for contending packets.  Defaults to the maximum packet
        size of the configuration (assumption 4 of the paper); Table II uses
        1-flit packets network-wide, which corresponds to a configuration
        with ``max_packet_flits=1``.
    contender_policy:
        ``"merging"`` or ``"any_direction"`` (see the module docstring).
    """

    def __init__(
        self,
        config: NoCConfig,
        *,
        contender_packet_flits: Optional[int] = None,
        contender_policy: str = "merging",
    ):
        self.config = config
        self.mesh: Mesh = config.mesh
        self.topology = config.topology
        self.contender_packet_flits = (
            contender_packet_flits
            if contender_packet_flits is not None
            else config.max_packet_flits
        )
        if self.contender_packet_flits < 1:
            raise ValueError("contender_packet_flits must be >= 1")
        if contender_policy not in CONTENDER_POLICIES:
            raise ValueError(
                f"contender_policy must be one of {CONTENDER_POLICIES}, got {contender_policy!r}"
            )
        if contender_policy == "any_direction" and self.topology.has_wraparound:
            # The destination-agnostic recursion walks every legal downstream
            # turn; wrap-around links make that walk cyclic (it never reaches
            # an edge), so the policy is only defined for acyclic topologies.
            raise ValueError(
                "the 'any_direction' contender policy requires an edge-bounded "
                f"topology; use 'merging' on a {self.topology.describe_short()}"
            )
        self.contender_policy = contender_policy
        self._service_cache: Dict[Tuple[Coord, Port], int] = {}
        self._breakdowns: Dict[Tuple[Coord, Port], ServiceTimeBreakdown] = {}

    # ------------------------------------------------------------------
    # Contention structure
    # ------------------------------------------------------------------
    def contender_count(self, router: Coord, out_port: Port) -> int:
        """Number of input ports that may request ``out_port`` (incl. ours)."""
        return len(self.topology.legal_inputs_for_output(router, out_port))

    @property
    def _serialization(self) -> int:
        return self.contender_packet_flits * self.config.timing.flit_cycle

    # ------------------------------------------------------------------
    # Worst-case per-packet service time of an output port
    # ------------------------------------------------------------------
    def service_time_any_direction(self, router: Coord, out_port: Port) -> int:
        """Service time under the ``any_direction`` contender policy (memoised)."""
        key = (router, out_port)
        cached = self._service_cache.get(key)
        if cached is not None:
            return cached

        timing = self.config.timing
        serialization = self._serialization

        if out_port is Port.LOCAL:
            value = serialization
            breakdown = ServiceTimeBreakdown(router, out_port, 0, value, None)
        else:
            downstream = self.topology.downstream(router, out_port)
            if downstream is None:
                raise ValueError(f"output port {out_port} of {router} leaves the topology")
            in_port = out_port  # travel-direction port naming
            worst = 0
            worst_port: Optional[Port] = None
            for next_out in self.topology.legal_outputs_for_input(downstream, in_port):
                contenders = self.contender_count(downstream, next_out)
                next_service = self.service_time_any_direction(downstream, next_out)
                occupancy = timing.routing_latency + contenders * next_service
                if occupancy > worst:
                    worst = occupancy
                    worst_port = next_out
            value = max(serialization, worst) + timing.link_latency
            breakdown = ServiceTimeBreakdown(
                router, out_port, self.contender_count(router, out_port), value, worst_port
            )

        self._service_cache[key] = value
        self._breakdowns[key] = breakdown
        return value

    def service_breakdown(self, router: Coord, out_port: Port) -> ServiceTimeBreakdown:
        """Diagnostic breakdown of an ``any_direction`` service-time computation."""
        self.service_time_any_direction(router, out_port)
        return self._breakdowns[(router, out_port)]

    def _route_service_times(self, route: List[Hop]) -> List[int]:
        """Per-hop output-port service times along a specific route.

        Index ``i`` is the worst-case occupancy of ``route[i].out_port`` by
        one contending packet.  Under the ``merging`` policy the contender is
        assumed to follow the remainder of the route; under ``any_direction``
        the destination-agnostic memoised recursion is used instead.
        """
        timing = self.config.timing
        serialization = self._serialization
        if self.contender_policy == "any_direction":
            return [
                self.service_time_any_direction(hop.router, hop.out_port) for hop in route
            ]

        services = [0] * len(route)
        # Ejection hop: the destination drains the packet at link rate.
        services[-1] = serialization
        for i in range(len(route) - 2, -1, -1):
            next_hop = route[i + 1]
            contenders = self.contender_count(next_hop.router, next_hop.out_port)
            occupancy = timing.routing_latency + contenders * services[i + 1]
            services[i] = max(serialization, occupancy) + timing.link_latency
        return services

    # ------------------------------------------------------------------
    # Worst-case traversal time of a packet along its own route
    # ------------------------------------------------------------------
    def wctt_packet(
        self, source: Coord, destination: Coord, *, packet_flits: Optional[int] = None
    ) -> int:
        """WCTT (cycles) of one packet of ``packet_flits`` flits.

        The bound follows the packet along its XY route; at every hop the
        packet waits for one maximum-size packet of every other possible
        contender of the requested output port (round-robin), where each
        contender may hold the port for its full back-pressure-aware service
        time.
        """
        if source == destination:
            raise ValueError("source and destination coincide")
        own_flits = packet_flits if packet_flits is not None else self.config.max_packet_flits
        if own_flits < 1:
            raise ValueError("packet_flits must be >= 1")

        timing = self.config.timing
        route = self.topology.route(source, destination)
        services = self._route_service_times(route)
        own_serialization = own_flits * timing.flit_cycle

        # Walk the route backwards accumulating the packet's own worst-case
        # progress time from each hop's grant to full ejection.
        progress_after: int = own_serialization  # after the last (ejection) grant
        for i in range(len(route) - 1, 0, -1):
            hop = route[i]
            contenders = self.contender_count(hop.router, hop.out_port)
            wait = (contenders - 1) * services[i]
            stage = timing.link_latency + timing.routing_latency + wait + progress_after
            progress_after = max(own_serialization, stage)

        first = route[0]
        contenders = self.contender_count(first.router, first.out_port)
        injection_wait = (contenders - 1) * services[0]
        return timing.routing_latency + injection_wait + progress_after

    def wctt_message(
        self, source: Coord, destination: Coord, *, payload_flits: int
    ) -> int:
        """WCTT of a whole message under regular single-packet packetization.

        A message that fits the maximum packet size is one packet; larger
        messages are split into maximum-size packets whose worst-case times
        add up (no pipelining is guaranteed under round-robin arbitration
        because every packet re-arbitrates against full contention).
        """
        if payload_flits < 1:
            raise ValueError("payload_flits must be >= 1")
        max_flits = self.config.max_packet_flits
        full, rest = divmod(payload_flits, max_flits)
        total = 0
        if full:
            total += full * self.wctt_packet(source, destination, packet_flits=max_flits)
        if rest:
            total += self.wctt_packet(source, destination, packet_flits=rest)
        return total

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def zero_load_latency(self, source: Coord, destination: Coord, packet_flits: int = 1) -> int:
        """Latency with no contention at all (lower bound, used by tests)."""
        route = self.topology.route(source, destination)
        timing = self.config.timing
        hops = len(route)
        return (
            hops * timing.routing_latency
            + (hops - 1) * timing.link_latency
            + packet_flits * timing.flit_cycle
        )

    def route(self, source: Coord, destination: Coord) -> List[Hop]:
        return self.topology.route(source, destination)
