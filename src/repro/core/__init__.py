"""The paper's contribution: WaP, WaW and the time-composable WCTT analyses.

Public surface of :mod:`repro.core`:

* configuration of design points (:mod:`repro.core.config`),
* communication flows and per-port accounting (:mod:`repro.core.flows`),
* WaW arbitration weights (:mod:`repro.core.weights`),
* arbitration policies (:mod:`repro.core.arbitration`),
* packetization policies (:mod:`repro.core.packetization`),
* WCTT analytical models (:mod:`repro.core.wctt_regular`,
  :mod:`repro.core.wctt_weighted`, :mod:`repro.core.wctt`),
* per-core upper bound delays (:mod:`repro.core.ubd`),
* the router area model (:mod:`repro.core.area`).
"""

from .config import (
    ArbitrationPolicy,
    MessageConfig,
    NoCConfig,
    PacketizationPolicy,
    RouterTiming,
    regular_mesh_config,
    waw_wap_config,
)
from .flows import Flow, FlowSet
from .weights import (
    PortCounts,
    WeightTable,
    paper_port_counts,
    source_port_counts,
    waw_weight,
)
from .arbitration import RoundRobinArbiter, WeightedRoundRobinArbiter, make_arbiter
from .packetization import (
    MessageDescriptor,
    PacketDescriptor,
    RegularPacketizer,
    WaPPacketizer,
    make_packetizer,
)
from .wctt_regular import RegularMeshWCTTAnalysis
from .wctt_weighted import WaWWaPWCTTAnalysis
from .wctt import WCTTSummary, make_wctt_analysis, wctt_map, wctt_summary
from .ubd import MemoryTiming, UBDEntry, UBDTable
from .area import AreaBreakdown, AreaParameters, noc_area, router_area, waw_wap_overhead

__all__ = [
    # config
    "ArbitrationPolicy",
    "MessageConfig",
    "NoCConfig",
    "PacketizationPolicy",
    "RouterTiming",
    "regular_mesh_config",
    "waw_wap_config",
    # flows
    "Flow",
    "FlowSet",
    # weights
    "PortCounts",
    "WeightTable",
    "paper_port_counts",
    "source_port_counts",
    "waw_weight",
    # arbitration
    "RoundRobinArbiter",
    "WeightedRoundRobinArbiter",
    "make_arbiter",
    # packetization
    "MessageDescriptor",
    "PacketDescriptor",
    "RegularPacketizer",
    "WaPPacketizer",
    "make_packetizer",
    # wctt
    "RegularMeshWCTTAnalysis",
    "WaWWaPWCTTAnalysis",
    "WCTTSummary",
    "make_wctt_analysis",
    "wctt_map",
    "wctt_summary",
    # ubd
    "MemoryTiming",
    "UBDEntry",
    "UBDTable",
    # area
    "AreaBreakdown",
    "AreaParameters",
    "noc_area",
    "router_area",
    "waw_wap_overhead",
]
