"""Cycle-accurate flit-level wormhole mesh NoC simulator.

This package is the reproduction's substitute for the SoCLib + gNoCSim
simulation infrastructure used in the paper's evaluation.  It models:

* input-buffered wormhole routers with credit-based flow control and XY
  routing (:mod:`repro.noc.router`),
* NICs with configurable packetization -- regular or WaP
  (:mod:`repro.noc.nic`),
* the assembled mesh and its cycle-driven simulation loop
  (:mod:`repro.noc.network`),
* per-run traffic statistics (:mod:`repro.noc.stats`).
"""

from .buffer import FlitBuffer
from .flit import Flit, FlitType, Message, Packet
from .network import Network
from .nic import NIC
from .router import Router
from .stats import LatencySummary, NetworkStats

__all__ = [
    "FlitBuffer",
    "Flit",
    "FlitType",
    "Message",
    "Packet",
    "Network",
    "NIC",
    "Router",
    "LatencySummary",
    "NetworkStats",
]
