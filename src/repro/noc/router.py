"""Cycle-accurate wormhole router model.

Each router has up to five ports (``X+``, ``X-``, ``Y+``, ``Y-``, ``LOCAL``)
with one flit FIFO per *input* port, credit-based flow control towards its
downstream neighbours and one arbiter per *output* port.  Which ports exist,
which output a header flit requests and which input ports may legally
contend for an output all come from the configuration's pluggable
:class:`~repro.topology.Topology` (mesh, torus, ring, concentrated mesh; XY
or YX dimension order), so the same router model serves every topology.
Wormhole switching is modelled faithfully:

* only the **head** flit of a packet takes part in switch allocation;
* once an input port wins an output port it keeps it until the **tail** flit
  has been forwarded (the wormhole lock), so a blocked packet holds the
  output port and back-pressures its upstream routers;
* body/tail flits stream at one flit per cycle per output port, subject to
  downstream credits.

The arbitration policy is pluggable through :mod:`repro.core.arbitration`:
plain round-robin for the regular design, the WaW flit-counter weighted
round-robin for the proposed design.  The router pipeline is abstracted as a
configurable latency applied to head flits between their arrival at an input
buffer and their eligibility for allocation (``RouterTiming.routing_latency``),
which reproduces the zero-load per-hop latency of a multi-stage router
without simulating every stage.

Routers never move flits directly; they emit *events* (forward, eject,
credit return) that the :class:`~repro.noc.network.Network` applies at the
end of the cycle, making the simulation independent of the order in which
routers are evaluated within a cycle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.arbitration import Arbiter, make_arbiter
from ..core.config import NoCConfig
from ..core.weights import WeightTable
from ..geometry import Coord, Port
from .buffer import FlitBuffer
from .flit import Flit

__all__ = ["Router", "RouterEvent"]

#: Events a router emits during one cycle, applied by the network afterwards:
#: ``("forward", router, out_port, flit)`` -- flit leaves through a directional output;
#: ``("eject", router, flit)``             -- flit is delivered to the local NIC;
#: ``("credit", router, in_port)``         -- one credit is returned upstream of ``in_port``.
RouterEvent = Tuple


class Router:
    """One wormhole router of the mesh."""

    def __init__(
        self,
        coord: Coord,
        config: NoCConfig,
        weight_table: Optional[WeightTable] = None,
    ):
        self.coord = coord
        self.config = config
        self.mesh = config.mesh
        self.topology = config.topology
        self.timing = config.timing

        self.input_ports: List[Port] = list(self.topology.input_ports(coord))
        self.output_ports: List[Port] = list(self.topology.output_ports(coord))

        self.buffers: Dict[Port, FlitBuffer] = {
            port: FlitBuffer(config.buffer_depth, name=f"{coord}:{port.value}")
            for port in self.input_ports
        }
        #: Which output port the packet at the head of each input currently owns.
        self.input_grant: Dict[Port, Optional[Port]] = {p: None for p in self.input_ports}
        #: Which input port currently owns each output port (wormhole lock).
        self.output_owner: Dict[Port, Optional[Port]] = {p: None for p in self.output_ports}
        #: Credits available towards the downstream buffer of each directional output.
        self.output_credits: Dict[Port, int] = {
            port: config.buffer_depth for port in self.output_ports if port is not Port.LOCAL
        }

        self.arbiters: Dict[Port, Arbiter] = {}
        for out_port in self.output_ports:
            candidates = self.topology.legal_inputs_for_output(coord, out_port)
            if not candidates:
                continue
            weights = (
                weight_table.arbitration_weights(coord, out_port)
                if (config.is_waw and weight_table is not None)
                else None
            )
            self.arbiters[out_port] = make_arbiter(
                candidates, weighted=config.is_waw, weights=weights
            )

        # Statistics / idle bookkeeping.
        self.forwarded_flits = 0
        self._was_idle = True

    # ------------------------------------------------------------------
    # Buffer interface used by the network when applying events
    # ------------------------------------------------------------------
    def accept_flit(self, in_port: Port, flit: Flit, ready_cycle: int) -> None:
        """Enqueue an incoming flit on ``in_port`` (called by the network)."""
        flit.ready_cycle = ready_cycle
        self.buffers[in_port].push(flit)

    def buffered_flits(self) -> int:
        return sum(len(buf) for buf in self.buffers.values())

    def has_work(self) -> bool:
        return any(len(buf) for buf in self.buffers.values())

    # ------------------------------------------------------------------
    # Activity introspection / bulk idle (event-driven backend support)
    # ------------------------------------------------------------------
    def next_ready_cycle(self) -> Optional[int]:
        """Earliest ``ready_cycle`` among the head-of-line flits; ``None`` if empty.

        This is a conservative lower bound on the next cycle at which this
        router can move a flit: every action of :meth:`step` (allocation or
        forwarding) starts from a head-of-line flit whose ``ready_cycle`` has
        been reached.
        """
        best: Optional[int] = None
        for buffer in self.buffers.values():
            flit = buffer.peek()
            if flit is not None and (best is None or flit.ready_cycle < best):
                best = flit.ready_cycle
        return best

    def skip_cycles(self, cycles: int) -> None:
        """Replay ``cycles`` consecutive no-activity steps in closed form.

        The caller (the event-driven backend) guarantees that during the
        skipped stretch no head-of-line flit anywhere in the network is
        ready, so a cycle-accurate step of this router would at most notify
        requester-less arbiters of an idle cycle (a no-op for round-robin, a
        saturating credit refill for WaW) -- exactly what this method applies
        in bulk.  Output ports held by a wormhole lock are skipped, matching
        the per-cycle code path.
        """
        if cycles <= 0:
            return
        if not self.has_work():
            self._settle_idle()
            return
        self._was_idle = False
        for out_port, arbiter in self.arbiters.items():
            if self.output_owner[out_port] is None:
                arbiter.idle_cycles(cycles)

    def _settle_idle(self) -> None:
        """Apply the one-time arbiter refill of a router that went quiet.

        The WaW credit counters refill while their output ports sit idle;
        doing it once (capped at the buffer depth) when the router goes quiet
        is equivalent to calling idle_cycle every empty cycle.
        """
        if self._was_idle:
            return
        for arbiter in self.arbiters.values():
            arbiter.idle_cycles(self.config.buffer_depth)
        self._was_idle = True

    # ------------------------------------------------------------------
    # One simulation cycle
    # ------------------------------------------------------------------
    def step(self, now: int, events: List[RouterEvent]) -> None:
        """Evaluate one cycle, appending the resulting events to ``events``."""
        if not self.has_work():
            # Nothing buffered anywhere: apply the one-time idle refill.
            self._settle_idle()
            return
        self._was_idle = False

        for out_port in self.output_ports:
            arbiter = self.arbiters.get(out_port)
            owner = self.output_owner[out_port]
            if owner is not None:
                self._forward_from(owner, out_port, now, events)
                continue
            if arbiter is None:
                continue
            requesters = self._requesters(out_port, now)
            if not requesters:
                arbiter.idle_cycle()
                continue
            if out_port is not Port.LOCAL and self.output_credits[out_port] <= 0:
                # The downstream buffer is full: allocation is deferred, the
                # arbiter state is left untouched (nobody is served).
                continue
            winner = arbiter.grant(requesters)
            if winner is None:  # pragma: no cover - requesters is non-empty
                continue
            self.output_owner[out_port] = winner
            self.input_grant[winner] = out_port
            self._forward_from(winner, out_port, now, events)

    # ------------------------------------------------------------------
    def _requesters(self, out_port: Port, now: int) -> List[Port]:
        """Input ports whose head-of-line header flit requests ``out_port``."""
        arbiter = self.arbiters[out_port]
        requesters: List[Port] = []
        for in_port in arbiter.candidates:
            buffer = self.buffers.get(in_port)
            if buffer is None:
                continue
            flit = buffer.peek()
            if flit is None or not flit.is_head:
                continue
            if flit.ready_cycle > now:
                continue
            if self.input_grant[in_port] is not None:
                continue
            if self.topology.output_port(self.coord, flit.destination) is not out_port:
                continue
            requesters.append(in_port)
        return requesters

    def _forward_from(
        self, in_port: Port, out_port: Port, now: int, events: List[RouterEvent]
    ) -> None:
        """Move one flit of the packet owning ``out_port`` (if possible)."""
        buffer = self.buffers[in_port]
        flit = buffer.peek()
        if flit is None or flit.ready_cycle > now:
            return
        if out_port is not Port.LOCAL and self.output_credits[out_port] <= 0:
            return
        flit = buffer.pop()
        self.forwarded_flits += 1
        # Return a credit to whoever feeds this input port.
        events.append(("credit", self, in_port))
        if out_port is Port.LOCAL:
            events.append(("eject", self, flit))
        else:
            self.output_credits[out_port] -= 1
            events.append(("forward", self, out_port, flit))
        if flit.is_tail:
            self.output_owner[out_port] = None
            self.input_grant[in_port] = None

    # ------------------------------------------------------------------
    def return_credit(self, out_port: Port) -> None:
        """Called by the network when the downstream buffer freed one slot."""
        if out_port is Port.LOCAL:
            return
        self.output_credits[out_port] += 1
        if self.output_credits[out_port] > self.config.buffer_depth:
            raise RuntimeError(
                f"credit overflow on {self.coord} {out_port}: flow-control protocol violation"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Router({self.coord}, {self.buffered_flits()} flits buffered)"
