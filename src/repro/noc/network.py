"""The assembled network and its cycle-driven simulation loop.

:class:`Network` instantiates one :class:`~repro.noc.router.Router` and one
:class:`~repro.noc.nic.NIC` per node of the configuration's topology and
wires them along the topology's links -- a 2D mesh reproduces the paper's
system, but any :class:`~repro.topology.Topology` (torus, ring, concentrated
mesh) wires and simulates the same way, with each router exposing exactly
the ports its topology gives it.  Within a cycle every NIC and every router
is evaluated against the *previous* end-of-cycle state and emits events
(inject, forward, eject, credit); the events are applied once everybody has
been evaluated, so simulation results do not depend on the order in which
routers are visited.

The network exposes a deliberately small API to the layers above it
(:mod:`repro.manycore`, :mod:`repro.workloads`):

* :meth:`Network.send` -- enqueue a message for injection;
* :meth:`Network.add_listener` -- observe message completions at a node;
* :meth:`Network.step` / :meth:`Network.run` / :meth:`Network.run_until_idle`
  -- advance time;
* :attr:`Network.stats` -- aggregated traffic statistics.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from ..core.config import NoCConfig
from ..core.weights import WeightTable
from ..geometry import Coord, Port
from .flit import Message
from .nic import NIC
from .router import Router
from .stats import NetworkStats

__all__ = ["Network"]


class Network:
    """A complete wormhole NoC instance on the configured topology."""

    def __init__(self, config: NoCConfig, weight_table: Optional[WeightTable] = None):
        self.config = config
        self.mesh = config.mesh
        self.topology = config.topology
        if config.is_waw and weight_table is None:
            # Default WaW configuration: the all-to-all weights of the
            # topology (closed-form on the XY mesh, flow-derived elsewhere).
            weight_table = WeightTable.from_closed_form(config.mesh)
        self.weight_table = weight_table

        self.routers: Dict[Coord, Router] = {
            coord: Router(coord, config, weight_table) for coord in self.topology.nodes()
        }
        self.nics: Dict[Coord, NIC] = {
            coord: NIC(coord, config) for coord in self.topology.nodes()
        }

        self.cycle = 0
        self.stats = NetworkStats()
        for nic in self.nics.values():
            nic.add_listener(self.stats.record_message)

        self._pending_sends: List[Message] = []

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def send(
        self,
        source: Coord,
        destination: Coord,
        payload_flits: int,
        *,
        kind: str = "data",
        context: Optional[object] = None,
    ) -> Message:
        """Create a message and hand it to the source NIC at the current cycle."""
        message = Message(
            source=source,
            destination=destination,
            payload_flits=payload_flits,
            kind=kind,
            context=context,
        )
        self.nics[source].send_message(message, self.cycle)
        self.stats.record_send(message)
        return message

    def add_listener(self, node: Coord, listener: Callable[[Message, int], None]) -> None:
        """Register a completion callback at ``node`` (e.g. a memory controller)."""
        self.nics[node].add_listener(listener)

    def nic(self, node: Coord) -> NIC:
        return self.nics[self.mesh.require(node)]

    def router(self, node: Coord) -> Router:
        return self.routers[self.mesh.require(node)]

    # ------------------------------------------------------------------
    # Simulation loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the network by one clock cycle."""
        events: List[tuple] = []
        now = self.cycle

        for nic in self.nics.values():
            if nic.has_work():
                nic.step(now, events)
        for router in self.routers.values():
            router.step(now, events)

        self._apply_events(events, now)
        self.cycle += 1

    def run(self, cycles: int) -> None:
        """Advance the network by ``cycles`` clock cycles."""
        if cycles < 0:
            raise ValueError("cycles must be >= 0")
        for _ in range(cycles):
            self.step()

    def is_idle(self) -> bool:
        """True when no flit is buffered or queued anywhere in the network."""
        return not any(r.has_work() for r in self.routers.values()) and not any(
            n.has_work() for n in self.nics.values()
        )

    def run_until_idle(self, *, max_cycles: int = 1_000_000) -> int:
        """Run until the network drains completely; returns the final cycle.

        Raises ``RuntimeError`` if the network has not drained after
        ``max_cycles``.  Dimension-ordered routing on a mesh (and on a
        concentrated mesh) is deadlock-free, so failing to drain there would
        be a simulator bug; on wrapped topologies (torus, ring) the wrap
        links close cyclic channel dependencies and heavily loaded traffic
        *can* genuinely deadlock -- bound the offered load (e.g. bounded
        outstanding request/reply traffic) when simulating those.
        """
        start = self.cycle
        while not self.is_idle():
            if self.cycle - start > max_cycles:
                raise RuntimeError(f"network did not drain within {max_cycles} cycles")
            self.step()
        return self.cycle

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def _apply_events(self, events: Iterable[tuple], now: int) -> None:
        timing = self.config.timing
        for event in events:
            tag = event[0]
            if tag == "forward":
                _, router, out_port, flit = event
                downstream = self.topology.downstream(router.coord, out_port)
                if downstream is None:  # pragma: no cover - defensive
                    raise RuntimeError(
                        f"flit forwarded off the topology at {router.coord} {out_port}"
                    )
                delay = timing.link_latency + (
                    timing.routing_latency if flit.is_head else timing.flit_cycle
                )
                self.routers[downstream].accept_flit(out_port, flit, now + delay)
            elif tag == "eject":
                _, router, flit = event
                self.nics[router.coord].receive_flit(flit, now + 1)
                self.stats.record_flit_hop(flit)
            elif tag == "credit":
                _, router, in_port = event
                if in_port is Port.LOCAL:
                    self.nics[router.coord].return_injection_credit()
                else:
                    upstream = self.topology.upstream(router.coord, in_port)
                    if upstream is None:  # pragma: no cover - defensive
                        raise RuntimeError(f"credit towards a missing neighbour at {router.coord}")
                    self.routers[upstream].return_credit(in_port)
            elif tag == "inject":
                _, nic, flit = event
                delay = timing.routing_latency if flit.is_head else timing.flit_cycle
                self.routers[nic.coord].accept_flit(Port.LOCAL, flit, now + delay)
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown event {tag!r}")

    # ------------------------------------------------------------------
    # Introspection helpers (used by tests and experiments)
    # ------------------------------------------------------------------
    def buffered_flits(self) -> int:
        return sum(r.buffered_flits() for r in self.routers.values())

    def total_injected_flits(self) -> int:
        return sum(n.injected_flits for n in self.nics.values())

    def total_ejected_flits(self) -> int:
        return sum(n.ejected_flits for n in self.nics.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Network({self.config.describe()}, cycle={self.cycle})"
