"""The assembled network and its cycle-driven simulation loop.

:class:`Network` instantiates one :class:`~repro.noc.router.Router` and one
:class:`~repro.noc.nic.NIC` per node of the configuration's topology and
wires them along the topology's links -- a 2D mesh reproduces the paper's
system, but any :class:`~repro.topology.Topology` (torus, ring, concentrated
mesh) wires and simulates the same way, with each router exposing exactly
the ports its topology gives it.  Within a cycle every NIC and every router
is evaluated against the *previous* end-of-cycle state and emits events
(inject, forward, eject, credit); the events are applied once everybody has
been evaluated, so simulation results do not depend on the order in which
routers are visited.

The network exposes a deliberately small API to the layers above it
(:mod:`repro.manycore`, :mod:`repro.workloads`):

* :meth:`Network.send` -- enqueue a message for injection;
* :meth:`Network.add_listener` -- observe message completions at a node;
* :meth:`Network.step` / :meth:`Network.run` / :meth:`Network.run_until_idle`
  -- advance time;
* :attr:`Network.stats` -- aggregated traffic statistics.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Union

from ..core.config import NoCConfig
from ..core.weights import WeightTable
from ..geometry import Coord, Port
from ..sim import SimulationBackend, make_backend
from .flit import Message
from .nic import NIC
from .router import Router
from .stats import NetworkStats

__all__ = ["Network"]


class Network:
    """A complete wormhole NoC instance on the configured topology."""

    def __init__(
        self,
        config: NoCConfig,
        weight_table: Optional[WeightTable] = None,
        *,
        backend: Union[str, SimulationBackend, None] = None,
    ):
        self.config = config
        # The time-advancement strategy: an explicit argument wins, otherwise
        # the config's sim_backend (default: the cycle-accurate reference).
        self.backend = make_backend(backend if backend is not None else config.sim_backend)
        self.mesh = config.mesh
        self.topology = config.topology
        if config.is_waw and weight_table is None:
            # Default WaW configuration: the all-to-all weights of the
            # topology (closed-form on the XY mesh, flow-derived elsewhere).
            weight_table = WeightTable.from_closed_form(config.mesh)
        self.weight_table = weight_table

        # A null fault model (all rates zero) is treated exactly like no
        # fault model at all: no injector, no HARQ state in the NICs, and a
        # simulation bit-identical to the reliable-link path.
        fault_spec = config.fault_model
        if fault_spec is not None and fault_spec.is_null:
            fault_spec = None
        #: Per-link fault runtime; ``None`` on a reliable network.
        self.fault_injector = fault_spec.instantiate() if fault_spec is not None else None
        reliability = fault_spec.reliability if fault_spec is not None else None

        self.routers: Dict[Coord, Router] = {
            coord: Router(coord, config, weight_table) for coord in self.topology.nodes()
        }
        self.nics: Dict[Coord, NIC] = {
            coord: NIC(coord, config, reliability=reliability)
            for coord in self.topology.nodes()
        }

        self.cycle = 0
        self.stats = NetworkStats()
        for nic in self.nics.values():
            nic.add_listener(self.stats.record_message)

        self._pending_sends: List[Message] = []
        #: Routers currently holding buffered flits (an insertion-ordered
        #: set; a dict for determinism).  Maintained by the step/apply path
        #: as a superset invariant -- every router with work is in here --
        #: and pruned at the end of each cycle, where routers that went
        #: quiet get their one-time arbiter idle refill applied eagerly
        #: (state-equivalent to the refill their next per-cycle step would
        #: perform).  The event-driven backend walks only this set.
        self._busy_routers: Dict[Router, None] = {}
        #: NICs whose injection queue is non-empty, same superset invariant
        #: (inserted by the NICs' work listener on enqueue, pruned at the
        #: end of each cycle).  NICs keep no idle-cycle state, so leaving
        #: the set needs no settling.
        self._busy_nics: Dict[NIC, None] = {}
        for nic in self.nics.values():
            nic.set_work_listener(self._note_busy_nic)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def send(
        self,
        source: Coord,
        destination: Coord,
        payload_flits: int,
        *,
        kind: str = "data",
        context: Optional[object] = None,
    ) -> Message:
        """Create a message and hand it to the source NIC at the current cycle."""
        message = Message(
            source=source,
            destination=destination,
            payload_flits=payload_flits,
            kind=kind,
            context=context,
        )
        self.nics[source].send_message(message, self.cycle)
        self.stats.record_send(message)
        return message

    def add_listener(self, node: Coord, listener: Callable[[Message, int], None]) -> None:
        """Register a completion callback at ``node`` (e.g. a memory controller)."""
        self.nics[node].add_listener(listener)

    def nic(self, node: Coord) -> NIC:
        return self.nics[self.mesh.require(node)]

    def router(self, node: Coord) -> Router:
        return self.routers[self.mesh.require(node)]

    # ------------------------------------------------------------------
    # Simulation loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the network by one clock cycle."""
        events: List[tuple] = []
        now = self.cycle

        for nic in self.nics.values():
            if nic.has_work():
                nic.step(now, events)
        for router in self.routers.values():
            router.step(now, events)

        self._apply_events(events, now)
        self._finish_cycle()

    def step_active(self) -> None:
        """One clock cycle touching only components that can hold work.

        Identical outcome to :meth:`step`: a NIC outside the busy set has an
        empty injection queue and a router outside the busy set has nothing
        buffered, so their per-cycle steps would be no-ops (a leaving
        router's one-time idle refill was applied when it left).  Used by
        the event-driven backend so the per-cycle cost scales with the
        traffic, not with the network size.
        """
        events: List[tuple] = []
        now = self.cycle

        for nic in self._busy_nics:
            nic.step(now, events)
        for router in list(self._busy_routers):
            router.step(now, events)

        self._apply_events(events, now)
        self._finish_cycle()

    def _note_busy_nic(self, nic: NIC) -> None:
        """NIC work listener: its injection queue just went non-empty."""
        self._busy_nics[nic] = None

    def _finish_cycle(self) -> None:
        """Prune the busy sets (settling leaving routers) and advance time."""
        emptied = [router for router in self._busy_routers if not router.has_work()]
        for router in emptied:
            router._settle_idle()
            del self._busy_routers[router]
        drained = [nic for nic in self._busy_nics if not nic.has_work()]
        for nic in drained:
            del self._busy_nics[nic]
        self.cycle += 1

    def run(self, cycles: int) -> None:
        """Advance the network by ``cycles`` clock cycles."""
        if cycles < 0:
            raise ValueError("cycles must be >= 0")
        for _ in range(cycles):
            self.step()

    def is_idle(self) -> bool:
        """True when no flit is buffered or queued anywhere in the network."""
        return not any(r.has_work() for r in self.routers.values()) and not any(
            n.has_work() for n in self.nics.values()
        )

    def run_until_idle(self, *, max_cycles: int = 1_000_000) -> int:
        """Run until the network drains completely; returns the final cycle.

        Time advancement is delegated to the configured
        :class:`~repro.sim.SimulationBackend` (cycle-accurate stepping or
        event-driven idle-cycle skipping; both produce identical results).
        Raises :class:`~repro.sim.SimulationStallError` -- with the buffered
        flit count and the busiest nodes' occupancy -- if the network has not
        drained after ``max_cycles``.  Dimension-ordered routing on a mesh
        (and on a concentrated mesh) is deadlock-free, so failing to drain
        there would be a simulator bug; on wrapped topologies (torus, ring)
        the wrap links close cyclic channel dependencies and heavily loaded
        traffic *can* genuinely deadlock -- bound the offered load (e.g.
        bounded outstanding request/reply traffic) when simulating those.
        """
        if self.fault_injector is not None:
            self.fault_injector.spec.reliability.validate_drain_budget(max_cycles)
        return self.backend.run_until_idle(self, max_cycles=max_cycles)

    # ------------------------------------------------------------------
    # Activity introspection / bulk idle (event-driven backend support)
    # ------------------------------------------------------------------
    def next_activity_cycle(self) -> Optional[int]:
        """Earliest cycle at which any component can act; ``None`` when idle.

        Conservative lower bound: returns the current cycle whenever a NIC
        holds both queued flits and injection credits, or any head-of-line
        flit is already ready (even if it would turn out to be blocked on
        downstream credits), so skipping up to -- but not into -- the
        returned cycle is always safe.
        """
        now = self.cycle
        best: Optional[int] = None
        for nic in self._busy_nics:
            if nic.ready_to_inject():
                return now
            # A NIC waiting only on ACKs acts again at its retransmit timer.
            timer = nic.next_timer_cycle()
            if timer is not None:
                if timer <= now:
                    return now
                if best is None or timer < best:
                    best = timer
        for router in self._busy_routers:
            ready = router.next_ready_cycle()
            if ready is None:
                continue
            if ready <= now:
                return now
            if best is None or ready < best:
                best = ready
        return best

    def skip_idle_cycles(self, cycles: int) -> None:
        """Advance the clock by ``cycles`` cycles in which nothing can act.

        Only valid when :meth:`next_activity_cycle` is at least ``cycles``
        ahead; replays the skipped steps' sole state effect (arbiters of
        requester-less output ports observing idle cycles) in closed form.
        """
        if cycles <= 0:
            return
        # Routers outside the busy set hold no flits and were settled when
        # they left it; only busy routers accumulate idle-arbiter state.
        for router in self._busy_routers:
            router.skip_cycles(cycles)
        self.cycle += cycles

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def _apply_events(self, events: Iterable[tuple], now: int) -> None:
        timing = self.config.timing
        injector = self.fault_injector
        for event in events:
            tag = event[0]
            if tag == "forward":
                _, router, out_port, flit = event
                downstream = self.topology.downstream(router.coord, out_port)
                if downstream is None:  # pragma: no cover - defensive
                    raise RuntimeError(
                        f"flit forwarded off the topology at {router.coord} {out_port}"
                    )
                if injector is not None:
                    # Faults strike on router-to-router link traversals (the
                    # local NIC-router connection is reliable on-die wiring).
                    # Both backends funnel forwards through this one apply
                    # path, so fault decisions are backend-independent.
                    injector.transmit(router.coord, out_port, flit)
                delay = timing.link_latency + (
                    timing.routing_latency if flit.is_head else timing.flit_cycle
                )
                receiver = self.routers[downstream]
                receiver.accept_flit(out_port, flit, now + delay)
                self._busy_routers[receiver] = None
            elif tag == "eject":
                _, router, flit = event
                self.nics[router.coord].receive_flit(flit, now + 1)
                self.stats.record_flit_hop(flit)
            elif tag == "credit":
                _, router, in_port = event
                if in_port is Port.LOCAL:
                    self.nics[router.coord].return_injection_credit()
                else:
                    upstream = self.topology.upstream(router.coord, in_port)
                    if upstream is None:  # pragma: no cover - defensive
                        raise RuntimeError(f"credit towards a missing neighbour at {router.coord}")
                    self.routers[upstream].return_credit(in_port)
            elif tag == "inject":
                _, nic, flit = event
                delay = timing.routing_latency if flit.is_head else timing.flit_cycle
                receiver = self.routers[nic.coord]
                receiver.accept_flit(Port.LOCAL, flit, now + delay)
                self._busy_routers[receiver] = None
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown event {tag!r}")

    # ------------------------------------------------------------------
    # Introspection helpers (used by tests and experiments)
    # ------------------------------------------------------------------
    def buffered_flits(self) -> int:
        return sum(r.buffered_flits() for r in self.routers.values())

    def total_injected_flits(self) -> int:
        return sum(n.injected_flits for n in self.nics.values())

    def total_ejected_flits(self) -> int:
        return sum(n.ejected_flits for n in self.nics.values())

    def total_retransmissions(self) -> int:
        """Retransmission attempts launched by all NICs (0 without faults)."""
        return sum(n.retransmissions for n in self.nics.values())

    def total_pending_acks(self) -> int:
        """Sent messages across all NICs still waiting for an ACK."""
        return sum(n.pending_acks() for n in self.nics.values())

    def fault_counts(self) -> Dict[str, int]:
        """The fault injector's counters (all zero on a reliable network)."""
        if self.fault_injector is None:
            return {"transmitted": 0, "corrupted": 0, "lost": 0}
        return self.fault_injector.fault_counts()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Network({self.config.describe()}, cycle={self.cycle})"
