"""Input-port flit buffers with credit-based backpressure accounting."""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from .flit import Flit

__all__ = ["FlitBuffer"]


class FlitBuffer:
    """A bounded FIFO of flits attached to one router input port.

    The upstream router (or NIC) tracks a credit per free slot of this
    buffer: it may only forward a flit when a credit is available, and the
    credit is returned when the flit leaves the buffer.  The buffer itself
    only enforces its capacity; credit bookkeeping lives in the router to
    keep the hot loop simple.
    """

    def __init__(self, capacity: int, name: str = "buffer"):
        if capacity < 1:
            raise ValueError("buffer capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._fifo: Deque[Flit] = deque()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._fifo)

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._fifo)

    @property
    def is_full(self) -> bool:
        return len(self._fifo) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._fifo

    # ------------------------------------------------------------------
    def push(self, flit: Flit) -> None:
        """Append a flit; raises if the upstream violated credit flow control."""
        if self.is_full:
            raise OverflowError(f"{self.name}: push into a full buffer (credit protocol violation)")
        self._fifo.append(flit)

    def peek(self) -> Optional[Flit]:
        """Head-of-line flit without removing it (``None`` when empty)."""
        return self._fifo[0] if self._fifo else None

    def pop(self) -> Flit:
        """Remove and return the head-of-line flit."""
        if not self._fifo:
            raise IndexError(f"{self.name}: pop from an empty buffer")
        return self._fifo.popleft()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FlitBuffer({self.name}, {len(self)}/{self.capacity})"
