"""Flits, packets and messages exchanged through the simulated NoC.

The cycle-accurate model works at flit granularity (wormhole switching
forwards packets flit by flit and arbitration decisions are taken when the
*header* flit of a packet requests an output port).  Three levels of
aggregation exist:

* :class:`Message` -- what a core/memory controller sends: a request, a
  cache-line reply, an eviction...  Messages are what the manycore layer and
  the statistics reason about.
* :class:`Packet` -- what the NIC injects after packetization.  A message is
  one packet in the regular design and possibly several minimum-size packets
  under WaP.
* :class:`Flit` -- the unit of link bandwidth and buffering.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from ..geometry import Coord

__all__ = ["FlitType", "Flit", "Packet", "Message"]

_message_ids = itertools.count()
_packet_ids = itertools.count()


class FlitType:
    """Flit type tags (plain constants; cheaper than an Enum in the hot loop)."""

    HEAD = "head"
    BODY = "body"
    TAIL = "tail"
    #: Single-flit packet: simultaneously head and tail.
    HEAD_TAIL = "head_tail"


@dataclass
class Message:
    """An end-to-end transfer between two nodes.

    ``payload_flits`` is the size under regular (single-header) encoding; the
    packetizer of the sending NIC decides how many packets and flits actually
    enter the network.  ``kind`` tags the message for statistics and for the
    manycore protocol handlers (``"load"``, ``"reply"``, ``"eviction"``,
    ``"eviction_ack"``, ``"data"`` ...).  ``context`` is an opaque field the
    manycore layer uses to correlate replies with outstanding requests.
    """

    source: Coord
    destination: Coord
    payload_flits: int
    kind: str = "data"
    context: Optional[object] = None
    message_id: int = field(default_factory=lambda: next(_message_ids))
    #: Per-sender sequence number under the HARQ reliability layer
    #: (``None`` when the network has no fault model).
    sequence: Optional[int] = None
    #: Cycle at which the sending NIC accepted the message.
    created_cycle: Optional[int] = None
    #: Cycle at which the first flit entered the network.
    injection_cycle: Optional[int] = None
    #: Cycle at which the last flit was ejected at the destination.
    completion_cycle: Optional[int] = None

    def __post_init__(self) -> None:
        if self.payload_flits < 1:
            raise ValueError("payload_flits must be >= 1")
        if self.source == self.destination:
            raise ValueError("message source and destination coincide")

    @property
    def latency(self) -> Optional[int]:
        """End-to-end latency in cycles (``None`` while in flight)."""
        if self.completion_cycle is None or self.created_cycle is None:
            return None
        return self.completion_cycle - self.created_cycle

    @property
    def network_latency(self) -> Optional[int]:
        """Latency from first-flit injection to last-flit ejection."""
        if self.completion_cycle is None or self.injection_cycle is None:
            return None
        return self.completion_cycle - self.injection_cycle


@dataclass
class Packet:
    """One network packet: a head flit, optional body flits and a tail."""

    message: Message
    size_flits: int
    index: int
    total: int
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    #: Transmission attempt this packet belongs to (1 = original send;
    #: retransmissions repacketize with higher attempts).
    attempt: int = 1
    #: Set by the fault injector when any flit of this packet was corrupted
    #: or lost in flight; the destination NIC discards faulty packets.
    faulty: bool = False

    def __post_init__(self) -> None:
        if self.size_flits < 1:
            raise ValueError("packets carry at least one flit")

    @property
    def source(self) -> Coord:
        return self.message.source

    @property
    def destination(self) -> Coord:
        return self.message.destination

    def make_flits(self) -> List["Flit"]:
        """Materialise the flits of this packet, in transmission order."""
        flits: List[Flit] = []
        for i in range(self.size_flits):
            if self.size_flits == 1:
                ftype = FlitType.HEAD_TAIL
            elif i == 0:
                ftype = FlitType.HEAD
            elif i == self.size_flits - 1:
                ftype = FlitType.TAIL
            else:
                ftype = FlitType.BODY
            flits.append(Flit(packet=self, sequence=i, flit_type=ftype))
        return flits


@dataclass
class Flit:
    """The unit of buffering and link bandwidth."""

    packet: Packet
    sequence: int
    flit_type: str
    #: Cycle at which the flit becomes visible at the head of its current
    #: buffer (set by the router/NIC when the flit is enqueued).
    ready_cycle: int = 0
    #: Fault-injection marks: a corrupted flit carries damaged payload, a
    #: lost flit is an erasure.  Either mark also sets ``packet.faulty``.
    corrupted: bool = False
    lost: bool = False

    @property
    def is_head(self) -> bool:
        return self.flit_type in (FlitType.HEAD, FlitType.HEAD_TAIL)

    @property
    def is_tail(self) -> bool:
        return self.flit_type in (FlitType.TAIL, FlitType.HEAD_TAIL)

    @property
    def destination(self) -> Coord:
        return self.packet.destination

    @property
    def source(self) -> Coord:
        return self.packet.source

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Flit(pkt={self.packet.packet_id}, seq={self.sequence}, "
            f"{self.flit_type}, {self.source}->{self.destination})"
        )
