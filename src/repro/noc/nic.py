"""Network interface controller (NIC) model.

The NIC sits between a node (core or memory controller) and its router.  On
the send side it packetizes messages according to the configured policy
(regular single-packet or WaP minimum-size slicing), serialises the resulting
flits and injects them into the router's LOCAL input buffer under credit flow
control, one flit per cycle.  On the receive side it reassembles packets into
messages and notifies registered listeners (the manycore protocol handlers,
the statistics collector) when a message completes.

When the network carries a (non-null) fault model, each NIC additionally
runs the HARQ-style reliability protocol of :mod:`repro.faults`:

* the send side stamps every message with a per-NIC sequence number, tracks
  it as *pending* until acknowledged, and retransmits it -- as a fresh
  packetization with an incremented ``attempt`` number -- when a NACK
  arrives or the (exponentially backed-off) ACK timeout expires;
* the receive side reassembles per ``(message, attempt)``, discards
  attempts whose packets carry fault marks (answering with a NACK so the
  sender can retransmit without waiting for the timeout), delivers each
  message exactly once, and answers clean attempts with an ACK;
* ACK/NACK control messages are themselves ordinary single-flit network
  traffic (kinds ``"harq-ack"`` / ``"harq-nack"``) and can be corrupted or
  lost like any other packet, in which case they are silently dropped and
  the sender's retransmit timer provides recovery;
* a sender that exhausts ``max_retries`` raises
  :class:`~repro.faults.MessageDeliveryError` naming the failing message
  instead of stalling the drain loop silently.

Without a fault model none of this machinery is instantiated and the NIC
behaves bit-identically to the reliable-link model (enforced by the
differential test grid).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..core.config import NoCConfig
from ..core.packetization import MessageDescriptor, Packetizer, make_packetizer
from ..faults.models import MessageDeliveryError, ReliabilityConfig
from ..geometry import Coord
from .flit import Flit, Message, Packet

__all__ = ["ACK_KIND", "CONTROL_KINDS", "NACK_KIND", "NIC"]

#: Callback invoked when a message completes at this NIC: ``f(message, cycle)``.
MessageListener = Callable[[Message, int], None]

#: Kinds of the HARQ control messages (never surfaced to message listeners).
ACK_KIND = "harq-ack"
NACK_KIND = "harq-nack"
CONTROL_KINDS = frozenset((ACK_KIND, NACK_KIND))


class _PendingReliable:
    """Send-side state of one unacknowledged message."""

    __slots__ = ("message", "attempt", "deadline", "queued_flits")

    def __init__(self, message: Message, deadline: int, queued_flits: int):
        self.message = message
        self.attempt = 1
        self.deadline = deadline
        #: Flits of the current attempt still waiting in the injection
        #: queue; the retransmit timer never fires while the attempt is
        #: still being serialised (it re-arms instead).
        self.queued_flits = queued_flits


class _AttemptState:
    """Receive-side reassembly state of one ``(message, attempt)``."""

    __slots__ = ("expected", "tails", "faulty")

    def __init__(self, expected: int):
        self.expected = expected
        self.tails = 0
        self.faulty = False


class NIC:
    """Network interface of one node."""

    def __init__(
        self,
        coord: Coord,
        config: NoCConfig,
        packetizer: Optional[Packetizer] = None,
        *,
        reliability: Optional[ReliabilityConfig] = None,
    ):
        self.coord = coord
        self.config = config
        self.packetizer = packetizer if packetizer is not None else make_packetizer(config)
        #: HARQ parameters; ``None`` on a fault-free network (all of the
        #: reliability state below then stays empty and costs nothing).
        self.reliability = reliability

        #: Flits serialised and waiting to enter the router's LOCAL buffer.
        self._injection_queue: Deque[Flit] = deque()
        #: Called with this NIC when its injection queue goes non-empty
        #: (set by the owning network to track busy NICs incrementally).
        self._work_listener: Optional[Callable[["NIC"], None]] = None
        #: Credits towards the router's LOCAL input buffer.
        self.injection_credits = config.buffer_depth
        #: Packets of partially received messages: message_id -> tail flits seen.
        self._reassembly: Dict[int, int] = {}
        self._expected_packets: Dict[int, int] = {}
        self._pending_messages: Dict[int, Message] = {}

        # Reliability (HARQ) state -- all empty unless ``reliability`` is set.
        self._sequence_counter = 0
        #: Unacknowledged sent messages: message_id -> pending record.
        self._pending: Dict[int, _PendingReliable] = {}
        #: Receive-side reassembly per (message_id, attempt).
        self._attempts: Dict[Tuple[int, int], _AttemptState] = {}
        #: Message ids already delivered to the listeners (duplicates from
        #: crossed retransmissions are re-ACKed but not redelivered).
        self._delivered: set = set()

        self.sent_messages: List[Message] = []
        self.received_messages: List[Message] = []
        self._listeners: List[MessageListener] = []

        # Statistics
        self.injected_flits = 0
        self.ejected_flits = 0
        self.retransmissions = 0
        self.acks_sent = 0
        self.nacks_sent = 0
        self.control_messages_sent = 0
        self.dropped_control_packets = 0
        self.duplicate_deliveries = 0

    # ------------------------------------------------------------------
    # Send side
    # ------------------------------------------------------------------
    def set_work_listener(self, listener: Optional[Callable[["NIC"], None]]) -> None:
        """Register the queue-went-non-empty callback (one per NIC)."""
        self._work_listener = listener

    def send_message(self, message: Message, now: int) -> None:
        """Accept a message from the node, packetize it and queue its flits."""
        if message.source != self.coord:
            raise ValueError(
                f"NIC at {self.coord} asked to send a message whose source is {message.source}"
            )
        had_work = self.has_work()
        message.created_cycle = now
        if self.reliability is not None:
            message.sequence = self._sequence_counter
            self._sequence_counter += 1
            queued = self._enqueue_packets(message, attempt=1)
            self._pending[message.message_id] = _PendingReliable(
                message,
                deadline=now + self.reliability.retry_timeout(1),
                queued_flits=queued,
            )
        else:
            self._enqueue_packets(message, attempt=1)
        self.sent_messages.append(message)
        if not had_work and self._work_listener is not None:
            self._work_listener(self)

    def _enqueue_packets(self, message: Message, attempt: int) -> int:
        """Packetize ``message`` and queue its flits; returns the flit count."""
        descriptor = MessageDescriptor(payload_flits=message.payload_flits, kind=message.kind)
        queued = 0
        for pkt_desc in self.packetizer.packetize(descriptor):
            packet = Packet(
                message=message,
                size_flits=pkt_desc.flits,
                index=pkt_desc.index,
                total=pkt_desc.total,
                attempt=attempt,
            )
            for flit in packet.make_flits():
                self._injection_queue.append(flit)
                queued += 1
        return queued

    def pending_injection_flits(self) -> int:
        return len(self._injection_queue)

    def has_work(self) -> bool:
        return bool(self._injection_queue) or bool(self._pending)

    def ready_to_inject(self) -> bool:
        """True when :meth:`step` would inject a flit this cycle.

        A NIC with queued flits but no credits is inert until a credit event
        returns -- the event-driven backend uses this to tell the two apart.
        """
        return bool(self._injection_queue) and self.injection_credits > 0

    def next_timer_cycle(self) -> Optional[int]:
        """Earliest pending retransmit deadline (``None`` without pending)."""
        if not self._pending:
            return None
        return min(pending.deadline for pending in self._pending.values())

    def step(self, now: int, events: List[Tuple]) -> None:
        """Service retransmit timers, then inject at most one flit this cycle."""
        if self._pending:
            self._service_timers(now)
        if not self._injection_queue or self.injection_credits <= 0:
            return
        flit = self._injection_queue.popleft()
        self.injection_credits -= 1
        message = flit.packet.message
        if message.injection_cycle is None:
            message.injection_cycle = now
        if self._pending:
            pending = self._pending.get(message.message_id)
            if pending is not None and pending.queued_flits > 0:
                pending.queued_flits -= 1
                if pending.queued_flits == 0:
                    # The attempt is now fully in the network: start the ACK
                    # wait here, so queueing delay cannot eat the timeout
                    # window and trigger spurious retransmissions.
                    pending.deadline = now + self.reliability.retry_timeout(pending.attempt)
        self.injected_flits += 1
        events.append(("inject", self, flit))

    def return_injection_credit(self) -> None:
        """The router freed one slot of its LOCAL input buffer."""
        self.injection_credits += 1
        if self.injection_credits > self.config.buffer_depth:
            raise RuntimeError(f"NIC {self.coord}: injection credit overflow")

    # ------------------------------------------------------------------
    # Reliability protocol (send side)
    # ------------------------------------------------------------------
    def _service_timers(self, now: int) -> None:
        """Retransmit every pending message whose ACK deadline expired."""
        for pending in list(self._pending.values()):
            if pending.deadline > now:
                continue
            if pending.queued_flits > 0:
                # Still serialising the current attempt (congested queue):
                # re-arm without consuming a retry.
                pending.deadline = now + self.reliability.retry_timeout(pending.attempt)
                continue
            self._retransmit(pending, now, reason="ACK timeout")

    def _retransmit(self, pending: _PendingReliable, now: int, *, reason: str) -> None:
        """Launch the next transmission attempt or give up with a clear error."""
        reliability = self.reliability
        message = pending.message
        if pending.attempt >= reliability.max_attempts:
            raise MessageDeliveryError(
                f"message {message.message_id} (seq {message.sequence}, kind "
                f"{message.kind!r}, {message.source}->{message.destination}) "
                f"abandoned after {pending.attempt} attempts "
                f"({reliability.max_retries} retransmissions allowed); last "
                f"failure: {reason} at cycle {now}"
            )
        pending.attempt += 1
        self.retransmissions += 1
        pending.queued_flits = self._enqueue_packets(message, attempt=pending.attempt)
        pending.deadline = now + reliability.retry_timeout(pending.attempt)

    def _send_control(self, kind: str, original: Message, attempt: int, now: int) -> None:
        """Queue a single-flit ACK/NACK towards ``original``'s sender."""
        had_work = self.has_work()
        control = Message(
            source=self.coord,
            destination=original.source,
            payload_flits=1,
            kind=kind,
            context=(original.message_id, attempt),
        )
        control.created_cycle = now
        self._enqueue_packets(control, attempt=1)
        self.control_messages_sent += 1
        if not had_work and self._work_listener is not None:
            self._work_listener(self)

    # ------------------------------------------------------------------
    # Receive side
    # ------------------------------------------------------------------
    def add_listener(self, listener: MessageListener) -> None:
        """Register a callback invoked whenever a message completes here."""
        self._listeners.append(listener)

    def receive_flit(self, flit: Flit, now: int) -> None:
        """Accept one ejected flit; complete the message when fully received."""
        self.ejected_flits += 1
        if not flit.is_tail:
            return
        if self.reliability is not None:
            self._receive_tail_reliable(flit, now)
            return
        packet = flit.packet
        message = packet.message
        if message.destination != self.coord:
            raise RuntimeError(
                f"flit for {message.destination} ejected at {self.coord}: routing bug"
            )
        mid = message.message_id
        self._pending_messages[mid] = message
        self._expected_packets[mid] = packet.total
        self._reassembly[mid] = self._reassembly.get(mid, 0) + 1
        if self._reassembly[mid] >= self._expected_packets[mid]:
            message.completion_cycle = now
            self.received_messages.append(message)
            del self._reassembly[mid]
            del self._expected_packets[mid]
            del self._pending_messages[mid]
            for listener in self._listeners:
                listener(message, now)

    def _receive_tail_reliable(self, flit: Flit, now: int) -> None:
        """Tail arrival under the reliability protocol."""
        packet = flit.packet
        message = packet.message
        if message.destination != self.coord:
            raise RuntimeError(
                f"flit for {message.destination} ejected at {self.coord}: routing bug"
            )
        if message.kind in CONTROL_KINDS:
            self._receive_control(packet, flit, now)
            return
        if flit.lost:
            # An erased tail: the receiver cannot even detect that the
            # packet ended, so no reassembly progress and no NACK -- the
            # sender's retransmit timer provides the recovery path.
            return
        mid = message.message_id
        key = (mid, packet.attempt)
        state = self._attempts.get(key)
        if state is None:
            state = self._attempts[key] = _AttemptState(expected=packet.total)
        state.tails += 1
        if packet.faulty:
            state.faulty = True
        if state.tails < state.expected:
            return
        del self._attempts[key]
        if state.faulty:
            # CRC failure somewhere in the attempt: ask for a retransmission
            # instead of waiting for the sender's timeout.
            self.nacks_sent += 1
            self._send_control(NACK_KIND, message, packet.attempt, now)
            return
        self.acks_sent += 1
        self._send_control(ACK_KIND, message, packet.attempt, now)
        if mid in self._delivered:
            # A slow earlier attempt completed after a retransmission
            # already delivered the message: re-ACK (done above), drop.
            self.duplicate_deliveries += 1
            return
        self._delivered.add(mid)
        # Purge partial reassembly state of superseded attempts.
        for stale in [k for k in self._attempts if k[0] == mid]:
            del self._attempts[stale]
        message.completion_cycle = now
        self.received_messages.append(message)
        for listener in self._listeners:
            listener(message, now)

    def _receive_control(self, packet: Packet, flit: Flit, now: int) -> None:
        """Handle an arriving ACK/NACK (addressed to this, the sender, NIC)."""
        if packet.faulty or flit.lost:
            # Control packets get no control packets of their own: a damaged
            # ACK/NACK is silently dropped and the retransmit timer recovers.
            self.dropped_control_packets += 1
            return
        message = packet.message
        mid, attempt = message.context
        pending = self._pending.get(mid)
        if pending is None:
            return  # Stale control for an already-acknowledged message.
        if message.kind == ACK_KIND:
            del self._pending[mid]
            return
        # NACK: retransmit immediately, but only if it names the attempt we
        # are currently waiting on (a NACK for a superseded attempt carries
        # no new information -- the newer attempt is already in flight).
        if pending.attempt == attempt:
            self._retransmit(pending, now, reason=f"NACK for attempt {attempt}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def in_flight_messages(self) -> int:
        """Messages partially received and still being reassembled."""
        return len(self._pending_messages) + len(self._attempts)

    def pending_acks(self) -> int:
        """Sent messages still waiting for an acknowledgement."""
        return len(self._pending)

    def reliability_state(self) -> Optional[Dict[str, int]]:
        """Snapshot of the in-flight retransmit state (``None`` when clean).

        Surfaced by the stall diagnostics so a drain timeout under faults
        shows which NICs were still waiting on ACKs and how hard they had
        been retrying.
        """
        if not self._pending:
            return None
        return {
            "pending_acks": len(self._pending),
            "max_attempt": max(p.attempt for p in self._pending.values()),
            "next_deadline": min(p.deadline for p in self._pending.values()),
            "queued_retransmit_flits": sum(p.queued_flits for p in self._pending.values()),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NIC({self.coord}, queue={len(self._injection_queue)}, "
            f"credits={self.injection_credits})"
        )
