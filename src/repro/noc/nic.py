"""Network interface controller (NIC) model.

The NIC sits between a node (core or memory controller) and its router.  On
the send side it packetizes messages according to the configured policy
(regular single-packet or WaP minimum-size slicing), serialises the resulting
flits and injects them into the router's LOCAL input buffer under credit flow
control, one flit per cycle.  On the receive side it reassembles packets into
messages and notifies registered listeners (the manycore protocol handlers,
the statistics collector) when a message completes.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..core.config import NoCConfig
from ..core.packetization import MessageDescriptor, Packetizer, make_packetizer
from ..geometry import Coord
from .flit import Flit, Message, Packet

__all__ = ["NIC"]

#: Callback invoked when a message completes at this NIC: ``f(message, cycle)``.
MessageListener = Callable[[Message, int], None]


class NIC:
    """Network interface of one node."""

    def __init__(
        self,
        coord: Coord,
        config: NoCConfig,
        packetizer: Optional[Packetizer] = None,
    ):
        self.coord = coord
        self.config = config
        self.packetizer = packetizer if packetizer is not None else make_packetizer(config)

        #: Flits serialised and waiting to enter the router's LOCAL buffer.
        self._injection_queue: Deque[Flit] = deque()
        #: Called with this NIC when its injection queue goes non-empty
        #: (set by the owning network to track busy NICs incrementally).
        self._work_listener: Optional[Callable[["NIC"], None]] = None
        #: Credits towards the router's LOCAL input buffer.
        self.injection_credits = config.buffer_depth
        #: Packets of partially received messages: message_id -> tail flits seen.
        self._reassembly: Dict[int, int] = {}
        self._expected_packets: Dict[int, int] = {}
        self._pending_messages: Dict[int, Message] = {}

        self.sent_messages: List[Message] = []
        self.received_messages: List[Message] = []
        self._listeners: List[MessageListener] = []

        # Statistics
        self.injected_flits = 0
        self.ejected_flits = 0

    # ------------------------------------------------------------------
    # Send side
    # ------------------------------------------------------------------
    def set_work_listener(self, listener: Optional[Callable[["NIC"], None]]) -> None:
        """Register the queue-went-non-empty callback (one per NIC)."""
        self._work_listener = listener

    def send_message(self, message: Message, now: int) -> None:
        """Accept a message from the node, packetize it and queue its flits."""
        if message.source != self.coord:
            raise ValueError(
                f"NIC at {self.coord} asked to send a message whose source is {message.source}"
            )
        was_idle = not self._injection_queue
        message.created_cycle = now
        descriptor = MessageDescriptor(payload_flits=message.payload_flits, kind=message.kind)
        packets = self.packetizer.packetize(descriptor)
        for pkt_desc in packets:
            packet = Packet(
                message=message,
                size_flits=pkt_desc.flits,
                index=pkt_desc.index,
                total=pkt_desc.total,
            )
            for flit in packet.make_flits():
                self._injection_queue.append(flit)
        self.sent_messages.append(message)
        if was_idle and self._injection_queue and self._work_listener is not None:
            self._work_listener(self)

    def pending_injection_flits(self) -> int:
        return len(self._injection_queue)

    def has_work(self) -> bool:
        return bool(self._injection_queue)

    def ready_to_inject(self) -> bool:
        """True when :meth:`step` would inject a flit this cycle.

        A NIC with queued flits but no credits is inert until a credit event
        returns -- the event-driven backend uses this to tell the two apart.
        """
        return bool(self._injection_queue) and self.injection_credits > 0

    def step(self, now: int, events: List[Tuple]) -> None:
        """Inject at most one flit into the router's LOCAL buffer this cycle."""
        if not self._injection_queue or self.injection_credits <= 0:
            return
        flit = self._injection_queue.popleft()
        self.injection_credits -= 1
        message = flit.packet.message
        if message.injection_cycle is None:
            message.injection_cycle = now
        self.injected_flits += 1
        events.append(("inject", self, flit))

    def return_injection_credit(self) -> None:
        """The router freed one slot of its LOCAL input buffer."""
        self.injection_credits += 1
        if self.injection_credits > self.config.buffer_depth:
            raise RuntimeError(f"NIC {self.coord}: injection credit overflow")

    # ------------------------------------------------------------------
    # Receive side
    # ------------------------------------------------------------------
    def add_listener(self, listener: MessageListener) -> None:
        """Register a callback invoked whenever a message completes here."""
        self._listeners.append(listener)

    def receive_flit(self, flit: Flit, now: int) -> None:
        """Accept one ejected flit; complete the message when fully received."""
        self.ejected_flits += 1
        if not flit.is_tail:
            return
        packet = flit.packet
        message = packet.message
        if message.destination != self.coord:
            raise RuntimeError(
                f"flit for {message.destination} ejected at {self.coord}: routing bug"
            )
        mid = message.message_id
        self._pending_messages[mid] = message
        self._expected_packets[mid] = packet.total
        self._reassembly[mid] = self._reassembly.get(mid, 0) + 1
        if self._reassembly[mid] >= self._expected_packets[mid]:
            message.completion_cycle = now
            self.received_messages.append(message)
            del self._reassembly[mid]
            del self._expected_packets[mid]
            del self._pending_messages[mid]
            for listener in self._listeners:
                listener(message, now)

    def in_flight_messages(self) -> int:
        """Messages partially received and still being reassembled."""
        return len(self._pending_messages)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NIC({self.coord}, queue={len(self._injection_queue)}, "
            f"credits={self.injection_credits})"
        )
