"""Traffic statistics collected during a simulation run."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from statistics import mean
from typing import Dict, List, Optional, Tuple

from ..geometry import Coord
from .flit import Flit, Message

__all__ = ["LatencySummary", "NetworkStats"]


@dataclass(frozen=True)
class LatencySummary:
    """Aggregate latency figures over a set of completed messages."""

    count: int
    minimum: int
    average: float
    maximum: int

    @classmethod
    def from_values(cls, values: List[int]) -> "LatencySummary":
        if not values:
            raise ValueError("no latency samples")
        return cls(count=len(values), minimum=min(values), average=mean(values), maximum=max(values))


@dataclass
class NetworkStats:
    """Per-run counters and per-message latency records."""

    sent_messages: int = 0
    completed_messages: int = 0
    ejected_flits: int = 0
    #: Completed messages, in completion order.
    messages: List[Message] = field(default_factory=list)
    #: Completed message count per (source, destination) pair.
    per_flow_completed: Dict[Tuple[Coord, Coord], int] = field(
        default_factory=lambda: defaultdict(int)
    )

    # ------------------------------------------------------------------
    # Recording hooks (wired by the Network)
    # ------------------------------------------------------------------
    def record_send(self, message: Message) -> None:
        self.sent_messages += 1

    def record_message(self, message: Message, cycle: int) -> None:
        self.completed_messages += 1
        self.messages.append(message)
        self.per_flow_completed[(message.source, message.destination)] += 1

    def record_flit_hop(self, flit: Flit) -> None:
        self.ejected_flits += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def latencies(
        self,
        *,
        kind: Optional[str] = None,
        source: Optional[Coord] = None,
        destination: Optional[Coord] = None,
        network_only: bool = False,
    ) -> List[int]:
        """Latency samples of completed messages matching the filters.

        ``network_only`` selects injection-to-ejection latency (excluding NIC
        queueing); the default is creation-to-completion latency.
        """
        values: List[int] = []
        for message in self.messages:
            if kind is not None and message.kind != kind:
                continue
            if source is not None and message.source != source:
                continue
            if destination is not None and message.destination != destination:
                continue
            latency = message.network_latency if network_only else message.latency
            if latency is not None:
                values.append(latency)
        return values

    def latency_summary(self, **filters) -> LatencySummary:
        """Aggregate latency summary over the messages matching ``filters``."""
        return LatencySummary.from_values(self.latencies(**filters))

    def worst_latency(self, **filters) -> int:
        """Largest observed latency (used to validate analytical bounds)."""
        return max(self.latencies(**filters))

    def throughput(self, cycles: int) -> float:
        """Completed messages per cycle over a run of ``cycles`` cycles."""
        if cycles <= 0:
            raise ValueError("cycles must be positive")
        return self.completed_messages / cycles

    def completed_for_flow(self, source: Coord, destination: Coord) -> int:
        return self.per_flow_completed.get((source, destination), 0)
