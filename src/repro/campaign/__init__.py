"""Campaign layer: sharded, resumable, blind-validated sweep campaigns.

Builds on :mod:`repro.api` (jobs, engine, sweeps) and :mod:`repro.service`
(the durable result store, optionally a running daemon) to run large design
-space sweeps as *campaigns*:

>>> from repro.campaign import Campaign
>>> campaign = Campaign.from_grid(mesh=(2, 3), design=("regular", "waw_wap"),
...                               name="demo", shard_size=2, holdout=1,
...                               store=store)      # doctest: +SKIP
>>> report = campaign.run()                         # doctest: +SKIP
>>> print(report.render())                          # doctest: +SKIP

See :mod:`repro.campaign.campaign` for the execution model (checkpointed
shards, resume semantics, held-out blind validation),
:mod:`repro.campaign.sharding` for the deterministic shard layout and
:mod:`repro.campaign.report` for the structured report.
"""

from .campaign import (
    CHECKPOINT_EXPERIMENT,
    MANIFEST_FORMAT,
    Campaign,
    CampaignError,
    HoldoutViolation,
)
from .report import REPORT_FORMAT, CampaignReport
from .sharding import ROLE_BLIND, ROLE_HOLDOUT, Shard, make_shards, shard_id_for

__all__ = [
    "Campaign",
    "CampaignError",
    "CampaignReport",
    "HoldoutViolation",
    "Shard",
    "make_shards",
    "shard_id_for",
    "CHECKPOINT_EXPERIMENT",
    "MANIFEST_FORMAT",
    "REPORT_FORMAT",
    "ROLE_BLIND",
    "ROLE_HOLDOUT",
]
