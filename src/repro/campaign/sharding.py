"""Deterministic sharding of a campaign's job list.

A campaign's grid (an explicit :class:`~repro.api.BatchJob` list or an
expanded :func:`repro.api.sweep` grid) is chunked *in grid order* into
shards of at most ``shard_size`` jobs.  Each shard's identity is derived
purely from its members' config hashes (:func:`repro.api.config_hash`), so
the same grid always produces the same shards with the same IDs -- across
processes, machines and interruptions.  That stability is what makes shard
checkpoints resumable: a restarted campaign recomputes shard IDs from the
manifest and finds its completed shards in the store.

The *held-out* subset used for blind validation (see
:class:`repro.campaign.Campaign`) is also content-derived: the ``holdout``
shards with the lexicographically smallest shard IDs.  Because the IDs are
hashes, the selection is deterministic yet effectively arbitrary with
respect to the grid layout -- reordering the grid axes cannot steer a
chosen design point into (or out of) the held-out set.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..api.engine import BatchJob, config_hash

__all__ = ["Shard", "make_shards", "shard_id_for"]

#: Salt separating shard digests from job config hashes in a shared store.
_SHARD_SALT = "repro-campaign-shard:"

#: Shard roles.
ROLE_HOLDOUT = "holdout"
ROLE_BLIND = "blind"


def shard_id_for(job_hashes: Sequence[str]) -> str:
    """The content-derived identity of one shard (16 hex digits).

    Distinct from any member job's config hash by construction (the salt),
    so shard checkpoints and job results can share one
    :class:`~repro.service.store.ResultStore` without key collisions.
    """
    blob = _SHARD_SALT + ",".join(job_hashes)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class Shard:
    """One work unit of a campaign: an ordered slice of the job grid."""

    index: int
    shard_id: str
    role: str  # ROLE_HOLDOUT or ROLE_BLIND
    jobs: Tuple[BatchJob, ...]
    job_hashes: Tuple[str, ...]

    def describe(self) -> str:
        return (
            f"shard {self.index} [{self.shard_id}] ({self.role}, "
            f"{len(self.jobs)} job(s))"
        )


def make_shards(
    jobs: Sequence[BatchJob], *, shard_size: int, holdout: int
) -> List[Shard]:
    """Chunk ``jobs`` into shards and assign held-out roles.

    ``shard_size`` is the maximum jobs per shard (the last shard may be
    smaller); ``holdout`` is how many shards form the blind-validation
    subset -- it must leave at least one shard to unblind.  Returns the
    shards in grid order.
    """
    if shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    if holdout < 0:
        raise ValueError("holdout must be >= 0")
    jobs = list(jobs)
    if not jobs:
        raise ValueError("a campaign needs at least one job")
    chunks = [jobs[i : i + shard_size] for i in range(0, len(jobs), shard_size)]
    if holdout >= len(chunks):
        raise ValueError(
            f"holdout={holdout} must leave at least one shard to unblind "
            f"({len(chunks)} shard(s) total; lower holdout or shard_size)"
        )
    hashes = [tuple(config_hash(job) for job in chunk) for chunk in chunks]
    ids = [shard_id_for(chunk_hashes) for chunk_hashes in hashes]
    held_out = set(sorted(ids)[:holdout])
    return [
        Shard(
            index=index,
            shard_id=shard_id,
            role=ROLE_HOLDOUT if shard_id in held_out else ROLE_BLIND,
            jobs=tuple(chunk),
            job_hashes=chunk_hashes,
        )
        for index, (chunk, chunk_hashes, shard_id) in enumerate(
            zip(chunks, hashes, ids)
        )
    ]
