"""Sharded, resumable, blind-validated sweep campaigns.

A :class:`Campaign` turns a job grid (an explicit
:class:`~repro.api.BatchJob` list, or :func:`repro.api.sweep` axes via
:meth:`Campaign.from_grid`) into deterministic shards
(:mod:`repro.campaign.sharding`) and drives them through the batch engine or
a running analysis daemon with three guarantees:

* **No lost batches.**  Every design point runs through the engine's
  error-capturing worker path, so a raising point becomes a recorded
  ``failed`` outcome inside its shard instead of aborting it.
* **Resume with zero recomputation.**  Each completed shard is checkpointed
  to the shared :class:`~repro.service.store.ResultStore` under its
  content-derived shard ID; an interrupted campaign rerun with
  ``resume=True`` (the default) serves completed shards straight from the
  store and produces a byte-identical
  :meth:`~repro.campaign.report.CampaignReport.result_set`.
* **Blind validation.**  The held-out shard subset (content-derived, see
  :mod:`repro.campaign.sharding`) runs *first*; the full result set is only
  unblinded -- i.e. the blind shards are only computed -- once every
  held-out shard passes the campaign's acceptance predicate.  A violation
  raises :class:`HoldoutViolation` before any blind shard runs, mirroring
  the blind-analysis discipline of
  :mod:`repro.experiments.bound_comparison`.

The campaign's grid is persisted as a *manifest* under
``<store_root>/campaigns/<campaign_id>.json``, so ``campaign resume`` and
``campaign report`` (see :mod:`repro.experiments.runner`) can rebuild the
exact job list from the campaign ID alone.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from ..api.engine import BatchEngine, BatchJob, BatchResult
from ..api.results import ExperimentResult, ResultEncoder
from ..api.scenario import Scenario, sweep_jobs
from ..service.protocol import job_to_wire, jobs_from_wire
from ..service.store import ResultStore
from .report import CampaignReport
from .sharding import ROLE_BLIND, ROLE_HOLDOUT, Shard, make_shards

__all__ = [
    "Campaign",
    "CampaignError",
    "HoldoutViolation",
    "CHECKPOINT_EXPERIMENT",
    "MANIFEST_FORMAT",
]

#: Pseudo-experiment name under which shard checkpoints live in the store.
CHECKPOINT_EXPERIMENT = "campaign_shard"

#: Format tag written into every manifest (bump on incompatible layout).
MANIFEST_FORMAT = 1

#: Subdirectory of the store root holding campaign manifests.  Manifests
#: must not live in the store root itself: their filenames are campaign IDs,
#: which the store's digest check would reject during clear()/keys().
_MANIFEST_DIR = "campaigns"

_CAMPAIGN_SALT = "repro-campaign:"

#: An acceptance predicate judges one held-out shard record and returns
#: True/None (pass), False, a violation string, or an iterable of violation
#: strings (empty = pass).
AcceptancePredicate = Callable[[Dict[str, Any]], Any]


class CampaignError(RuntimeError):
    """A campaign could not be built, executed or resumed."""


class HoldoutViolation(CampaignError):
    """A held-out shard failed its acceptance predicate; the full result
    set stays blind (no blind shard was computed)."""

    def __init__(self, campaign_id: str, violations: Sequence[str]) -> None:
        self.campaign_id = campaign_id
        self.violations = list(violations)
        details = "; ".join(self.violations)
        super().__init__(
            f"campaign {campaign_id}: held-out validation failed, refusing to "
            f"unblind the full result set: {details}"
        )


def _default_acceptance(record: Mapping[str, Any]) -> List[str]:
    """The default predicate: a held-out shard must have no failed point."""
    return [
        f"design point {job.get('config_hash')} ({job.get('experiment')}) "
        f"failed: {job.get('error')}"
        for job in record["jobs"]
        if job.get("status") == "failed"
    ]


class Campaign:
    """One sharded, resumable sweep over a fixed job grid.

    ``jobs`` fixes the grid (order matters: it defines the shard layout);
    ``shard_size``/``holdout`` control sharding (see
    :func:`~repro.campaign.sharding.make_shards`); ``acceptance`` is the
    held-out predicate (default: no failed design point in a held-out
    shard).  Execution goes through ``engine`` (default: a fresh
    :class:`~repro.api.BatchEngine` with ``engine_jobs`` workers over the
    campaign's store) or, when ``client`` is given, a running analysis
    daemon via :class:`~repro.service.ServiceClient`.  ``store`` is the
    durable checkpoint/result store (default: the engine's store, else
    :func:`~repro.service.store.default_store_dir`).
    """

    def __init__(
        self,
        jobs: Sequence[Union[BatchJob, Scenario]],
        *,
        name: str = "campaign",
        shard_size: int = 4,
        holdout: int = 1,
        acceptance: Optional[AcceptancePredicate] = None,
        store: Optional[ResultStore] = None,
        engine: Optional[BatchEngine] = None,
        engine_jobs: int = 1,
        client: Optional[Any] = None,
    ) -> None:
        if not name:
            raise CampaignError("a campaign needs a non-empty name")
        self.name = name
        self.jobs: List[BatchJob] = [
            job.as_job() if isinstance(job, Scenario) else job for job in jobs
        ]
        if not all(isinstance(job, BatchJob) for job in self.jobs):
            raise CampaignError("jobs must be BatchJob or Scenario values")
        self.acceptance: AcceptancePredicate = (
            acceptance if acceptance is not None else _default_acceptance
        )
        if store is None:
            store = engine.store if engine is not None and engine.store is not None else ResultStore()
        self.store = store
        if engine is None:
            engine = BatchEngine(jobs=engine_jobs, store=store)
        self.engine = engine
        self.client = client
        self.shard_size = shard_size
        self.holdout = holdout
        try:
            self._shards = make_shards(
                self.jobs, shard_size=shard_size, holdout=holdout
            )
        except ValueError as exc:
            raise CampaignError(str(exc)) from None
        self.campaign_id = _campaign_id(name, [s.shard_id for s in self._shards], holdout)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_grid(
        cls,
        base: Optional[Scenario] = None,
        *,
        experiment: str = "scenario_wctt",
        quick: bool = False,
        **options: Any,
    ) -> "Campaign":
        """Build a campaign straight from :func:`repro.api.sweep` axes.

        Keyword arguments that name campaign knobs (``name``,
        ``shard_size``, ``holdout``, ``acceptance``, ``store``, ``engine``,
        ``engine_jobs``, ``client``) configure the campaign; everything else
        is a sweep axis.
        """
        campaign_keys = (
            "name", "shard_size", "holdout", "acceptance",
            "store", "engine", "engine_jobs", "client",
        )
        campaign_kwargs = {k: options.pop(k) for k in campaign_keys if k in options}
        jobs = sweep_jobs(base, experiment=experiment, quick=quick, **options)
        return cls(jobs, **campaign_kwargs)

    @classmethod
    def load(
        cls,
        campaign_id: str,
        *,
        store: Optional[ResultStore] = None,
        **kwargs: Any,
    ) -> "Campaign":
        """Rebuild a campaign from its persisted manifest.

        The manifest pins the exact grid, name and sharding parameters, so
        the rebuilt campaign has the same ID and finds its checkpoints.
        """
        store = store if store is not None else ResultStore()
        path = _manifest_path(store.root, campaign_id)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError) as exc:
            raise CampaignError(
                f"cannot load campaign {campaign_id!r} from {path}: {exc}"
            ) from None
        try:
            info = manifest["campaign"]
            campaign = cls(
                jobs_from_wire(manifest["jobs"]),
                name=info["name"],
                shard_size=int(info["shard_size"]),
                holdout=int(info["holdout_shards"]),
                store=store,
                **kwargs,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CampaignError(f"malformed campaign manifest {path}: {exc}") from None
        if campaign.campaign_id != campaign_id:
            raise CampaignError(
                f"manifest {path} rebuilds to campaign {campaign.campaign_id}, "
                f"not {campaign_id} (package version changed? config hashes "
                f"include the version, so campaigns do not span releases)"
            )
        return campaign

    @staticmethod
    def saved_campaigns(store: ResultStore) -> List[str]:
        """The IDs of every manifest persisted under ``store``, sorted."""
        directory = os.path.join(store.root, _MANIFEST_DIR)
        try:
            names = os.listdir(directory)
        except OSError:
            return []
        return sorted(
            name[: -len(".json")]
            for name in names
            if name.endswith(".json") and not name.startswith(".")
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def shards(self) -> List[Shard]:
        """The campaign's shards in grid order."""
        return list(self._shards)

    def describe(self) -> str:
        return (
            f"campaign {self.name!r} [{self.campaign_id}]: {len(self.jobs)} "
            f"job(s) in {len(self._shards)} shard(s), {self.holdout} held out"
        )

    # ------------------------------------------------------------------
    # Manifest persistence
    # ------------------------------------------------------------------
    def save_manifest(self) -> str:
        """Persist the grid under the store; returns the manifest path."""
        directory = os.path.join(self.store.root, _MANIFEST_DIR)
        try:
            os.makedirs(directory, exist_ok=True)
        except OSError as exc:
            raise CampaignError(f"cannot create manifest directory: {exc}") from None
        manifest = {
            "manifest_format": MANIFEST_FORMAT,
            "campaign": {
                "id": self.campaign_id,
                "name": self.name,
                "shard_size": self.shard_size,
                "holdout_shards": self.holdout,
            },
            "shard_ids": [s.shard_id for s in self._shards],
            "jobs": [job_to_wire(job) for job in self.jobs],
        }
        path = _manifest_path(self.store.root, self.campaign_id)
        tmp_path = path + f".tmp.{os.getpid()}"
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, indent=2, cls=ResultEncoder)
                handle.write("\n")
            os.replace(tmp_path, path)
        except OSError as exc:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise CampaignError(f"cannot write campaign manifest: {exc}") from None
        return path

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        *,
        resume: bool = True,
        progress: Optional[Callable[[Shard, Dict[str, Any]], None]] = None,
    ) -> CampaignReport:
        """Run the campaign: held-out shards first, then -- if they pass
        acceptance -- the blind remainder.

        With ``resume=True`` (the default) shards already checkpointed in
        the store are served without recomputation.  ``progress`` is called
        after each shard completes (checkpoint already durable), so an
        exception raised from it models an interruption the next ``run``
        resumes from.  Raises :class:`HoldoutViolation` when a held-out
        shard fails acceptance; no blind shard is computed in that case.
        """
        self.save_manifest()
        records: Dict[int, Dict[str, Any]] = {}

        held_out = [s for s in self._shards if s.role == ROLE_HOLDOUT]
        blind = [s for s in self._shards if s.role == ROLE_BLIND]

        violations: List[str] = []
        for shard in held_out:
            record = self._run_shard(shard, resume=resume)
            records[shard.index] = record
            violations.extend(self._judge(shard, record))
            if progress is not None:
                progress(shard, record)
        if violations:
            raise HoldoutViolation(self.campaign_id, violations)

        for shard in blind:
            record = self._run_shard(shard, resume=resume)
            records[shard.index] = record
            if progress is not None:
                progress(shard, record)

        return self._build_report(
            [records[s.index] for s in self._shards], holdout_passed=True
        )

    def collect(self) -> CampaignReport:
        """Report-only view of the current checkpoint state (no execution).

        Shards without a checkpoint appear as ``pending``; ``holdout_passed``
        is only True when every held-out shard is done and passes
        acceptance.  Never raises :class:`HoldoutViolation` -- violations
        become report anomalies instead.
        """
        records: List[Dict[str, Any]] = []
        violations: List[str] = []
        holdout_done = True
        for shard in self._shards:
            record = self._checkpointed_record(shard)
            if record is None:
                record = _pending_record(shard)
                if shard.role == ROLE_HOLDOUT:
                    holdout_done = False
            elif shard.role == ROLE_HOLDOUT:
                violations.extend(self._judge(shard, record))
            records.append(record)
        passed = holdout_done and not violations
        report = self._build_report(records, holdout_passed=passed)
        report.extra_anomalies.extend(violations)
        return report

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _judge(self, shard: Shard, record: Dict[str, Any]) -> List[str]:
        """Normalise the acceptance predicate's verdict on one shard."""
        verdict = self.acceptance(record)
        prefix = f"shard {shard.index} [{shard.shard_id}]"
        if verdict is None or verdict is True:
            return []
        if verdict is False:
            return [f"{prefix}: acceptance predicate rejected the shard"]
        if isinstance(verdict, str):
            return [f"{prefix}: {verdict}"]
        if isinstance(verdict, Iterable):
            return [f"{prefix}: {item}" for item in verdict]
        raise CampaignError(
            f"acceptance predicate returned {verdict!r}; expected "
            "True/None/False, a string or an iterable of strings"
        )

    def _run_shard(self, shard: Shard, *, resume: bool) -> Dict[str, Any]:
        if resume:
            record = self._checkpointed_record(shard)
            if record is not None:
                return record
        start = time.perf_counter()
        if self.client is not None:
            job_records, executor, worker_jobs = self._execute_service(shard)
        else:
            job_records, executor, worker_jobs = self._execute_engine(shard)
        duration = time.perf_counter() - start
        record = {
            "index": shard.index,
            "shard_id": shard.shard_id,
            "role": shard.role,
            "status": "done",
            "resumed": False,
            "executor": executor,
            "worker_jobs": worker_jobs,
            "duration_seconds": round(duration, 6),
            "jobs": job_records,
        }
        self._write_checkpoint(shard, record)
        return record

    def _execute_engine(self, shard: Shard):
        results: List[BatchResult] = self.engine.run_many(list(shard.jobs))
        job_records = [
            {
                "config_hash": result.config_hash,
                "experiment": result.job.experiment,
                "quick": result.job.quick,
                "status": "ok" if result.ok else "failed",
                "error": result.error,
                "cached": result.cached,
                "duration_seconds": round(result.duration_seconds, 6),
            }
            for result in results
        ]
        return job_records, "engine", self.engine.jobs

    def _execute_service(self, shard: Shard):
        response = self.client.submit(list(shard.jobs), wait=True)
        job_records = []
        for job, digest, ticket in zip(
            shard.jobs, shard.job_hashes, response.get("tickets", [])
        ):
            error = ticket.get("error")
            job_records.append(
                {
                    "config_hash": ticket.get("hash", digest),
                    "experiment": job.experiment,
                    "quick": job.quick,
                    "status": "failed" if error else "ok",
                    "error": error,
                    "cached": ticket.get("source") == "cache",
                    "duration_seconds": 0.0,
                }
            )
        if len(job_records) != len(shard.jobs):
            raise CampaignError(
                f"daemon returned {len(job_records)} ticket(s) for "
                f"{len(shard.jobs)} submitted job(s)"
            )
        return job_records, "service", 0

    def _checkpointed_record(self, shard: Shard) -> Optional[Dict[str, Any]]:
        """The shard's durable checkpoint as a report record, or None.

        A checkpoint whose job hashes no longer match the shard (stale
        manifest, corrupted entry) reads as absent, forcing recomputation.
        """
        checkpoint = self.store.get(shard.shard_id)
        if checkpoint is None or checkpoint.experiment != CHECKPOINT_EXPERIMENT:
            return None
        job_records = [dict(row) for row in checkpoint.rows()]
        if tuple(r.get("config_hash") for r in job_records) != shard.job_hashes:
            return None
        meta = checkpoint.params
        return {
            "index": shard.index,
            "shard_id": shard.shard_id,
            "role": shard.role,
            "status": "done",
            "resumed": True,
            "executor": str(meta.get("executor", "?")),
            "worker_jobs": int(meta.get("worker_jobs", 0) or 0),
            "duration_seconds": float(meta.get("duration_seconds", 0.0) or 0.0),
            "jobs": job_records,
        }

    def _write_checkpoint(self, shard: Shard, record: Dict[str, Any]) -> None:
        checkpoint = ExperimentResult(
            experiment=CHECKPOINT_EXPERIMENT,
            payload=[dict(job) for job in record["jobs"]],
            params={
                "campaign_id": self.campaign_id,
                "campaign_name": self.name,
                "shard_index": shard.index,
                "shard_id": shard.shard_id,
                "role": shard.role,
                "executor": record["executor"],
                "worker_jobs": record["worker_jobs"],
                "duration_seconds": record["duration_seconds"],
            },
            description=shard.describe(),
        )
        self.store.put(
            shard.shard_id, checkpoint,
            duration_seconds=record["duration_seconds"],
        )

    def _build_report(
        self, records: List[Dict[str, Any]], *, holdout_passed: bool
    ) -> CampaignReport:
        from .. import __version__

        return CampaignReport(
            campaign_id=self.campaign_id,
            name=self.name,
            shard_size=self.shard_size,
            holdout=self.holdout,
            holdout_passed=holdout_passed,
            shards=records,
            version=__version__,
            store_root=self.store.root,
        )

    def __repr__(self) -> str:
        return f"Campaign({self.describe()})"


def _pending_record(shard: Shard) -> Dict[str, Any]:
    return {
        "index": shard.index,
        "shard_id": shard.shard_id,
        "role": shard.role,
        "status": "pending",
        "resumed": False,
        "executor": "?",
        "worker_jobs": 0,
        "duration_seconds": 0.0,
        "jobs": [
            {
                "config_hash": digest,
                "experiment": job.experiment,
                "quick": job.quick,
                "status": "pending",
                "error": None,
                "cached": False,
                "duration_seconds": 0.0,
            }
            for job, digest in zip(shard.jobs, shard.job_hashes)
        ],
    }


def _campaign_id(name: str, shard_ids: Sequence[str], holdout: int) -> str:
    blob = _CAMPAIGN_SALT + json.dumps(
        {"name": name, "shards": list(shard_ids), "holdout": holdout},
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def _manifest_path(store_root: str, campaign_id: str) -> str:
    safe = "".join(c for c in campaign_id if c.isalnum() or c in "-_")
    if not safe or safe != campaign_id:
        raise CampaignError(f"invalid campaign id {campaign_id!r}")
    return os.path.join(store_root, _MANIFEST_DIR, f"{safe}.json")
