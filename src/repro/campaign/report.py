"""The versioned, structured campaign report.

A :class:`CampaignReport` is the machine-parseable record of one campaign
run -- modeled on run-segmented DAQ/correlator run reports (one provenance
record per work segment plus a campaign-level summary):

* :meth:`CampaignReport.to_dict` is the full JSON form: summary statistics,
  per-shard provenance (config hashes, durations, worker counts, executor,
  resumed-from-store flags), the failed-point inventory, anomaly notes and
  a ``report_format`` version tag;
* :meth:`CampaignReport.result_set` is the deterministic projection of the
  same data: everything timing- and provenance-dependent (durations, worker
  counts, ``resumed``/``cached`` flags, package version, store path) is
  stripped, so an interrupted-and-resumed campaign produces a byte-identical
  result set to an uninterrupted run (``tests/test_campaign.py`` enforces
  this, and ``tests/golden/campaign/report.json`` pins the shape);
* :meth:`CampaignReport.render` is the human-readable rendering.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..analysis.reporting import format_key_values, format_table, format_title
from ..api.results import ResultEncoder

__all__ = ["CampaignReport", "REPORT_FORMAT"]

#: Format tag written into every report (bump on incompatible layout).
REPORT_FORMAT = 1

#: Shards slower than this multiple of the median shard get an anomaly note.
_SLOW_SHARD_FACTOR = 4.0


@dataclass
class CampaignReport:
    """Structured outcome of one campaign run (see the module docstring).

    ``shards`` holds one record per shard, in grid order::

        {"index": int, "shard_id": str, "role": "holdout"|"blind",
         "status": "done"|"pending", "resumed": bool, "executor": str,
         "duration_seconds": float, "worker_jobs": int,
         "jobs": [{"config_hash", "experiment", "quick", "status",
                   "error", "cached", "duration_seconds"}, ...]}

    ``pending`` shards (no checkpoint yet -- only produced by
    :meth:`Campaign.collect` on an interrupted campaign) carry their job
    hashes but no outcomes.
    """

    campaign_id: str
    name: str
    shard_size: int
    holdout: int
    holdout_passed: bool
    shards: List[Dict[str, Any]]
    version: str = ""
    store_root: Optional[str] = None
    extra_anomalies: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """Campaign-level summary statistics (deterministic fields only)."""
        jobs = [job for shard in self.shards for job in shard["jobs"]]
        experiments: Dict[str, int] = {}
        for job in jobs:
            name = str(job.get("experiment", "?"))
            experiments[name] = experiments.get(name, 0) + 1
        return {
            "shards": len(self.shards),
            "holdout_shards": self.holdout,
            "pending_shards": sum(1 for s in self.shards if s["status"] != "done"),
            "jobs": len(jobs),
            "ok": sum(1 for j in jobs if j.get("status") == "ok"),
            "failed": sum(1 for j in jobs if j.get("status") == "failed"),
            "experiments": dict(sorted(experiments.items())),
        }

    def failed_points(self) -> List[Dict[str, Any]]:
        """Inventory of every recorded failed design point, in grid order."""
        inventory = []
        for shard in self.shards:
            for job in shard["jobs"]:
                if job.get("status") == "failed":
                    inventory.append(
                        {
                            "shard_index": shard["index"],
                            "shard_id": shard["shard_id"],
                            "config_hash": job.get("config_hash"),
                            "experiment": job.get("experiment"),
                            "error": job.get("error"),
                        }
                    )
        return inventory

    def anomalies(self) -> List[str]:
        """Deterministic anomaly notes (reproducible across resumed runs)."""
        notes: List[str] = []
        summary = self.summary()
        if summary["failed"]:
            notes.append(
                f"{summary['failed']} failed design point(s) recorded; "
                "see failed_points"
            )
        if summary["pending_shards"]:
            notes.append(
                f"{summary['pending_shards']} shard(s) have no checkpoint yet "
                "(campaign incomplete; resume to finish)"
            )
        if not self.holdout_passed:
            notes.append(
                "held-out validation has not passed; the full result set "
                "remains blind"
            )
        seen: Dict[str, int] = {}
        for shard in self.shards:
            for digest in (j.get("config_hash") for j in shard["jobs"]):
                seen[digest] = seen.get(digest, 0) + 1
        duplicates = sorted(d for d, n in seen.items() if n > 1)
        if duplicates:
            notes.append(
                f"{len(duplicates)} design point(s) appear more than once in "
                f"the grid: {', '.join(duplicates[:5])}"
                + ("..." if len(duplicates) > 5 else "")
            )
        notes.extend(self.extra_anomalies)
        return notes

    def timing(self) -> Dict[str, Any]:
        """Timing provenance (excluded from :meth:`result_set` by design)."""
        done = [s for s in self.shards if s["status"] == "done"]
        durations = sorted(s.get("duration_seconds", 0.0) for s in done)
        total = sum(durations)
        notes: List[str] = []
        if durations:
            median = durations[len(durations) // 2]
            if median > 0:
                for shard in done:
                    seconds = shard.get("duration_seconds", 0.0)
                    if seconds > _SLOW_SHARD_FACTOR * median:
                        notes.append(
                            f"shard {shard['index']} [{shard['shard_id']}] took "
                            f"{seconds:.3f}s ({seconds / median:.1f}x the median "
                            f"shard)"
                        )
        return {
            "total_seconds": round(total, 6),
            "computed_shards": sum(1 for s in done if not s.get("resumed")),
            "resumed_shards": sum(1 for s in done if s.get("resumed")),
            "notes": notes,
        }

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The full versioned JSON form (summary, provenance, anomalies)."""
        return {
            "report_format": REPORT_FORMAT,
            "campaign": {
                "id": self.campaign_id,
                "name": self.name,
                "shard_size": self.shard_size,
                "holdout_shards": self.holdout,
                "version": self.version,
                "store_root": self.store_root,
            },
            "summary": self.summary(),
            "holdout_passed": self.holdout_passed,
            "shards": [dict(shard) for shard in self.shards],
            "failed_points": self.failed_points(),
            "anomalies": self.anomalies(),
            "timing": self.timing(),
        }

    def result_set(self) -> Dict[str, Any]:
        """The deterministic projection of :meth:`to_dict`.

        Strips every run-dependent field (durations, worker counts,
        ``resumed``/``cached`` flags, package version, store location), so
        two runs over the same grid -- one uninterrupted, one interrupted
        and resumed -- serialize byte-identically.
        """
        shards = [
            {
                "index": shard["index"],
                "shard_id": shard["shard_id"],
                "role": shard["role"],
                "status": shard["status"],
                "jobs": [
                    {
                        "config_hash": job.get("config_hash"),
                        "experiment": job.get("experiment"),
                        "quick": job.get("quick", False),
                        "status": job.get("status"),
                        "error": job.get("error"),
                    }
                    for job in shard["jobs"]
                ],
            }
            for shard in self.shards
        ]
        return {
            "report_format": REPORT_FORMAT,
            "campaign": {
                "id": self.campaign_id,
                "name": self.name,
                "shard_size": self.shard_size,
                "holdout_shards": self.holdout,
            },
            "summary": self.summary(),
            "holdout_passed": self.holdout_passed,
            "shards": shards,
            "failed_points": self.failed_points(),
            "anomalies": self.anomalies(),
        }

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        """JSON rendering of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, cls=ResultEncoder)

    # ------------------------------------------------------------------
    # Human-readable rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """The human-readable campaign report."""
        summary = self.summary()
        timing = self.timing()
        parts = [
            format_title(f"Campaign report -- {self.name} [{self.campaign_id}]"),
            format_key_values(
                {
                    "shards": summary["shards"],
                    "held-out shards": summary["holdout_shards"],
                    "design points": summary["jobs"],
                    "ok": summary["ok"],
                    "failed": summary["failed"],
                    "resumed shards": timing["resumed_shards"],
                    "computed shards": timing["computed_shards"],
                    "total seconds": timing["total_seconds"],
                    "held-out validation": "passed" if self.holdout_passed else "BLIND",
                }
            ),
            "",
            format_table(
                [
                    {
                        "shard": shard["index"],
                        "id": shard["shard_id"],
                        "role": shard["role"],
                        "status": shard["status"],
                        "jobs": len(shard["jobs"]),
                        "failed": sum(
                            1 for j in shard["jobs"] if j.get("status") == "failed"
                        ),
                        "resumed": bool(shard.get("resumed")),
                        "seconds": round(shard.get("duration_seconds", 0.0), 3),
                    }
                    for shard in self.shards
                ]
            ),
        ]
        failed = self.failed_points()
        if failed:
            parts += [
                "",
                "Failed design points:",
                format_table(
                    [
                        {
                            "shard": point["shard_index"],
                            "config hash": point["config_hash"],
                            "experiment": point["experiment"],
                            "error": point["error"],
                        }
                        for point in failed
                    ]
                ),
            ]
        anomalies = self.anomalies() + self.timing()["notes"]
        if anomalies:
            parts += ["", "Anomalies:"] + [f"  - {note}" for note in anomalies]
        return "\n".join(parts)
