"""Lossy-link fault injection and HARQ-style reliability (`repro.faults`).

This package adds the probabilistic counterpart to the paper's deterministic
worst-case analysis: per-link fault models that corrupt or drop flits in
flight (:mod:`repro.faults.models`), the NIC-level ACK/NACK retransmission
protocol that recovers from them (implemented in :mod:`repro.noc.nic`), and
a Monte-Carlo engine replaying scenarios across seeded trials to estimate
latency distributions under faults (:mod:`repro.faults.montecarlo`).

Only the lightweight specification layer is imported here, so that
``repro.core.config`` can depend on it without a cycle; import
``repro.faults.montecarlo`` explicitly for the trial runner.
"""

from .models import (
    FaultModel,
    GilbertElliottFaults,
    IndependentFaults,
    LinkFaultInjector,
    MessageDeliveryError,
    ReliabilityConfig,
    make_fault_model,
)

__all__ = [
    "FaultModel",
    "GilbertElliottFaults",
    "IndependentFaults",
    "LinkFaultInjector",
    "MessageDeliveryError",
    "ReliabilityConfig",
    "make_fault_model",
]
