"""Per-link fault models and the HARQ-style reliability configuration.

The paper's WCTT analyses assume perfectly reliable links.  This module
provides the probabilistic counterpart: *fault model specifications* that
describe, per link, how flits get corrupted or lost in flight, plus the
:class:`ReliabilityConfig` governing the NIC-level ACK/NACK retransmission
protocol that recovers from those faults (HARQ-style, after the
retransmission-feedback setting of arXiv:1601.04131).

Two fault models are provided:

* :class:`IndependentFaults` -- every flit traversal of every link is an
  independent Bernoulli trial with configurable corruption and loss
  probabilities (a memoryless binary-symmetric-channel-like link);
* :class:`GilbertElliottFaults` -- the classic two-state burst-error model:
  each link is a Markov chain alternating between a *good* and a *bad*
  state with per-state corruption/loss probabilities, so faults cluster in
  bursts the way deep-submicron crosstalk and voltage droops do.

A specification is an immutable, hashable dataclass (so it can live inside
:class:`~repro.core.config.NoCConfig`, travel through the batch engine's
config hash and pickle across worker processes).  The mutable runtime state
-- one seeded RNG stream *per link* -- is created per network by
:meth:`FaultModel.instantiate`.

Determinism contract: fault decisions depend only on ``(seed, link,
n-th traversal of that link)``.  Per-link RNG streams make the decisions
independent of the order in which the simulator happens to visit routers
within a cycle, which is what keeps the cycle-accurate and event-driven
backends bit-identical under faults (enforced by ``tests/test_differential.py``).

Fault semantics at the flit level:

* a **corrupted** flit traverses the link and keeps occupying buffers and
  credits, but its payload is damaged; the destination NIC detects this
  (CRC) when the packet's tail arrives and discards the whole packet;
* a **lost** flit is an erasure: it still occupies its link slot (the
  conservative modelling choice -- wormhole flow control cannot reuse the
  slot of a dropped flit mid-packet), but the destination NIC never sees
  its payload.  A lost *tail* flit means the receiver cannot even detect
  the failed packet, leaving recovery to the sender's retransmit timer.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple, Union

__all__ = [
    "CORRUPT",
    "LOST",
    "FaultModel",
    "GilbertElliottFaults",
    "IndependentFaults",
    "LinkFaultInjector",
    "MessageDeliveryError",
    "ReliabilityConfig",
    "make_fault_model",
]

#: Outcome tags of one link traversal (plain strings, cheap in the hot loop).
CORRUPT = "corrupt"
LOST = "lost"


class MessageDeliveryError(RuntimeError):
    """A message exhausted its retransmission budget and was abandoned.

    Raised by the sending NIC (and propagated out of the simulation run)
    instead of letting an undeliverable message hang the drain loop.  The
    message names the failing transfer -- source, destination, kind,
    sequence number, attempt count -- so the failure is diagnosable from
    the exception alone.
    """


@dataclass(frozen=True)
class ReliabilityConfig:
    """NIC-level HARQ retransmission parameters.

    ``ack_timeout`` is the base number of cycles the sender waits for an
    ACK before retransmitting; each further retry multiplies the wait by
    ``backoff`` (exponential backoff, saturating patience).  After
    ``max_retries`` unsuccessful retransmissions the sender gives up and
    raises :class:`MessageDeliveryError`.
    """

    ack_timeout: int = 256
    backoff: float = 2.0
    max_retries: int = 8

    def __post_init__(self) -> None:
        if self.ack_timeout < 1:
            raise ValueError("ack_timeout must be >= 1 cycle")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")

    @property
    def max_attempts(self) -> int:
        """Total transmission attempts: the original send plus the retries."""
        return self.max_retries + 1

    def retry_timeout(self, attempt: int) -> int:
        """ACK wait (cycles) armed for transmission attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempts are numbered from 1")
        return max(1, int(self.ack_timeout * self.backoff ** (attempt - 1)))

    def worst_case_wait(self) -> int:
        """Upper bound on the cycles a message may spend waiting on timers."""
        return sum(self.retry_timeout(a) for a in range(1, self.max_attempts + 1))

    def validate_drain_budget(self, max_cycles: int) -> None:
        """Reject drain budgets shorter than the retransmission window.

        A run whose ``max_cycles`` is smaller than the worst-case sum of
        retransmit timeouts would report a misleading
        ``SimulationStallError`` for a transfer the protocol was still
        legitimately retrying; this check (performed when a bounded run
        starts) turns that configuration mistake into an eager, descriptive
        ``ValueError``.
        """
        wait = self.worst_case_wait()
        if wait >= max_cycles:
            raise ValueError(
                f"retransmission window ({wait} cycles: ack_timeout="
                f"{self.ack_timeout}, backoff={self.backoff}, max_retries="
                f"{self.max_retries}) must be shorter than the drain timeout "
                f"({max_cycles} cycles); raise max_cycles or shrink the "
                "reliability timeouts"
            )


def _link_stream(seed: int, x: int, y: int, port: str) -> random.Random:
    """A deterministic, process-independent RNG stream for one link.

    The stream is derived through SHA-256 rather than ``hash()`` so it does
    not depend on ``PYTHONHASHSEED`` and is identical across the batch
    engine's worker processes.
    """
    digest = hashlib.sha256(f"{seed}:{x},{y}:{port}".encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


@dataclass(frozen=True)
class FaultModel:
    """Base class of the per-link fault model specifications.

    Concrete models add their probability parameters; the base carries the
    master ``seed`` (per-link streams are derived from it) and the
    :class:`ReliabilityConfig` of the recovery protocol that a faulty
    network needs.  A model whose every fault probability is zero is
    *null*: the network treats it exactly like no fault model at all (no
    injector, no HARQ machinery, bit-identical to the seed simulation).
    """

    seed: int = 1
    reliability: ReliabilityConfig = field(default_factory=ReliabilityConfig)

    #: Registry name of the model (overridden by every implementation).
    kind = "abstract"

    @property
    def is_null(self) -> bool:
        """True when this model can never fault a flit."""
        raise NotImplementedError

    def with_seed(self, seed: int) -> "FaultModel":
        """The same model with a different master seed (Monte-Carlo trials)."""
        return replace(self, seed=seed)

    def instantiate(self) -> "LinkFaultInjector":
        """Build the mutable per-network runtime state for this model."""
        return LinkFaultInjector(self)

    def _make_link_state(self, rng: random.Random):
        raise NotImplementedError

    def label_token(self) -> str:
        """Short token for scenario labels, e.g. ``faults-independent-s1``."""
        return f"faults-{self.kind}-s{self.seed}"


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")


@dataclass(frozen=True)
class IndependentFaults(FaultModel):
    """Memoryless per-link faults: every traversal is an independent trial."""

    corrupt_rate: float = 0.0
    loss_rate: float = 0.0

    kind = "independent"

    def __post_init__(self) -> None:
        _check_rate("corrupt_rate", self.corrupt_rate)
        _check_rate("loss_rate", self.loss_rate)
        if self.corrupt_rate + self.loss_rate > 1.0:
            raise ValueError("corrupt_rate + loss_rate cannot exceed 1")

    @property
    def is_null(self) -> bool:
        return self.corrupt_rate == 0.0 and self.loss_rate == 0.0

    def _make_link_state(self, rng: random.Random) -> "_IndependentLink":
        return _IndependentLink(rng, self.loss_rate, self.corrupt_rate)


class _IndependentLink:
    """Runtime state of one link under :class:`IndependentFaults`."""

    __slots__ = ("rng", "loss", "corrupt")

    def __init__(self, rng: random.Random, loss: float, corrupt: float):
        self.rng = rng
        self.loss = loss
        self.corrupt = corrupt

    def draw(self) -> Optional[str]:
        # One uniform draw per traversal, split into [loss | corrupt | clean].
        r = self.rng.random()
        if r < self.loss:
            return LOST
        if r < self.loss + self.corrupt:
            return CORRUPT
        return None


@dataclass(frozen=True)
class GilbertElliottFaults(FaultModel):
    """Two-state Markov (Gilbert-Elliott) burst faults, one chain per link.

    Every link starts in the *good* state.  On each flit traversal the
    current state's corruption/loss probabilities decide the flit's fate,
    then the chain transitions (``good_to_bad`` / ``bad_to_good``
    probabilities).  Transitions advance per *traversal* -- the discrete
    channel-use formulation -- so the model stays independent of how the
    backends walk the clock.
    """

    good_corrupt_rate: float = 0.0
    good_loss_rate: float = 0.0
    bad_corrupt_rate: float = 0.05
    bad_loss_rate: float = 0.05
    good_to_bad: float = 0.005
    bad_to_good: float = 0.1

    kind = "gilbert"

    def __post_init__(self) -> None:
        for name in (
            "good_corrupt_rate",
            "good_loss_rate",
            "bad_corrupt_rate",
            "bad_loss_rate",
            "good_to_bad",
            "bad_to_good",
        ):
            _check_rate(name, getattr(self, name))
        if self.good_corrupt_rate + self.good_loss_rate > 1.0:
            raise ValueError("good-state corrupt + loss rates cannot exceed 1")
        if self.bad_corrupt_rate + self.bad_loss_rate > 1.0:
            raise ValueError("bad-state corrupt + loss rates cannot exceed 1")

    @property
    def is_null(self) -> bool:
        if self.good_corrupt_rate or self.good_loss_rate:
            return False
        # The bad state is unreachable when good_to_bad is zero.
        if self.good_to_bad == 0.0:
            return True
        return not (self.bad_corrupt_rate or self.bad_loss_rate)

    def _make_link_state(self, rng: random.Random) -> "_GilbertElliottLink":
        return _GilbertElliottLink(self, rng)


class _GilbertElliottLink:
    """Runtime state of one link's two-state Markov chain."""

    __slots__ = ("spec", "rng", "bad")

    def __init__(self, spec: GilbertElliottFaults, rng: random.Random):
        self.spec = spec
        self.rng = rng
        self.bad = False

    def draw(self) -> Optional[str]:
        spec = self.spec
        if self.bad:
            loss, corrupt, flip = spec.bad_loss_rate, spec.bad_corrupt_rate, spec.bad_to_good
        else:
            loss, corrupt, flip = spec.good_loss_rate, spec.good_corrupt_rate, spec.good_to_bad
        outcome: Optional[str] = None
        r = self.rng.random()
        if r < loss:
            outcome = LOST
        elif r < loss + corrupt:
            outcome = CORRUPT
        if self.rng.random() < flip:
            self.bad = not self.bad
        return outcome


class LinkFaultInjector:
    """Mutable per-network runtime of a fault model: one RNG stream per link.

    The network calls :meth:`transmit` for every router-to-router link
    traversal (local NIC-router connections are treated as reliable on-die
    wiring).  The injector never removes flits from the stream -- it only
    marks them (``flit.corrupted`` / ``flit.lost`` and the owning packet's
    ``faulty`` flag), leaving flow control untouched; the destination NIC
    turns the marks into discarded packets and NACKs.
    """

    def __init__(self, spec: FaultModel):
        self.spec = spec
        self._links: Dict[Tuple[int, int, str], object] = {}
        self.transmitted_flits = 0
        self.corrupted_flits = 0
        self.lost_flits = 0

    def transmit(self, coord, port, flit) -> None:
        """Decide the fate of one flit crossing the link ``(coord, port)``."""
        key = (coord.x, coord.y, port.value)
        state = self._links.get(key)
        if state is None:
            state = self.spec._make_link_state(
                _link_stream(self.spec.seed, coord.x, coord.y, port.value)
            )
            self._links[key] = state
        self.transmitted_flits += 1
        outcome = state.draw()
        if outcome is None:
            return
        flit.packet.faulty = True
        if outcome is LOST:
            flit.lost = True
            self.lost_flits += 1
        else:
            flit.corrupted = True
            self.corrupted_flits += 1

    def fault_counts(self) -> Dict[str, int]:
        """Aggregate counters (transmitted / corrupted / lost flits)."""
        return {
            "transmitted": self.transmitted_flits,
            "corrupted": self.corrupted_flits,
            "lost": self.lost_flits,
        }


#: Registered model kinds for :func:`make_fault_model`.
_MODEL_KINDS = {
    IndependentFaults.kind: IndependentFaults,
    GilbertElliottFaults.kind: GilbertElliottFaults,
}

#: Reliability keywords accepted at the top level of make_fault_model().
_RELIABILITY_KEYS = ("ack_timeout", "backoff", "max_retries")

ModelSpecLike = Union[None, str, FaultModel, Mapping[str, object]]


def make_fault_model(model: ModelSpecLike = None, **params) -> Optional[FaultModel]:
    """Build a :class:`FaultModel` from a kind name, mapping or instance.

    ``None`` passes through (no fault model); a :class:`FaultModel`
    instance passes through unchanged (extra ``params`` are rejected); a
    mapping spells out the full choice with a ``"kind"`` entry; a kind name
    (``"independent"`` or ``"gilbert"``) takes the model parameters as
    keywords.  The reliability knobs (``ack_timeout``, ``backoff``,
    ``max_retries``) may be given either flat or as a ready
    ``reliability=ReliabilityConfig(...)``.
    """
    if model is None:
        if params:
            raise ValueError("fault model parameters given without a model kind")
        return None
    if isinstance(model, FaultModel):
        if params:
            raise ValueError(
                "cannot combine a ready FaultModel instance with extra parameters"
            )
        return model
    if isinstance(model, Mapping):
        merged = dict(model)
        merged.update(params)
        kind = merged.pop("kind", None)
        if kind is None:
            raise ValueError("a fault model mapping needs a 'kind' entry")
        return make_fault_model(kind, **merged)
    if not isinstance(model, str):
        raise ValueError(
            f"fault model must be a kind name, mapping or FaultModel, got {model!r}"
        )
    cls = _MODEL_KINDS.get(model)
    if cls is None:
        known = ", ".join(sorted(_MODEL_KINDS))
        raise ValueError(f"unknown fault model kind {model!r}; known kinds: {known}")
    if "reliability" not in params:
        flat = {k: params.pop(k) for k in _RELIABILITY_KEYS if k in params}
        if flat:
            params["reliability"] = ReliabilityConfig(**flat)
    try:
        return cls(**params)
    except TypeError:
        known = ", ".join(
            sorted(f.name for f in cls.__dataclass_fields__.values())  # type: ignore[attr-defined]
        )
        raise ValueError(
            f"invalid parameter for fault model {model!r}; known parameters: {known}"
        ) from None
