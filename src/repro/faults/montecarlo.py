"""Monte-Carlo reliability engine: replay a scenario across seeded trials.

The fault models of :mod:`repro.faults.models` make a single simulation a
*sample* from a latency distribution rather than a deterministic number.
This module estimates that distribution: :func:`run_trials` replays one
design point under ``N`` different fault seeds -- fanning the trials out
over the batch engine's worker pool (:func:`repro.api.engine.map_jobs`) --
and aggregates the observed latencies into a
:class:`LatencyDistribution` with mean, percentile and confidence-interval
summaries.  That is the statistical counterpart to the paper's analytical
WCTT bound: the bound says what can *never* be exceeded on reliable links,
the distribution says what is *likely* under a given fault rate.

A trial whose traffic exhausts the HARQ retry budget does not abort the
whole study: the :class:`~repro.faults.MessageDeliveryError` is captured in
the trial's :class:`TrialOutcome` (``failed=True`` with the description),
so delivery-failure *probability* is itself one of the estimated outputs.

Everything is deterministic given ``base_seed``: trial ``i`` runs with the
fault model reseeded to ``base_seed + i``, per-link streams are derived by
SHA-256 (process independent), and the workloads are deterministic, so the
same call reproduces the same distribution on any backend and any worker
count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from statistics import mean, pstdev
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.config import NoCConfig
from .models import MessageDeliveryError

__all__ = [
    "LatencyDistribution",
    "MonteCarloResult",
    "TrialOutcome",
    "available_workloads",
    "percentile",
    "run_trials",
]

#: z-score of the two-sided 95 % confidence interval of a normal mean.
_Z95 = 1.96


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (``q`` in [0, 100]).

    The nearest-rank definition always returns an actually observed value
    (no interpolation), which keeps tail percentiles honest on the small
    sample counts Monte-Carlo studies typically afford.
    """
    if not samples:
        raise ValueError("no samples")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be within [0, 100], got {q!r}")
    ordered = sorted(samples)
    if q == 0.0:
        return ordered[0]
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[rank - 1]


@dataclass(frozen=True)
class LatencyDistribution:
    """Summary statistics of one set of latency samples.

    ``ci95`` is the half-width of the 95 % confidence interval of the mean
    (``1.96 * sigma / sqrt(n)`` with the population standard deviation), so
    it shrinks as ``1/sqrt(n)`` with the sample count -- the property the
    test suite pins down.
    """

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p99: float
    p999: float
    ci95: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyDistribution":
        if not samples:
            raise ValueError("no samples")
        sigma = pstdev(samples)
        return cls(
            count=len(samples),
            mean=mean(samples),
            std=sigma,
            minimum=min(samples),
            maximum=max(samples),
            p50=percentile(samples, 50.0),
            p90=percentile(samples, 90.0),
            p99=percentile(samples, 99.0),
            p999=percentile(samples, 99.9),
            ci95=_Z95 * sigma / math.sqrt(len(samples)),
        )

    def as_dict(self) -> Dict[str, float]:
        # One rounding policy for every statistic: three digits, always a
        # float.  (Latency samples are ints, so min/max/percentiles used to
        # leak through unrounded and type-unstable, destabilising JSON
        # exports and golden files.)
        def stat(value: float) -> float:
            return round(float(value), 3)

        return {
            "count": self.count,
            "mean": stat(self.mean),
            "std": stat(self.std),
            "min": stat(self.minimum),
            "max": stat(self.maximum),
            "p50": stat(self.p50),
            "p90": stat(self.p90),
            "p99": stat(self.p99),
            "p999": stat(self.p999),
            "ci95": stat(self.ci95),
        }


@dataclass(frozen=True)
class TrialOutcome:
    """What one seeded trial produced.

    A failed trial (retry budget exhausted) carries the
    :class:`~repro.faults.MessageDeliveryError` description in ``failure``
    and contributes no latency samples.
    """

    seed: int
    failed: bool = False
    failure: Optional[str] = None
    makespan: int = 0
    latencies: Tuple[int, ...] = ()
    delivered_messages: int = 0
    retransmissions: int = 0
    fault_counts: Dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class MonteCarloResult:
    """Aggregated outcome of a :func:`run_trials` study."""

    trials: int
    failed_trials: int
    outcomes: Tuple[TrialOutcome, ...]
    #: Distribution over the pooled latency samples of the successful
    #: trials; ``None`` when every trial failed (or none produced samples).
    distribution: Optional[LatencyDistribution]
    makespans: Tuple[int, ...]
    total_retransmissions: int
    fault_counts: Dict[str, int]

    @property
    def failure_rate(self) -> float:
        """Fraction of trials that exhausted the retry budget."""
        return self.failed_trials / self.trials if self.trials else 0.0

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "trials": self.trials,
            "failed_trials": self.failed_trials,
            "failure_rate": round(self.failure_rate, 4),
            "retransmissions": self.total_retransmissions,
            "fault_counts": dict(self.fault_counts),
        }
        if self.distribution is not None:
            data["latency"] = self.distribution.as_dict()
        return data


# ----------------------------------------------------------------------
# Trial workloads
# ----------------------------------------------------------------------
def _eembc_trial(config: NoCConfig, params: Dict[str, object]):
    """Multiprogrammed EEMBC-like workload; samples the victim's replies.

    The *victim* -- the node farthest from the memory controller -- runs a
    memory-bound profile; ``background`` further nodes (nearest to the MC
    first) run profiles drawn round-robin from the Autobench-like suite.
    The latency samples are the victim's reply messages (memory -> victim),
    end to end, the flow whose worst case the paper's WCTT analysis bounds.
    """
    from ..manycore.system import ManycoreSystem
    from ..workloads.eembc import autobench_profile, autobench_suite

    profile_name = str(params.get("profile", "matrix"))
    scale = float(params.get("scale", 0.01))
    background = int(params.get("background", 2))
    max_cycles = int(params.get("max_cycles", 5_000_000))

    mc = config.memory_controller
    nodes = sorted(
        (c for c in config.mesh.nodes() if c != mc),
        key=lambda c: (c.manhattan(mc), c.y, c.x),
    )
    if not nodes:
        raise ValueError("the mesh has no core node besides the memory controller")
    victim = nodes[-1]
    system = ManycoreSystem(config)
    system.add_profile_core(victim, autobench_profile(profile_name).scaled(scale))
    suite = autobench_suite()
    for i, node in enumerate(nodes[: min(background, len(nodes) - 1)]):
        system.add_profile_core(node, suite[i % len(suite)].scaled(scale))
    system.run_to_completion(max_cycles=max_cycles)
    samples = system.network.stats.latencies(kind="reply", destination=victim)
    return samples, system.network, system.makespan()


def _uniform_trial(config: NoCConfig, params: Dict[str, object]):
    """Uniform random traffic on the bare network; samples every message."""
    from ..noc.network import Network
    from ..workloads.synthetic import UniformRandomTraffic

    injection_rate = float(params.get("injection_rate", 0.02))
    payload_flits = int(params.get("payload_flits", 4))
    cycles = int(params.get("cycles", 400))
    traffic_seed = int(params.get("traffic_seed", 1))
    max_cycles = int(params.get("max_cycles", 5_000_000))

    network = Network(config)
    traffic = UniformRandomTraffic(
        config.mesh,
        injection_rate=injection_rate,
        payload_flits=payload_flits,
        seed=traffic_seed,
    )
    traffic.drive(network, cycles)
    network.run_until_idle(max_cycles=max_cycles)
    return network.stats.latencies(), network, network.cycle


#: name -> workload callable ``f(config, params) -> (samples, network, makespan)``.
_WORKLOADS: Dict[str, Callable] = {
    "eembc": _eembc_trial,
    "uniform": _uniform_trial,
}


def available_workloads() -> List[str]:
    """The registered Monte-Carlo trial workload names, sorted."""
    return sorted(_WORKLOADS)


# ----------------------------------------------------------------------
# Trial execution
# ----------------------------------------------------------------------
def _run_trial(spec: Tuple[NoCConfig, int, str, Dict[str, object]]) -> TrialOutcome:
    """Run one seeded trial (also the worker-pool entry point)."""
    config, seed, workload, params = spec
    fault_model = config.fault_model
    if fault_model is not None:
        config = config.with_fault_model(fault_model.with_seed(seed))
    runner = _WORKLOADS[workload]
    try:
        samples, network, makespan = runner(config, params)
    except MessageDeliveryError as exc:
        return TrialOutcome(seed=seed, failed=True, failure=str(exc))
    return TrialOutcome(
        seed=seed,
        makespan=makespan,
        latencies=tuple(samples),
        delivered_messages=network.stats.completed_messages,
        retransmissions=network.total_retransmissions(),
        fault_counts=network.fault_counts(),
    )


def run_trials(
    config: NoCConfig,
    *,
    trials: int,
    base_seed: int = 1,
    workload: str = "eembc",
    jobs: int = 1,
    **params: object,
) -> MonteCarloResult:
    """Replay ``config`` across ``trials`` fault seeds and pool the samples.

    Trial ``i`` reseeds the config's fault model to ``base_seed + i``; the
    workload itself stays fixed, so the fault seed is the only source of
    randomness between trials.  ``workload`` names a registered trial
    workload (:func:`available_workloads`): ``"eembc"`` runs the
    multiprogrammed manycore and samples the victim node's memory replies,
    ``"uniform"`` drives uniform random traffic on the bare network and
    samples everything.  Remaining keyword arguments parameterise the
    workload (e.g. ``scale=...``, ``background=...``, ``max_cycles=...``).

    ``jobs > 1`` fans the trials out over the batch engine's worker pool;
    results are independent of the worker count.  A config without a fault
    model (or with a null one) is legal -- every trial is then identical --
    which keeps zero-rate reference points uniform with the faulty ones.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    if workload not in _WORKLOADS:
        known = ", ".join(available_workloads())
        raise ValueError(f"unknown Monte-Carlo workload {workload!r}; known: {known}")
    from ..api.engine import map_jobs

    specs = [(config, base_seed + i, workload, dict(params)) for i in range(trials)]
    outcomes: List[TrialOutcome] = map_jobs(_run_trial, specs, jobs=jobs)

    pooled: List[int] = []
    makespans: List[int] = []
    total_retx = 0
    fault_counts: Dict[str, int] = {"transmitted": 0, "corrupted": 0, "lost": 0}
    failed = 0
    for outcome in outcomes:
        if outcome.failed:
            failed += 1
            continue
        pooled.extend(outcome.latencies)
        makespans.append(outcome.makespan)
        total_retx += outcome.retransmissions
        for key, value in outcome.fault_counts.items():
            fault_counts[key] = fault_counts.get(key, 0) + value
    return MonteCarloResult(
        trials=trials,
        failed_trials=failed,
        outcomes=tuple(outcomes),
        distribution=LatencyDistribution.from_samples(pooled) if pooled else None,
        makespans=tuple(makespans),
        total_retransmissions=total_retx,
        fault_counts=fault_counts,
    )
