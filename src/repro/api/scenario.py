"""Fluent, validated construction of NoC design points.

:class:`Scenario` replaces the scattered ``regular_mesh_config(...)`` /
``waw_wap_config(...)`` keyword soup with a chainable builder::

    from repro.api import Scenario

    config = Scenario.mesh(8).waw_wap().max_packet_flits(1).build()

Every step returns a *new* scenario (the builder is immutable), every setter
validates its argument eagerly and :meth:`Scenario.build` produces a regular
:class:`~repro.core.config.NoCConfig`, so the analytical models and the
simulator are unaffected by how a design point was described.

The network structure itself is a scenario axis: :meth:`Scenario.topology`
selects any registered topology (mesh, torus, ring, concentrated mesh) and
its routing strategy, so a whole structural design space sweeps through the
same analytical models and the same cycle-accurate simulator::

    torus = Scenario.mesh(8).topology("torus").waw_wap().build()
    cmesh = Scenario.mesh(4).topology("cmesh", concentration=4).build()

:func:`sweep` expands parameter grids into design-point lists::

    points = sweep(Scenario.mesh(4), design=("regular", "waw_wap"),
                   max_packet_flits=(1, 4, 8))
    shapes = sweep(Scenario.mesh(4), topology=("mesh", "torus"))

yielding the cartesian product in deterministic (row-major) order.
"""

from __future__ import annotations

import itertools
from dataclasses import fields
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..core.config import (
    ArbitrationPolicy,
    MessageConfig,
    NoCConfig,
    PacketizationPolicy,
    RouterTiming,
)
from ..faults.models import FaultModel, make_fault_model
from ..geometry import Coord, Mesh
from ..sim import normalize_backend_name
from ..topology import make_topology

__all__ = ["Scenario", "ScenarioError", "sweep", "sweep_jobs"]


class ScenarioError(ValueError):
    """A scenario was built with an invalid or inconsistent parameter."""


#: Design names accepted by :meth:`Scenario.design` and :func:`sweep`.
_DESIGNS: Dict[str, Tuple[ArbitrationPolicy, PacketizationPolicy]] = {
    "regular": (ArbitrationPolicy.ROUND_ROBIN, PacketizationPolicy.SINGLE_PACKET),
    "waw_wap": (ArbitrationPolicy.WEIGHTED_ROUND_ROBIN, PacketizationPolicy.MINIMUM_SIZE_PACKETS),
    "waw": (ArbitrationPolicy.WEIGHTED_ROUND_ROBIN, PacketizationPolicy.SINGLE_PACKET),
    "wap": (ArbitrationPolicy.ROUND_ROBIN, PacketizationPolicy.MINIMUM_SIZE_PACKETS),
}


class Scenario:
    """Immutable fluent builder for :class:`~repro.core.config.NoCConfig`.

    Start from :meth:`Scenario.mesh`, chain setters, finish with
    :meth:`build`.  The defaults match ``regular_mesh_config``: round-robin
    arbitration, single-packet messages, L=4, m=1, 4-flit buffers, memory
    controller at (0, 0).
    """

    __slots__ = ("_settings",)

    def __init__(self, settings: Optional[Mapping[str, Any]] = None) -> None:
        self._settings: Dict[str, Any] = dict(settings) if settings else {}

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    @classmethod
    def mesh(cls, width: int, height: Optional[int] = None) -> "Scenario":
        """A scenario on a ``width`` x ``height`` mesh (square by default)."""
        width = _positive_int("mesh width", width)
        height = width if height is None else _positive_int("mesh height", height)
        return cls({"mesh_width": width, "mesh_height": height, "design": "regular"})

    # ------------------------------------------------------------------
    # Design point selection
    # ------------------------------------------------------------------
    def design(self, name: str) -> "Scenario":
        """Select the design point by name: regular, waw_wap, waw or wap."""
        if name not in _DESIGNS:
            known = ", ".join(sorted(_DESIGNS))
            raise ScenarioError(f"unknown design {name!r}; known designs: {known}")
        return self._with(design=name)

    def regular(self) -> "Scenario":
        """The baseline wNoC: round-robin arbitration, single-packet messages."""
        return self.design("regular")

    def waw_wap(self) -> "Scenario":
        """The paper's proposal: weighted arbitration + minimum-size packets."""
        return self.design("waw_wap")

    def waw_only(self) -> "Scenario":
        """Ablation variant: weighted arbitration, single-packet messages."""
        return self.design("waw")

    def wap_only(self) -> "Scenario":
        """Ablation variant: round-robin arbitration, minimum-size packets."""
        return self.design("wap")

    # ------------------------------------------------------------------
    # Topology selection
    # ------------------------------------------------------------------
    def topology(
        self,
        kind: str,
        *,
        routing: str = "xy",
        concentration: Optional[int] = None,
    ) -> "Scenario":
        """Select the network structure and routing strategy.

        ``kind`` is a registered topology name (``mesh``, ``torus``,
        ``ring``, ``cmesh``); ``routing`` picks the dimension order (``xy``
        or ``yx``); ``concentration`` (terminals per router, >= 1) is only
        accepted for ``cmesh``.  A ring needs a single-row scenario
        (``Scenario.mesh(n, 1)``).  Every parameter is validated eagerly --
        by actually constructing the topology through
        :func:`repro.topology.make_topology`, the single source of truth --
        and structural inconsistencies surface as :class:`ScenarioError`.
        """
        try:
            make_topology(
                kind,
                self._settings["mesh_width"],
                self._settings["mesh_height"],
                routing=routing,
                concentration=concentration,
            )
        except ValueError as exc:
            raise ScenarioError(str(exc)) from None
        # Re-selecting the topology resets any cmesh-only leftovers, so a
        # sweep over the topology axis from a cmesh base stays consistent.
        merged = dict(self._settings)
        merged.pop("concentration", None)
        merged.update({"topology": kind, "routing": routing})
        if concentration is not None:
            merged["concentration"] = concentration
        return Scenario(merged)

    # ------------------------------------------------------------------
    # Simulation backend selection
    # ------------------------------------------------------------------
    def backend(self, name: str) -> "Scenario":
        """Select the simulation backend driving this design point's runs.

        ``"cycle"`` is the cycle-accurate reference (every component steps on
        every clock cycle); ``"event"`` is the event-driven fast backend that
        skips provably idle cycles and reproduces the cycle-accurate results
        exactly (``tests/test_differential.py`` enforces this).  The choice
        only affects simulation wall-clock time, never any analytical model
        or any simulated number.
        """
        try:
            canonical = normalize_backend_name(name)
        except ValueError as exc:
            raise ScenarioError(str(exc)) from None
        except TypeError:
            raise ScenarioError(f"backend must be a name string, got {name!r}") from None
        return self._with(backend=canonical)

    # ------------------------------------------------------------------
    # Analysis backend selection
    # ------------------------------------------------------------------
    def analysis(self, name: Optional[str]) -> "Scenario":
        """Select the analysis backend bounding this design point's WCTTs.

        ``name`` is a registered :mod:`repro.analysis` backend (``regular``,
        ``weighted``, ``holistic``, ``trajectory``, ``vector``); ``None``
        removes the selection again, restoring the default -- the paper's
        analysis pair, dispatched on the design point.  Unlike the
        simulation :meth:`backend`, the analysis choice *does* change
        numbers: backends are competing bounds of different tightness (each
        validated for soundness by ``tests/test_backend_soundness.py`` and
        the ``bound_comparison`` experiment).
        """
        if name is None:
            merged = dict(self._settings)
            merged.pop("analysis", None)
            return Scenario(merged)
        from ..analysis.backends import normalize_analysis_backend_name

        try:
            canonical = normalize_analysis_backend_name(name)
        except ValueError as exc:
            raise ScenarioError(str(exc)) from None
        except TypeError:
            raise ScenarioError(f"analysis must be a name string, got {name!r}") from None
        return self._with(analysis=canonical)

    # ------------------------------------------------------------------
    # Knobs
    # ------------------------------------------------------------------
    def max_packet_flits(self, flits: int) -> "Scenario":
        """Maximum packet length allowed in the network (the paper's L)."""
        return self._with(max_packet_flits=_positive_int("max_packet_flits", flits))

    def min_packet_flits(self, flits: int) -> "Scenario":
        """Minimum packet length (the paper's m; WaP slices to this size)."""
        return self._with(min_packet_flits=_positive_int("min_packet_flits", flits))

    def buffer_depth(self, flits: int) -> "Scenario":
        """Input buffer depth of every router port, in flits."""
        return self._with(buffer_depth=_positive_int("buffer_depth", flits))

    def memory_controller(self, x: int, y: int) -> "Scenario":
        """Place the memory controller (must lie inside the mesh)."""
        if x < 0 or y < 0:
            raise ScenarioError(f"memory controller ({x}, {y}) has negative coordinates")
        return self._with(memory_controller=Coord(x, y))

    def timing(
        self,
        *,
        routing_latency: Optional[int] = None,
        link_latency: Optional[int] = None,
        flit_cycle: Optional[int] = None,
    ) -> "Scenario":
        """Override router pipeline timing constants (defaults: 3/1/1)."""
        base: RouterTiming = self._settings.get("timing", RouterTiming())
        try:
            new = RouterTiming(
                routing_latency=base.routing_latency if routing_latency is None else routing_latency,
                link_latency=base.link_latency if link_latency is None else link_latency,
                flit_cycle=base.flit_cycle if flit_cycle is None else flit_cycle,
            )
        except ValueError as exc:
            raise ScenarioError(str(exc)) from None
        return self._with(timing=new)

    def messages(self, messages: MessageConfig) -> "Scenario":
        """Override the message-size constants of the evaluated manycore."""
        if not isinstance(messages, MessageConfig):
            raise ScenarioError("messages expects a MessageConfig instance")
        return self._with(messages=messages)

    # ------------------------------------------------------------------
    # Fault model selection
    # ------------------------------------------------------------------
    def fault_model(self, model: Any = None, **params: Any) -> "Scenario":
        """Attach a per-link fault model (and HARQ reliability protocol).

        Accepts whatever :func:`repro.faults.make_fault_model` accepts: a
        kind name with parameters (``.fault_model("independent",
        loss_rate=0.01, seed=3)``), a mapping with a ``"kind"`` entry, a
        ready :class:`~repro.faults.FaultModel`, or ``None`` to remove the
        model again.  A *null* model (all fault rates zero) simulates
        bit-identically to no fault model at all.
        """
        try:
            spec = make_fault_model(model, **params)
        except ValueError as exc:
            raise ScenarioError(str(exc)) from None
        if spec is None:
            merged = dict(self._settings)
            merged.pop("fault_model", None)
            return Scenario(merged)
        return self._with(fault_model=spec)

    # ------------------------------------------------------------------
    # Introspection / terminal operations
    # ------------------------------------------------------------------
    @property
    def settings(self) -> Dict[str, Any]:
        """A copy of the accumulated settings (useful for labels and hashes)."""
        return dict(self._settings)

    def label(self) -> str:
        """A short deterministic label, e.g. ``waw_wap-8x8-L1``."""
        s = self._settings
        parts = [s.get("design", "regular"), f"{s['mesh_width']}x{s['mesh_height']}"]
        kind = s.get("topology", "mesh")
        if kind != "mesh":
            parts.append(kind + (f"{s['concentration']}" if "concentration" in s else ""))
        if s.get("routing", "xy") != "xy":
            parts.append(s["routing"])
        if "max_packet_flits" in s:
            parts.append(f"L{s['max_packet_flits']}")
        if "min_packet_flits" in s:
            parts.append(f"m{s['min_packet_flits']}")
        if "buffer_depth" in s:
            parts.append(f"b{s['buffer_depth']}")
        if s.get("backend", "cycle") != "cycle":
            parts.append(s["backend"])
        if "analysis" in s:
            parts.append(s["analysis"])
        if "fault_model" in s:
            parts.append(s["fault_model"].label_token())
        return "-".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form of the scenario, inverse of :meth:`from_dict`.

        This is how a design point travels to the analysis daemon: the dict
        round-trips losslessly (``Scenario.from_dict(sc.to_dict()) == sc``
        modulo revalidation) and hashes deterministically, so it doubles as
        the scenario's wire format and cache identity.
        """
        s = self._settings
        data: Dict[str, Any] = {}
        for key in (
            "mesh_width",
            "mesh_height",
            "design",
            "topology",
            "routing",
            "concentration",
            "backend",
            "analysis",
            "max_packet_flits",
            "min_packet_flits",
            "buffer_depth",
        ):
            if key in s:
                data[key] = s[key]
        if "memory_controller" in s:
            mc = s["memory_controller"]
            data["memory_controller"] = [mc.x, mc.y]
        if "timing" in s:
            timing: RouterTiming = s["timing"]
            data["timing"] = {
                f.name: getattr(timing, f.name) for f in fields(RouterTiming)
            }
        if "messages" in s:
            messages: MessageConfig = s["messages"]
            data["messages"] = {
                f.name: getattr(messages, f.name) for f in fields(MessageConfig)
            }
        if "fault_model" in s:
            model: FaultModel = s["fault_model"]
            spec: Dict[str, Any] = {"kind": model.kind}
            for f in fields(model):
                value = getattr(model, f.name)
                if f.name == "reliability":
                    # ReliabilityConfig flattens to its scalar knobs, which
                    # make_fault_model accepts back in flat form.
                    spec.update({rf.name: getattr(value, rf.name) for rf in fields(value)})
                else:
                    spec[f.name] = value
            data["fault_model"] = spec
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output, revalidating.

        Every field passes back through the fluent setters, so a corrupted
        or hand-written dict fails with the same :class:`ScenarioError` a
        bad builder chain would raise.  Unknown keys are rejected.
        """
        if not isinstance(data, Mapping):
            raise ScenarioError(
                f"a scenario dict must be a mapping, got {type(data).__name__}"
            )
        remaining = dict(data)
        if "mesh_width" not in remaining:
            raise ScenarioError("a scenario dict needs at least 'mesh_width'")
        scenario = cls.mesh(
            remaining.pop("mesh_width"), remaining.pop("mesh_height", None)
        )
        if "design" in remaining:
            scenario = scenario.design(remaining.pop("design"))
        if any(key in remaining for key in ("topology", "routing", "concentration")):
            scenario = scenario.topology(
                remaining.pop("topology", "mesh"),
                routing=remaining.pop("routing", "xy"),
                concentration=remaining.pop("concentration", None),
            )
        if "backend" in remaining:
            scenario = scenario.backend(remaining.pop("backend"))
        if "analysis" in remaining:
            scenario = scenario.analysis(remaining.pop("analysis"))
        for key in ("max_packet_flits", "min_packet_flits", "buffer_depth"):
            if key in remaining:
                scenario = getattr(scenario, key)(remaining.pop(key))
        if "memory_controller" in remaining:
            coordinates = remaining.pop("memory_controller")
            try:
                x, y = coordinates
            except (TypeError, ValueError):
                raise ScenarioError(
                    f"memory_controller must be an [x, y] pair, got {coordinates!r}"
                ) from None
            scenario = scenario.memory_controller(x, y)
        if "timing" in remaining:
            timing = remaining.pop("timing")
            if not isinstance(timing, Mapping):
                raise ScenarioError(f"timing must be a mapping, got {timing!r}")
            known = {f.name for f in fields(RouterTiming)}
            unknown = set(timing) - known
            if unknown:
                raise ScenarioError(f"unknown timing field(s): {', '.join(sorted(unknown))}")
            scenario = scenario.timing(**dict(timing))
        if "messages" in remaining:
            messages = remaining.pop("messages")
            if not isinstance(messages, Mapping):
                raise ScenarioError(f"messages must be a mapping, got {messages!r}")
            try:
                scenario = scenario.messages(MessageConfig(**dict(messages)))
            except (TypeError, ValueError) as exc:
                raise ScenarioError(f"invalid messages: {exc}") from None
        if "fault_model" in remaining:
            scenario = scenario.fault_model(remaining.pop("fault_model"))
        if remaining:
            raise ScenarioError(
                f"unknown scenario field(s): {', '.join(sorted(remaining))}"
            )
        return scenario

    def as_job(self, experiment: str = "scenario_wctt", *, quick: bool = False, **params: Any):
        """This design point as a :class:`~repro.api.BatchJob` submission.

        The scenario travels as the ``scenario`` run() parameter of
        ``experiment`` (default: the registered ``scenario_wctt``
        design-point evaluation), so a ``sweep()`` grid can be handed to
        the :class:`~repro.api.BatchEngine` or submitted to a running
        analysis daemon (:meth:`repro.service.ServiceClient.submit_scenarios`).
        Extra keyword arguments become additional run() parameters.
        """
        from .engine import BatchJob

        return BatchJob(
            experiment=experiment,
            params={"scenario": self.to_dict(), **params},
            quick=quick,
        )

    def build(self) -> NoCConfig:
        """Produce the validated :class:`NoCConfig` for this scenario."""
        s = self._settings
        if "mesh_width" not in s:
            raise ScenarioError("a scenario needs a mesh; start from Scenario.mesh(width)")
        if "topology" in s or "routing" in s:
            # An explicit topology/routing choice builds a Topology object;
            # the default path keeps the seed's plain Mesh representation.
            try:
                mesh: Mesh = make_topology(
                    s.get("topology", "mesh"),
                    s["mesh_width"],
                    s["mesh_height"],
                    routing=s.get("routing", "xy"),
                    concentration=s.get("concentration"),
                )
            except ValueError as exc:
                raise ScenarioError(f"invalid scenario {self.label()}: {exc}") from None
        else:
            mesh = Mesh(s["mesh_width"], s["mesh_height"])
        arbitration, packetization = _DESIGNS[s.get("design", "regular")]
        kwargs: Dict[str, Any] = {
            "mesh": mesh,
            "arbitration": arbitration,
            "packetization": packetization,
        }
        if "backend" in s:
            kwargs["sim_backend"] = s["backend"]
        for key in (
            "max_packet_flits",
            "min_packet_flits",
            "buffer_depth",
            "timing",
            "messages",
            "memory_controller",
            "fault_model",
        ):
            if key in s:
                kwargs[key] = s[key]
        try:
            return NoCConfig(**kwargs)
        except ValueError as exc:
            raise ScenarioError(f"invalid scenario {self.label()}: {exc}") from None

    def __repr__(self) -> str:
        return f"Scenario({self.label()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Scenario):
            return NotImplemented
        return self._settings == other._settings

    def __hash__(self) -> int:
        return hash(tuple(sorted((k, repr(v)) for k, v in self._settings.items())))

    # ------------------------------------------------------------------
    def _with(self, **updates: Any) -> "Scenario":
        merged = dict(self._settings)
        merged.update(updates)
        return Scenario(merged)


def _apply_topology(scenario: "Scenario", value: Any) -> "Scenario":
    """Apply one topology-axis value: a kind name or a keyword mapping.

    ``topology=("mesh", "torus")`` sweeps kinds; a mapping spells out the
    full choice, e.g. ``topology=[{"kind": "cmesh", "concentration": 2},
    {"kind": "mesh", "routing": "yx"}]``.
    """
    if isinstance(value, str):
        return scenario.topology(value)
    if isinstance(value, Mapping):
        params = dict(value)
        kind = params.pop("kind", None)
        if kind is None:
            raise ScenarioError("a topology mapping needs a 'kind' entry")
        try:
            return scenario.topology(kind, **params)
        except TypeError:
            raise ScenarioError(
                f"unknown topology parameter in {dict(value)!r}; "
                "known parameters: kind, routing, concentration"
            ) from None
    raise ScenarioError(
        f"topology axis values must be kind names or mappings, got {value!r}"
    )


#: sweep() axis name -> Scenario method applying one value of that axis.
_SWEEP_AXES = {
    "mesh": lambda sc, v: _apply_mesh(sc, v),
    "design": lambda sc, v: sc.design(v),
    "topology": lambda sc, v: _apply_topology(sc, v),
    "backend": lambda sc, v: sc.backend(v),
    "analysis": lambda sc, v: sc.analysis(v),
    "max_packet_flits": lambda sc, v: sc.max_packet_flits(v),
    "min_packet_flits": lambda sc, v: sc.min_packet_flits(v),
    "buffer_depth": lambda sc, v: sc.buffer_depth(v),
    "memory_controller": lambda sc, v: sc.memory_controller(*v),
    "fault_model": lambda sc, v: _apply_fault_model(sc, v),
}


def _apply_fault_model(scenario: "Scenario", value: Any) -> "Scenario":
    """Apply one fault-model axis value: None, a kind name, mapping or spec.

    ``fault_model=(None, "independent")`` sweeps reliable links against the
    default independent model; mappings spell out the rates, e.g.
    ``fault_model=[{"kind": "independent", "loss_rate": r} for r in rates]``.
    """
    if value is None or isinstance(value, (str, FaultModel, Mapping)):
        return scenario.fault_model(value)
    raise ScenarioError(
        f"fault_model axis values must be None, kind names, mappings or "
        f"FaultModel instances, got {value!r}"
    )


def _apply_mesh(scenario: Optional[Scenario], value: Any) -> Scenario:
    width, height = (value, None) if isinstance(value, int) else tuple(value)
    fresh = Scenario.mesh(width, height)
    if scenario is None:
        return fresh
    merged = scenario.settings
    merged["mesh_width"], merged["mesh_height"] = (
        fresh.settings["mesh_width"],
        fresh.settings["mesh_height"],
    )
    return Scenario(merged)


def sweep(base: Optional[Scenario] = None, **grid: Any) -> List[Scenario]:
    """Expand parameter grids into a list of scenarios (cartesian product).

    ``base`` provides the fixed part of every design point; each keyword is
    one axis of the grid and may be a single value or an iterable of values.
    Axes: ``mesh``, ``design``, ``topology`` (kind names or mappings like
    ``{"kind": "cmesh", "concentration": 2}``), ``backend`` (simulation
    backend name, ``cycle`` or ``event``), ``analysis`` (analysis backend
    name, e.g. ``regular``/``weighted``/``holistic``/``trajectory``/
    ``vector``), ``max_packet_flits``,
    ``min_packet_flits``, ``buffer_depth`` and ``memory_controller`` (an
    ``(x, y)`` pair).

    Mesh axis values are square sizes; a bare 2-tuple of ints is two square
    sizes (``mesh=(8, 4)`` is an 8x8 and a 4x4).  Rectangular meshes must be
    wrapped in a list: ``mesh=[(8, 4)]`` is one 8x4 design point.

    The expansion order is deterministic: the last axis varies fastest, like
    nested for-loops written in keyword order.
    """
    if not grid:
        raise ScenarioError("sweep() needs at least one axis, e.g. mesh=(2, 3, 4)")
    unknown = [k for k in grid if k not in _SWEEP_AXES]
    if unknown:
        known = ", ".join(_SWEEP_AXES)
        raise ScenarioError(f"unknown sweep axis {unknown[0]!r}; known axes: {known}")
    if base is None and "mesh" not in grid:
        raise ScenarioError("sweep() without a base scenario needs a mesh axis")

    axes: List[Tuple[str, List[Any]]] = []
    for name, values in grid.items():
        value_list = _axis_values(name, values)
        if not value_list:
            raise ScenarioError(f"sweep axis {name!r} has no values")
        axes.append((name, value_list))

    scenarios: List[Scenario] = []
    for combo in itertools.product(*(values for _, values in axes)):
        scenario = base
        # The mesh axis must be applied first: it is the only way to create
        # a scenario when no base is given.
        ordered = sorted(zip((name for name, _ in axes), combo), key=lambda kv: kv[0] != "mesh")
        for name, value in ordered:
            if name == "mesh":
                scenario = _apply_mesh(scenario, value)
            else:
                scenario = _SWEEP_AXES[name](scenario, value)
        scenarios.append(scenario)
    return scenarios


def sweep_jobs(
    base: Optional[Scenario] = None,
    *,
    experiment: str = "scenario_wctt",
    quick: bool = False,
    **grid: Any,
) -> List["BatchJob"]:
    """Expand sweep axes straight into :class:`~repro.api.BatchJob` values.

    ``sweep_jobs(base, **grid)`` is ``[sc.as_job(experiment, quick=quick)
    for sc in sweep(base, **grid)]`` -- the job-grid form consumed by the
    :class:`~repro.api.BatchEngine`, the analysis daemon and
    :class:`repro.campaign.Campaign`.  Expansion order (and therefore the
    campaign shard layout) is the deterministic row-major order of
    :func:`sweep`.
    """
    return [
        scenario.as_job(experiment, quick=quick)
        for scenario in sweep(base, **grid)
    ]


def _axis_values(name: str, values: Any) -> List[Any]:
    if isinstance(values, (str, bytes)):
        return [values]
    if name == "topology" and isinstance(values, Mapping):
        # A single mapping is one axis value, not an iterable of keys.
        return [values]
    if name == "fault_model" and isinstance(values, (Mapping, FaultModel)):
        # Same: one model spec, not an iterable of its keys.
        return [values]
    if name == "mesh" and isinstance(values, tuple) and len(values) == 2 and all(
        isinstance(v, int) for v in values
    ):
        # Ambiguous (8, 4): treat as two sizes, use [(8, 4)] for one rectangle.
        return list(values)
    if name == "memory_controller" and isinstance(values, tuple) and len(values) == 2 and all(
        isinstance(v, int) for v in values
    ):
        return [values]
    if isinstance(values, Iterable):
        return list(values)
    return [values]


def _positive_int(name: str, value: Any) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ScenarioError(f"{name} must be an integer, got {value!r}")
    if value < 1:
        raise ScenarioError(f"{name} must be >= 1, got {value}")
    return value
