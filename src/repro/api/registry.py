"""Decorator-based experiment registry.

Each experiment module registers its ``run()`` function with::

    @experiment(
        "table2",
        description="Table II -- WCTT scaling with mesh size",
        paper_reference="Table II",
        quick_params={"sizes": (2, 3, 4)},
    )
    def run(*, sizes=(2, 3, 4, 5, 6, 7, 8), ...):
        ...

The decorator wraps the function so it returns an
:class:`~repro.api.results.ExperimentResult` (carrying the call parameters
and the paper reference) and records an :class:`ExperimentSpec` in the global
registry, which the CLI and the batch engine use for discovery.  The old
hand-maintained ``EXPERIMENTS`` dict in ``runner.py`` is now derived from
this registry.
"""

from __future__ import annotations

import difflib
import functools
import importlib
import inspect
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from .results import ExperimentResult, unwrap

__all__ = [
    "ExperimentSpec",
    "UnknownExperimentError",
    "experiment",
    "get_experiment",
    "list_experiments",
    "discover",
]

#: Axis name -> (value -> run() kwargs) translators, per experiment; used by
#: the engine's sweep support (see the ``sweep_axes`` decorator argument).
AxisMap = Mapping[str, Callable[[Any], Dict[str, Any]]]

_REGISTRY: Dict[str, "ExperimentSpec"] = {}


class UnknownExperimentError(KeyError):
    """Raised for unknown experiment names, with near-miss suggestions."""

    def __init__(self, name: str, known: List[str]) -> None:
        message = f"unknown experiment {name!r}"
        matches = difflib.get_close_matches(name, known, n=3, cutoff=0.4)
        if matches:
            message += f"; did you mean {', '.join(matches)}?"
        message += f" (known experiments: {', '.join(sorted(known))})"
        super().__init__(message)
        self.name = name
        self.suggestions = matches

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: metadata plus the run/report callables."""

    name: str
    description: str
    paper_reference: str
    runner: Callable[..., ExperimentResult]
    module: str
    quick_params: Mapping[str, Any] = field(default_factory=dict)
    sweep_axes: AxisMap = field(default_factory=dict)

    def run(self, *, quick: bool = False, **params: Any) -> ExperimentResult:
        """Run the experiment; ``quick`` merges in the registered fast params.

        Explicit ``params`` override the quick defaults.
        """
        merged: Dict[str, Any] = dict(self.quick_params) if quick else {}
        merged.update(params)
        return self.runner(**merged)

    def report(self, result: Optional[ExperimentResult] = None, **kwargs: Any) -> str:
        """Render the module's textual report for ``result`` (or a fresh run)."""
        module = importlib.import_module(self.module)
        report_fn = getattr(module, "report")
        if result is None:
            return report_fn(**kwargs)
        return report_fn(unwrap(result), **kwargs)

    def report_text(self, *, quick: bool = False, **params: Any) -> str:
        """Run and render in one step (the legacy ``run_experiment`` shape)."""
        return self.report(self.run(quick=quick, **params))

    def supports_param(self, name: str) -> bool:
        """True when the experiment's ``run()`` accepts keyword ``name``.

        Used by the CLI to forward cross-cutting options (e.g. ``--backend``)
        only to the experiments that understand them.
        """
        try:
            signature = inspect.signature(self.runner)
        except (TypeError, ValueError):  # pragma: no cover - defensive
            return False
        parameters = signature.parameters
        if name in parameters:
            return True
        return any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
        )

    def params_for_axes(self, **axes: Any) -> Dict[str, Any]:
        """Translate sweep-axis values into run() keyword arguments."""
        params: Dict[str, Any] = {}
        for axis, value in axes.items():
            translate = self.sweep_axes.get(axis)
            if translate is None:
                known = ", ".join(sorted(self.sweep_axes)) or "none"
                raise ValueError(
                    f"experiment {self.name!r} cannot sweep axis {axis!r} "
                    f"(supported axes: {known})"
                )
            params.update(translate(value))
        return params


def experiment(
    name: str,
    *,
    description: str,
    paper_reference: str = "",
    quick_params: Optional[Mapping[str, Any]] = None,
    sweep_axes: Optional[AxisMap] = None,
) -> Callable[[Callable[..., Any]], Callable[..., ExperimentResult]]:
    """Register an experiment ``run()`` function under ``name``.

    The wrapped function returns an :class:`ExperimentResult` whose payload
    is whatever the original function returned (already-wrapped results pass
    through untouched, so decorating an ExperimentResult-returning function
    is also fine).
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., ExperimentResult]:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> ExperimentResult:
            payload = fn(*args, **kwargs)
            if isinstance(payload, ExperimentResult):
                return payload
            return ExperimentResult(
                experiment=name,
                payload=payload,
                params=dict(kwargs),
                paper_reference=paper_reference,
                description=description,
            )

        spec = ExperimentSpec(
            name=name,
            description=description,
            paper_reference=paper_reference,
            runner=wrapper,
            module=fn.__module__,
            quick_params=dict(quick_params or {}),
            sweep_axes=dict(sweep_axes or {}),
        )
        _REGISTRY[name] = spec
        wrapper.spec = spec  # type: ignore[attr-defined]
        return wrapper

    return decorate


def get_experiment(name: str) -> ExperimentSpec:
    """Look up one experiment by name (raises :class:`UnknownExperimentError`)."""
    discover()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownExperimentError(name, list(_REGISTRY)) from None


def list_experiments() -> List[ExperimentSpec]:
    """All registered experiments, sorted by name."""
    discover()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def discover() -> None:
    """Import the experiment modules so their decorators register themselves."""
    if "repro.experiments" not in sys.modules:
        importlib.import_module("repro.experiments")
