"""Batch execution engine: parallel fan-out, config-hash caching, export.

The engine runs registered experiments described by :class:`BatchJob`
values.  Each job is keyed by a deterministic hash of its canonicalised
``(experiment, params, quick)`` triple plus the package version; results are
cached under that hash (in memory and, when ``cache_dir`` is given, as JSON
files on disk), so re-running a sweep only computes the design points that
changed.

Cache misses fan out over a :mod:`multiprocessing` pool when ``jobs > 1``;
results travel back as pickled :class:`ExperimentResult` objects, so the
caller can still render the full textual reports for freshly computed jobs.
Disk cache hits are rebuilt from their JSON form (rows only).

The persistent layer is the durable content-addressed
:class:`~repro.service.store.ResultStore` shared with the analysis daemon
(:mod:`repro.service`): pass ``store=ResultStore(...)`` to share one, or
keep passing ``cache_dir=...`` to get a store over that directory.
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
import time
from dataclasses import dataclass, field, fields, is_dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from . import registry
from .results import ExperimentResult, ResultEncoder, _plain

# Imported after .results on purpose: repro.service.store builds on
# repro.api.results, so the submodule must already be in sys.modules.
from ..service.store import ResultStore

__all__ = [
    "BatchJob",
    "BatchResult",
    "BatchEngine",
    "config_hash",
    "map_jobs",
    "safe_execute_job",
]


def map_jobs(fn, items: Sequence[Any], *, jobs: int = 1) -> List[Any]:
    """Map a picklable function over ``items`` on the batch worker pool.

    The parallel fan-out used by :class:`BatchEngine` for cache misses,
    exposed for other bulk workloads (the Monte-Carlo trial runner of
    :mod:`repro.faults.montecarlo` reuses it).  ``jobs = 1`` -- or a single
    item -- runs in-process; larger values fan out over a
    :mod:`multiprocessing` pool of ``min(jobs, len(items))`` workers.
    Results come back in item order.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    items = list(items)
    if not items:
        return []
    if jobs == 1 or len(items) == 1:
        return [fn(item) for item in items]
    import multiprocessing

    workers = min(jobs, len(items))
    context = multiprocessing.get_context()
    with context.Pool(processes=workers) as pool:
        return pool.map(fn, items)


@dataclass(frozen=True)
class BatchJob:
    """One experiment invocation: name plus run() keyword parameters."""

    experiment: str
    params: Mapping[str, Any] = field(default_factory=dict)
    quick: bool = False

    def describe(self) -> str:
        rendered = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
        suffix = " [quick]" if self.quick else ""
        return f"{self.experiment}({rendered}){suffix}"


@dataclass
class BatchResult:
    """Outcome of one job: the result plus provenance metadata.

    ``error`` is ``None`` for a successful run; a failed design point
    carries the captured worker-side failure description instead (and an
    empty placeholder result), so one raising job can never discard its
    completed siblings' results.
    """

    job: BatchJob
    result: ExperimentResult
    config_hash: str
    cached: bool
    duration_seconds: float
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the job completed without a captured failure."""
        return self.error is None

    def to_dict(self) -> Dict[str, Any]:
        data = self.result.to_dict()
        data["config_hash"] = self.config_hash
        data["cached"] = self.cached
        data["duration_seconds"] = round(self.duration_seconds, 6)
        if self.error is not None:
            data["error"] = self.error
        return data


def _canonical(value: Any) -> Any:
    """Reduce a parameter value to a deterministic, hashable plain form.

    Containers get sorted keys and dataclasses keep a ``__type__`` tag (two
    different dataclasses with equal fields must not collide); everything
    else flattens through the shared :func:`repro.api.results._plain`.
    """
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [_canonical(v) for v in value]
        if isinstance(value, (set, frozenset)):
            items.sort(key=repr)
        return items
    if is_dataclass(value) and not isinstance(value, type):
        return {
            "__type__": type(value).__name__,
            **{f.name: _canonical(getattr(value, f.name)) for f in fields(value)},
        }
    return _plain(value)


def config_hash(job: BatchJob) -> str:
    """Deterministic hash of one job's full configuration.

    Includes the package version so caches do not survive releases that may
    have changed the models.
    """
    from .. import __version__

    blob = json.dumps(
        {
            "version": __version__,
            "experiment": job.experiment,
            "quick": job.quick,
            "params": _canonical(dict(job.params)),
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def _execute_job(job: BatchJob) -> Tuple[ExperimentResult, float]:
    """Run one job in the current process (also the pool worker entry point)."""
    registry.discover()
    spec = registry.get_experiment(job.experiment)
    start = time.perf_counter()
    result = spec.run(quick=job.quick, **dict(job.params))
    return result, time.perf_counter() - start


def safe_execute_job(job: BatchJob) -> Tuple[str, Any, float]:
    """Pool-worker entry point that captures per-job failures.

    Returns ``("ok", result, seconds)`` or ``("error", description,
    seconds)``; the description is a pickle-safe string, so a raising
    design point travels back through the :mod:`multiprocessing` pool as a
    recorded failure instead of poisoning the whole ``pool.map`` call (which
    would discard every completed sibling result).
    """
    start = time.perf_counter()
    try:
        result, duration = _execute_job(job)
        return ("ok", result, duration)
    except Exception as exc:  # noqa: BLE001 - captured as the job's outcome
        return ("error", f"{type(exc).__name__}: {exc}", time.perf_counter() - start)


def _failure_result(job: BatchJob, error: str) -> ExperimentResult:
    """The empty placeholder result recorded for a failed design point."""
    return ExperimentResult(
        experiment=job.experiment,
        payload=[],
        params=dict(job.params),
        description=f"failed: {error}",
    )


class BatchEngine:
    """Cache-aware, optionally parallel runner for registered experiments.

    ``jobs`` is the worker-process count (1 = run in-process); ``cache_dir``
    enables the persistent cache (a :class:`ResultStore` over that
    directory) and ``store`` shares an existing store -- e.g. the daemon's
    ``~/.cache/repro`` -- instead; ``use_cache=False`` disables caching
    entirely (every job recomputes).
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
        store: Optional["ResultStore"] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if store is not None and cache_dir is not None:
            raise ValueError("pass either store= or cache_dir=, not both")
        self.jobs = jobs
        if store is None and cache_dir is not None:
            store = ResultStore(cache_dir)
        self.store = store
        self.cache_dir = store.root if store is not None else None
        self.use_cache = use_cache
        self._memory_cache: Dict[str, ExperimentResult] = {}

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, job: BatchJob) -> BatchResult:
        """Run a single job through the cache."""
        return self.run_many([job])[0]

    def run_many(self, jobs: Sequence[BatchJob]) -> List[BatchResult]:
        """Run all jobs, fanning cache misses out over the worker pool.

        Results come back in job order.  Duplicate jobs in one batch are
        computed once.
        """
        jobs = list(jobs)
        hashes = [config_hash(job) for job in jobs]
        results: Dict[int, BatchResult] = {}

        pending: Dict[str, List[int]] = {}
        for index, (job, digest) in enumerate(zip(jobs, hashes)):
            cached = self._cache_lookup(digest) if self.use_cache else None
            if cached is not None:
                results[index] = BatchResult(
                    job=job,
                    result=cached,
                    config_hash=digest,
                    cached=True,
                    duration_seconds=0.0,
                )
            else:
                pending.setdefault(digest, []).append(index)

        unique_jobs = [(digest, jobs[indices[0]]) for digest, indices in pending.items()]
        computed = self._compute([job for _, job in unique_jobs])
        for (digest, job), (status, payload, duration) in zip(unique_jobs, computed):
            if status != "ok":
                # A raising design point becomes a recorded failed outcome;
                # failures are never cached, so a resubmission retries.
                error = str(payload)
                for position, index in enumerate(pending[digest]):
                    results[index] = BatchResult(
                        job=jobs[index],
                        result=_failure_result(jobs[index], error),
                        config_hash=digest,
                        cached=position > 0,
                        duration_seconds=duration if position == 0 else 0.0,
                        error=error,
                    )
                continue
            result = payload
            if self.use_cache:
                self._cache_store(digest, result, duration)
            for position, index in enumerate(pending[digest]):
                results[index] = BatchResult(
                    job=jobs[index],
                    result=result,
                    config_hash=digest,
                    # Duplicates within the batch are computed once; only the
                    # first occurrence reports the compute time.
                    cached=position > 0,
                    duration_seconds=duration if position == 0 else 0.0,
                )
        return [results[i] for i in range(len(jobs))]

    def sweep(
        self,
        experiment: str,
        *,
        quick: bool = False,
        base_params: Optional[Mapping[str, Any]] = None,
        **axes: Iterable[Any],
    ) -> List[BatchResult]:
        """Expand axis grids into jobs and run them (cartesian product).

        Axis names are translated to run() parameters by the experiment's
        registered ``sweep_axes`` (e.g. ``size=(2, 3, 4)`` becomes
        ``sizes=(2,)`` per design point for table2 but ``mesh_size=2`` for
        table3).
        """
        spec = registry.get_experiment(experiment)
        names = list(axes)
        grids = [list(axes[name]) for name in names]
        for name, values in zip(names, grids):
            if not values:
                raise ValueError(f"sweep axis {name!r} has no values")
        import itertools

        batch: List[BatchJob] = []
        for combo in itertools.product(*grids):
            params = dict(base_params or {})
            params.update(spec.params_for_axes(**dict(zip(names, combo))))
            batch.append(BatchJob(experiment=experiment, params=params, quick=quick))
        return self.run_many(batch)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    @staticmethod
    def to_json(results: Sequence[BatchResult], *, indent: Optional[int] = 2) -> str:
        """One JSON array with every result's dict form (always serialisable)."""
        return json.dumps(
            [r.to_dict() for r in results], indent=indent, cls=ResultEncoder
        )

    @staticmethod
    def to_csv(results: Sequence[BatchResult]) -> str:
        """Flat CSV: one line per data row, prefixed by experiment metadata."""
        header: List[str] = ["experiment", "config_hash"]
        flat_rows: List[Dict[str, Any]] = []
        for batch_result in results:
            result_header, result_rows = batch_result.result.to_csv_rows()
            for key in result_header:
                if key not in header:
                    header.append(key)
            for row in result_rows:
                flat: Dict[str, Any] = {
                    "experiment": batch_result.job.experiment,
                    "config_hash": batch_result.config_hash,
                }
                flat.update(dict(zip(result_header, row)))
                flat_rows.append(flat)
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=header, extrasaction="ignore")
        writer.writeheader()
        for row in flat_rows:
            writer.writerow(row)
        return buffer.getvalue()

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def cached_results(self) -> List[BatchResult]:
        """Everything currently in the persistent store (for ``export``)."""
        if self.store is None:
            return []
        results: List[BatchResult] = []
        for digest in self.store.keys():
            result = self.store.get(digest)
            if result is None:
                continue
            results.append(
                BatchResult(
                    job=BatchJob(experiment=result.experiment, params=result.params),
                    result=result,
                    config_hash=digest,
                    cached=True,
                    duration_seconds=0.0,
                )
            )
        return results

    def _cache_lookup(self, digest: str) -> Optional[ExperimentResult]:
        hit = self._memory_cache.get(digest)
        if hit is not None:
            return hit
        if self.store is None:
            return None
        hit = self.store.get(digest)
        if hit is not None:
            # Promote the disk hit so repeated lookups of the same digest
            # stop re-reading and re-parsing the JSON file.
            self._memory_cache[digest] = hit
        return hit

    def _cache_store(
        self, digest: str, result: ExperimentResult, duration: float = 0.0
    ) -> None:
        self._memory_cache[digest] = result
        if self.store is not None:
            self.store.put(digest, result, duration_seconds=duration)

    def _compute(self, jobs: List[BatchJob]) -> List[Tuple[str, Any, float]]:
        return map_jobs(safe_execute_job, jobs, jobs=self.jobs)
