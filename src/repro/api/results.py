"""The common result protocol of every experiment driver.

Historically each experiment's ``run()`` returned its own ad-hoc shape (a
list of rows here, a grid object there) and only the textual ``report()``
views were uniform.  :class:`ExperimentResult` turns the structured data into
the primary artefact: every registered experiment returns one, carrying

* the experiment ``name`` and the ``paper_reference`` it reproduces,
* the ``params`` the run was invoked with,
* the native ``payload`` (the driver's own rows/grid dataclasses), and
* uniform machine-readable exports -- :meth:`to_dict`, :meth:`to_json` and
  :meth:`to_csv_rows`.

``report()`` functions remain pure views over the payload, so the rendered
tables are unchanged.  For backwards compatibility the wrapper behaves like
its payload: iteration, indexing, ``len()`` and attribute access are all
delegated, so ``for row in table2_wctt.run()`` keeps working.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, is_dataclass
from enum import Enum
from fractions import Fraction
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = ["ExperimentResult", "ResultEncoder", "unwrap"]


class ResultEncoder(json.JSONEncoder):
    """JSON encoder understanding the value types experiment payloads use.

    Delegates to :func:`_plain`: ``Fraction`` becomes a ``"num/den"``
    string, coordinates become ``[x, y]`` pairs, enums collapse to their
    value and any remaining dataclass is emitted field by field.
    """

    def default(self, o: Any) -> Any:  # noqa: D102 - see class docstring
        return _plain(o)


def _payload_rows(payload: Any) -> List[Dict[str, Any]]:
    """Flatten a native payload into a list of homogeneous row dicts."""
    if payload is None:
        return []
    if hasattr(payload, "as_rows"):
        return [dict(row) for row in payload.as_rows()]
    if isinstance(payload, Mapping):
        return [dict(payload)]
    if isinstance(payload, Sequence) and not isinstance(payload, (str, bytes)):
        rows = []
        for item in payload:
            if hasattr(item, "as_dict"):
                rows.append(dict(item.as_dict()))
            elif isinstance(item, Mapping):
                rows.append(dict(item))
            else:
                rows.append({"value": item})
        return rows
    if hasattr(payload, "as_dict"):
        return [dict(payload.as_dict())]
    return [{"value": payload}]


@dataclass
class ExperimentResult:
    """Uniform, exportable wrapper around one experiment run.

    The ``payload`` is the driver's native structured result; the wrapper
    delegates sequence/attribute access to it so existing callers are
    unaffected by the API migration.
    """

    experiment: str
    payload: Any
    params: Dict[str, Any] = field(default_factory=dict)
    paper_reference: str = ""
    description: str = ""
    from_cache: bool = False

    # ------------------------------------------------------------------
    # Machine-readable exports
    # ------------------------------------------------------------------
    def rows(self) -> List[Dict[str, Any]]:
        """The payload flattened to a list of homogeneous row dicts."""
        return _payload_rows(self.payload)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form: experiment metadata plus the flattened rows."""
        return {
            "experiment": self.experiment,
            "paper_reference": self.paper_reference,
            "description": self.description,
            "params": {k: _plain(v) for k, v in self.params.items()},
            "rows": [{k: _plain(v) for k, v in row.items()} for row in self.rows()],
        }

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        """JSON rendering of :meth:`to_dict` (always serialisable)."""
        return json.dumps(self.to_dict(), indent=indent, cls=ResultEncoder, sort_keys=False)

    def to_csv_rows(self) -> Tuple[List[str], List[List[Any]]]:
        """``(header, rows)`` ready for :mod:`csv` writers.

        The header is the union of the row keys in first-seen order, so
        heterogeneous payloads (e.g. sweeps over several experiments) can be
        concatenated into one file.
        """
        dict_rows = self.to_dict()["rows"]
        header: List[str] = []
        for row in dict_rows:
            for key in row:
                if key not in header:
                    header.append(key)
        return header, [[_csv_cell(row.get(key, "")) for key in header] for row in dict_rows]

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentResult":
        """Rebuild a (rows-only) result from its :meth:`to_dict` form.

        Used by the batch engine's persistent cache: the native payload is
        not reconstructed, the flattened rows become the payload instead.
        """
        return cls(
            experiment=str(data.get("experiment", "")),
            payload=[dict(row) for row in data.get("rows", [])],
            params=dict(data.get("params", {})),
            paper_reference=str(data.get("paper_reference", "")),
            description=str(data.get("description", "")),
            from_cache=True,
        )

    # ------------------------------------------------------------------
    # Payload delegation (backwards compatibility with the old run() types)
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Any]:
        return iter(self.payload)

    def __getitem__(self, index: Any) -> Any:
        return self.payload[index]

    def __len__(self) -> int:
        return len(self.payload)

    def __bool__(self) -> bool:
        try:
            return len(self.payload) > 0
        except TypeError:
            return self.payload is not None

    def __getattr__(self, name: str) -> Any:
        # Only called when normal attribute lookup fails; forward to the
        # payload so e.g. ``result.normalized`` reaches a Table3Result.
        payload = object.__getattribute__(self, "payload")
        try:
            return getattr(payload, name)
        except AttributeError:
            raise AttributeError(
                f"{type(self).__name__!s} of experiment {self.experiment!r} has no "
                f"attribute {name!r} (payload type: {type(payload).__name__})"
            ) from None


def unwrap(result: Any) -> Any:
    """Return the native payload of ``result`` (no-op for plain payloads).

    ``report()`` views accept both :class:`ExperimentResult` objects and the
    historical native payloads; they call this first.
    """
    if isinstance(result, ExperimentResult):
        return result.payload
    return result


def _plain(value: Any) -> Any:
    """Recursively convert one value to a JSON-friendly plain type.

    The single source of truth for value flattening: :class:`ResultEncoder`
    and the engine's config-hash canonicalisation both build on it.
    """
    if isinstance(value, Fraction):
        return f"{value.numerator}/{value.denominator}"
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, Mapping):
        return {str(_plain(k)): _plain(v) for k, v in value.items()}
    if isinstance(value, (set, frozenset)):
        return sorted((_plain(v) for v in value), key=repr)
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "x") and hasattr(value, "y") and not isinstance(value, type):
        return [value.x, value.y]
    if is_dataclass(value) and not isinstance(value, type):
        return {f.name: _plain(getattr(value, f.name)) for f in fields(value)}
    return repr(value)


def _csv_cell(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return json.dumps(value, cls=ResultEncoder, sort_keys=True)
