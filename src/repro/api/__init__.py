"""Public experiment API: scenarios, results, registry and batch engine.

This package is the front door for running the reproduction
programmatically:

* :class:`Scenario` / :func:`sweep` -- fluent, validated construction of NoC
  design points and parameter-grid expansion;
* :class:`ExperimentResult` -- the uniform, exportable return type of every
  experiment ``run()`` (JSON/CSV views, paper reference, parameters);
* :func:`experiment` / :func:`get_experiment` / :func:`list_experiments` --
  the decorator-based registry that drives discovery, the CLI and the
  engine;
* :class:`BatchEngine` -- cache-aware batch execution with multiprocessing
  fan-out and JSON/CSV export.

Quick start::

    from repro.api import BatchEngine, BatchJob, Scenario, get_experiment

    config = Scenario.mesh(8).waw_wap().max_packet_flits(1).build()
    result = get_experiment("table2").run(quick=True)
    print(result.to_json())

    engine = BatchEngine(jobs=4, cache_dir=".repro-cache")
    results = engine.sweep("table2", size=(2, 3, 4))
"""

from .engine import BatchEngine, BatchJob, BatchResult, config_hash
from .registry import (
    ExperimentSpec,
    UnknownExperimentError,
    discover,
    experiment,
    get_experiment,
    list_experiments,
)
from .results import ExperimentResult, ResultEncoder, unwrap
from .scenario import Scenario, ScenarioError, sweep, sweep_jobs

__all__ = [
    "BatchEngine",
    "BatchJob",
    "BatchResult",
    "config_hash",
    "ExperimentSpec",
    "UnknownExperimentError",
    "discover",
    "experiment",
    "get_experiment",
    "list_experiments",
    "ExperimentResult",
    "ResultEncoder",
    "unwrap",
    "Scenario",
    "ScenarioError",
    "sweep",
    "sweep_jobs",
]
