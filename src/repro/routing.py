"""Dimension-ordered (XY) routing.

The paper assumes deterministic XY routing: a packet first travels along the
X dimension until it reaches the destination column and then along the Y
dimension until it reaches the destination row, where it is ejected through
the LOCAL (PME) port.  Because the route of a packet is fully determined by
its source and destination, both the WaW weights and the WCTT analyses can be
computed statically; this module is the single source of truth for those
routes, shared by the analytical models (:mod:`repro.core`) and by the
cycle-accurate simulator (:mod:`repro.noc`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .geometry import Coord, Mesh, Port

__all__ = [
    "Hop",
    "xy_output_port",
    "xy_route",
    "xy_path_routers",
    "legal_inputs_for_output",
    "legal_outputs_for_input",
]


@dataclass(frozen=True)
class Hop:
    """One router traversal of a route.

    ``router`` is the router being crossed, ``in_port`` the input port the
    packet arrives on (``LOCAL`` for the injection router) and ``out_port``
    the output port the packet leaves through (``LOCAL`` for the ejection
    router).
    """

    router: Coord
    in_port: Port
    out_port: Port


def xy_output_port(current: Coord, destination: Coord) -> Port:
    """Output port selected by XY routing at ``current`` for ``destination``.

    Returns ``Port.LOCAL`` when ``current == destination``.
    """
    if current.x < destination.x:
        return Port.XPLUS
    if current.x > destination.x:
        return Port.XMINUS
    if current.y < destination.y:
        return Port.YPLUS
    if current.y > destination.y:
        return Port.YMINUS
    return Port.LOCAL


def xy_route(mesh: Mesh, source: Coord, destination: Coord) -> List[Hop]:
    """Full XY route from ``source`` to ``destination`` as a list of hops.

    The first hop's input port is ``LOCAL`` (injection at the source router)
    and the last hop's output port is ``LOCAL`` (ejection at the destination
    router).  A route from a node to itself is a single hop
    ``Hop(router, LOCAL, LOCAL)``.
    """
    mesh.require(source)
    mesh.require(destination)

    hops: List[Hop] = []
    current = source
    in_port = Port.LOCAL
    # The path length is bounded by the Manhattan distance, so the loop below
    # always terminates; the explicit bound guards against future routing bugs.
    for _ in range(source.manhattan(destination) + 1):
        out_port = xy_output_port(current, destination)
        hops.append(Hop(current, in_port, out_port))
        if out_port is Port.LOCAL:
            return hops
        nxt = mesh.downstream(current, out_port)
        if nxt is None:  # pragma: no cover - defensive, XY never leaves the mesh
            raise RuntimeError(f"XY routing left the mesh at {current} via {out_port}")
        # Travel-direction port naming: the packet enters the next router on
        # the input port named after its direction of travel.
        in_port = out_port
        current = nxt
    raise RuntimeError(  # pragma: no cover - defensive
        f"XY route from {source} to {destination} did not terminate"
    )


def xy_path_routers(mesh: Mesh, source: Coord, destination: Coord) -> List[Coord]:
    """Just the sequence of routers crossed by the XY route."""
    return [hop.router for hop in xy_route(mesh, source, destination)]


# ----------------------------------------------------------------------
# Legal turns under XY routing
# ----------------------------------------------------------------------
#
# XY routing forbids any turn from the Y dimension back into the X dimension.
# These tables answer, for the *time-composable* worst-case analysis, the
# question "which input ports could possibly hold a packet requesting this
# output port?", independently of the actual flows in the system.

_LEGAL_INPUTS = {
    Port.XPLUS: (Port.XPLUS, Port.LOCAL),
    Port.XMINUS: (Port.XMINUS, Port.LOCAL),
    Port.YPLUS: (Port.YPLUS, Port.XPLUS, Port.XMINUS, Port.LOCAL),
    Port.YMINUS: (Port.YMINUS, Port.XPLUS, Port.XMINUS, Port.LOCAL),
    Port.LOCAL: (Port.XPLUS, Port.XMINUS, Port.YPLUS, Port.YMINUS),
}

_LEGAL_OUTPUTS = {
    Port.XPLUS: (Port.XPLUS, Port.YPLUS, Port.YMINUS, Port.LOCAL),
    Port.XMINUS: (Port.XMINUS, Port.YPLUS, Port.YMINUS, Port.LOCAL),
    Port.YPLUS: (Port.YPLUS, Port.LOCAL),
    Port.YMINUS: (Port.YMINUS, Port.LOCAL),
    Port.LOCAL: (Port.XPLUS, Port.XMINUS, Port.YPLUS, Port.YMINUS, Port.LOCAL),
}


def legal_inputs_for_output(
    mesh: Mesh, router: Coord, out_port: Port
) -> Tuple[Port, ...]:
    """Input ports of ``router`` that may request ``out_port`` under XY routing.

    Only ports that physically exist at ``router`` are returned (an edge
    router has no input from outside the mesh).  The LOCAL input is a
    legitimate contender for every directional output (the local core can
    inject towards any direction) but never for the LOCAL output (a node does
    not send packets to itself through the network).
    """
    existing = set(mesh.input_ports(router))
    return tuple(p for p in _LEGAL_INPUTS[out_port] if p in existing)


def legal_outputs_for_input(
    mesh: Mesh, router: Coord, in_port: Port
) -> Tuple[Port, ...]:
    """Output ports of ``router`` that a packet on ``in_port`` may request."""
    existing = set(mesh.output_ports(router))
    return tuple(p for p in _LEGAL_OUTPUTS[in_port] if p in existing)


def validate_route(mesh: Mesh, hops: Sequence[Hop]) -> None:
    """Validate that ``hops`` is a well-formed XY route (used by tests).

    Raises ``ValueError`` with a description of the first violation found.
    """
    if not hops:
        raise ValueError("empty route")
    if hops[0].in_port is not Port.LOCAL:
        raise ValueError("route must start with a LOCAL injection")
    if hops[-1].out_port is not Port.LOCAL:
        raise ValueError("route must end with a LOCAL ejection")
    for i, hop in enumerate(hops):
        if hop.out_port not in legal_outputs_for_input(mesh, hop.router, hop.in_port):
            raise ValueError(f"illegal turn at hop {i}: {hop}")
        if i + 1 < len(hops):
            nxt = mesh.downstream(hop.router, hop.out_port)
            if nxt != hops[i + 1].router:
                raise ValueError(f"hop {i} does not connect to hop {i + 1}")
            if hops[i + 1].in_port is not hop.out_port:
                raise ValueError(f"inconsistent port naming between hops {i} and {i + 1}")
