"""Backwards-compatible routing helpers (thin wrappers over ``repro.topology``).

Historically this module *was* the single source of truth for routes: it
hard-coded XY dimension-ordered routing on a 2D mesh.  Since the topology
extraction, routes, legal turns and route validation live on the pluggable
:class:`~repro.topology.Topology` objects (see :mod:`repro.topology`); the
functions here remain as thin delegating wrappers so that existing callers
-- and code written against the seed API -- keep working unchanged:

* given a plain :class:`~repro.geometry.Mesh` they behave exactly as before
  (XY routing on the mesh, byte-identical routes);
* given any :class:`~repro.topology.Topology` they delegate to that
  topology's own routing, so ``xy_route(topology, src, dst)`` transparently
  returns a torus/ring/YX route.  New code should call
  ``topology.route(...)`` / ``topology.legal_inputs_for_output(...)``
  directly.

Only :func:`xy_output_port` keeps a concrete implementation: it is the pure
mesh-XY decision function, independent of any topology object, and doubles
as the reference the ``Mesh2D`` equivalence tests compare against.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .geometry import Coord, Mesh, Port
from .topology.base import Hop, as_topology

__all__ = [
    "Hop",
    "xy_output_port",
    "xy_route",
    "xy_path_routers",
    "legal_inputs_for_output",
    "legal_outputs_for_input",
]


def xy_output_port(current: Coord, destination: Coord) -> Port:
    """Output port selected by mesh XY routing at ``current`` for ``destination``.

    Returns ``Port.LOCAL`` when ``current == destination``.
    """
    if current.x < destination.x:
        return Port.XPLUS
    if current.x > destination.x:
        return Port.XMINUS
    if current.y < destination.y:
        return Port.YPLUS
    if current.y > destination.y:
        return Port.YMINUS
    return Port.LOCAL


def xy_route(mesh: Mesh, source: Coord, destination: Coord) -> List[Hop]:
    """Full deterministic route from ``source`` to ``destination``.

    The first hop's input port is ``LOCAL`` (injection at the source router)
    and the last hop's output port is ``LOCAL`` (ejection at the destination
    router).  A route from a node to itself is a single hop
    ``Hop(router, LOCAL, LOCAL)``.
    """
    return as_topology(mesh).route(source, destination)


def xy_path_routers(mesh: Mesh, source: Coord, destination: Coord) -> List[Coord]:
    """Just the sequence of routers crossed by the route."""
    return as_topology(mesh).route_routers(source, destination)


def legal_inputs_for_output(mesh: Mesh, router: Coord, out_port: Port) -> Tuple[Port, ...]:
    """Input ports of ``router`` that may request ``out_port``.

    Only ports that physically exist at ``router`` are returned (an edge
    router of a mesh has no input from outside the mesh).  The LOCAL input is
    a legitimate contender for every directional output (the local core can
    inject towards any direction) but never for the LOCAL output (a node does
    not send packets to itself through the network).
    """
    return as_topology(mesh).legal_inputs_for_output(router, out_port)


def legal_outputs_for_input(mesh: Mesh, router: Coord, in_port: Port) -> Tuple[Port, ...]:
    """Output ports of ``router`` that a packet on ``in_port`` may request."""
    return as_topology(mesh).legal_outputs_for_input(router, in_port)


def validate_route(mesh: Mesh, hops: Sequence[Hop]) -> None:
    """Validate that ``hops`` is a well-formed route of ``mesh`` (used by tests).

    Raises ``ValueError`` with a description of the first violation found.
    """
    topology = as_topology(mesh)
    if not hops:
        raise ValueError("empty route")
    if hops[0].in_port is not Port.LOCAL:
        raise ValueError("route must start with a LOCAL injection")
    if hops[-1].out_port is not Port.LOCAL:
        raise ValueError("route must end with a LOCAL ejection")
    for i, hop in enumerate(hops):
        if hop.out_port not in topology.legal_outputs_for_input(hop.router, hop.in_port):
            raise ValueError(f"illegal turn at hop {i}: {hop}")
        if i + 1 < len(hops):
            nxt = topology.downstream(hop.router, hop.out_port)
            if nxt != hops[i + 1].router:
                raise ValueError(f"hop {i} does not connect to hop {i + 1}")
            if hops[i + 1].in_port is not hop.out_port:
                raise ValueError(f"inconsistent port naming between hops {i} and {i + 1}")
