"""Mesh geometry primitives shared by the analysis and the simulator.

The paper studies a canonical 2D mesh with XY (dimension-ordered, X first)
routing.  Everything else in this package -- the WaW weight model, the WCTT
analyses and the cycle-accurate simulator -- is expressed in terms of the
small vocabulary defined here:

* :class:`Coord` -- a node/router coordinate ``(x, y)``.  ``x`` is the
  horizontal coordinate (column, ``0 .. width-1``) and ``y`` the vertical
  coordinate (row, ``0 .. height-1``), exactly as in the paper's weight
  equations.  The memory controller of the evaluated manycore sits at
  ``(0, 0)`` (the paper's ``R(0, 0)``).
* :class:`Port` -- the five router ports.  Ports are named after the
  *direction of travel* of the traffic they carry, matching the paper's
  ``X+/X-/Y+/Y-/PME`` notation: the ``XPLUS`` input port of router ``(x, y)``
  receives flits travelling in the ``+x`` direction (i.e. coming from the
  neighbour at ``(x - 1, y)``), and the ``XPLUS`` output port forwards flits
  towards ``(x + 1, y)``.
* :class:`Mesh` -- the rectangular node grid, responsible for iterating
  nodes, resolving neighbours and validating coordinates.  It is the base
  class of every pluggable :class:`~repro.topology.Topology` (torus, ring,
  concentrated mesh, ...); routing lives on the topology objects of
  :mod:`repro.topology`, not here.

Keeping the naming aligned with the paper makes the weight equations of
Section III and their reproduction in :mod:`repro.core.weights` directly
comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, List, Optional, Tuple

__all__ = ["Coord", "Port", "Mesh", "OPPOSITE_PORT", "DIRECTION_PORTS"]


@dataclass(frozen=True, order=True)
class Coord:
    """A node coordinate in the mesh.

    ``x`` grows to the right (East), ``y`` grows downwards (South); the
    memory controller of the evaluated system is at ``Coord(0, 0)``.
    """

    x: int
    y: int

    def __iter__(self):
        return iter((self.x, self.y))

    def manhattan(self, other: "Coord") -> int:
        """Manhattan (hop) distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def offset(self, dx: int, dy: int) -> "Coord":
        """Return the coordinate displaced by ``(dx, dy)``."""
        return Coord(self.x + dx, self.y + dy)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.x},{self.y})"


class Port(Enum):
    """Router ports, named by the direction of travel of the traffic.

    ``LOCAL`` is the paper's ``PME`` port (processor/memory element): the
    injection port when used as an input and the ejection port when used as
    an output.
    """

    LOCAL = "PME"
    XPLUS = "X+"
    XMINUS = "X-"
    YPLUS = "Y+"
    YMINUS = "Y-"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Port.{self.name}"

    @property
    def is_local(self) -> bool:
        return self is Port.LOCAL

    @property
    def axis(self) -> Optional[str]:
        """``"x"`` or ``"y"`` for directional ports, ``None`` for LOCAL."""
        if self in (Port.XPLUS, Port.XMINUS):
            return "x"
        if self in (Port.YPLUS, Port.YMINUS):
            return "y"
        return None


#: Directional ports only (excludes LOCAL), in a fixed deterministic order.
DIRECTION_PORTS: Tuple[Port, ...] = (
    Port.XPLUS,
    Port.XMINUS,
    Port.YPLUS,
    Port.YMINUS,
)

#: The port on the neighbouring router that an output port connects to.
#: Traffic leaving router ``r`` through its ``XPLUS`` output keeps moving in
#: the ``+x`` direction, so it enters the next router through that router's
#: ``XPLUS`` *input* port.  With travel-direction naming the "opposite" port
#: is therefore the port itself; this table exists to make that explicit at
#: call sites and to keep the door open for other naming conventions.
OPPOSITE_PORT = {
    Port.XPLUS: Port.XPLUS,
    Port.XMINUS: Port.XMINUS,
    Port.YPLUS: Port.YPLUS,
    Port.YMINUS: Port.YMINUS,
    Port.LOCAL: Port.LOCAL,
}

#: Displacement of the downstream router reached through each output port.
_OUTPUT_DISPLACEMENT = {
    Port.XPLUS: (1, 0),
    Port.XMINUS: (-1, 0),
    Port.YPLUS: (0, 1),
    Port.YMINUS: (0, -1),
}

#: Displacement of the upstream router feeding each input port.
_INPUT_DISPLACEMENT = {
    Port.XPLUS: (-1, 0),
    Port.XMINUS: (1, 0),
    Port.YPLUS: (0, -1),
    Port.YMINUS: (0, 1),
}


@dataclass(frozen=True)
class Mesh:
    """A ``width x height`` 2D mesh (the paper's ``NxM``).

    ``width`` is the number of columns (the paper's ``N``, horizontal
    dimension) and ``height`` the number of rows (the paper's ``M``).
    """

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError(
                f"mesh dimensions must be positive, got {self.width}x{self.height}"
            )

    # ------------------------------------------------------------------
    # Node enumeration / identification
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    def nodes(self) -> Iterator[Coord]:
        """Iterate all node coordinates in row-major order."""
        for y in range(self.height):
            for x in range(self.width):
                yield Coord(x, y)

    def contains(self, coord: Coord) -> bool:
        return 0 <= coord.x < self.width and 0 <= coord.y < self.height

    def require(self, coord: Coord) -> Coord:
        """Return ``coord`` if it lies inside the mesh, raise otherwise."""
        if not self.contains(coord):
            raise ValueError(f"coordinate {coord} outside {self.width}x{self.height} mesh")
        return coord

    def node_id(self, coord: Coord) -> int:
        """Row-major integer identifier of a node (``y * width + x``)."""
        self.require(coord)
        return coord.y * self.width + coord.x

    def coord_of(self, node_id: int) -> Coord:
        """Inverse of :meth:`node_id`."""
        if not 0 <= node_id < self.num_nodes:
            raise ValueError(f"node id {node_id} outside 0..{self.num_nodes - 1}")
        return Coord(node_id % self.width, node_id // self.width)

    # ------------------------------------------------------------------
    # Port topology
    # ------------------------------------------------------------------
    def downstream(self, coord: Coord, out_port: Port) -> Optional[Coord]:
        """Router reached through ``out_port`` of ``coord`` (``None`` at edges).

        ``LOCAL`` has no downstream router (the flit is ejected).
        """
        self.require(coord)
        if out_port is Port.LOCAL:
            return None
        dx, dy = _OUTPUT_DISPLACEMENT[out_port]
        nxt = coord.offset(dx, dy)
        return nxt if self.contains(nxt) else None

    def upstream(self, coord: Coord, in_port: Port) -> Optional[Coord]:
        """Router feeding ``in_port`` of ``coord`` (``None`` at edges/LOCAL)."""
        self.require(coord)
        if in_port is Port.LOCAL:
            return None
        dx, dy = _INPUT_DISPLACEMENT[in_port]
        prev = coord.offset(dx, dy)
        return prev if self.contains(prev) else None

    def output_ports(self, coord: Coord) -> List[Port]:
        """Output ports that physically exist at ``coord`` (LOCAL included)."""
        ports = [Port.LOCAL]
        for port in DIRECTION_PORTS:
            if self.downstream(coord, port) is not None:
                ports.append(port)
        return ports

    def input_ports(self, coord: Coord) -> List[Port]:
        """Input ports that physically exist at ``coord`` (LOCAL included)."""
        ports = [Port.LOCAL]
        for port in DIRECTION_PORTS:
            if self.upstream(coord, port) is not None:
                ports.append(port)
        return ports

    def links(self) -> Iterator[Tuple[Coord, Port, Coord]]:
        """Iterate all directed inter-router links as ``(src, out_port, dst)``."""
        for coord in self.nodes():
            for port in DIRECTION_PORTS:
                nxt = self.downstream(coord, port)
                if nxt is not None:
                    yield coord, port, nxt

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.width}x{self.height} mesh"
