"""The event-driven backend: skip cycles in which nothing can happen.

The cycle-accurate model is *quiescent* between activity points: once every
buffered head-of-line flit has a ``ready_cycle`` in the future, no NIC holds
both queued flits and injection credits, every core is mid-compute-gap or
stalled on a reply and no memory-controller reply is due, then stepping the
clock changes nothing except

* the WaW arbiters of requester-less output ports, whose per-port credit
  counters gain one unit per idle cycle saturating at the port weight
  (:meth:`~repro.core.arbitration.Arbiter.idle_cycles` applies ``k`` of
  those in closed form), and
* per-core ``stall_cycles`` / ``compute_cycles`` bookkeeping, which is
  linear in the number of skipped cycles.

This backend therefore computes the next cycle at which *any* component can
act (``next_activity_cycle``), replays the skipped stretch's state effects
in closed form (``skip_idle_cycles`` / ``skip_cycles``) and then performs a
perfectly ordinary cycle-accurate step at the activity point -- real steps
share the exact same ``Network.step`` / ``ManycoreSystem.step`` code as the
reference backend, which is what makes the results bit-identical.  The
speedup comes from never iterating routers, NICs and cores over the dead
cycles between activity points: compute gaps of EEMBC-like profiles, memory
service latencies and link/pipeline delays.

The activity estimate is deliberately *conservative* (a lower bound on the
next interesting cycle): a head flit that is ready but blocked on credits
pins the estimate to "now", in which case the backend degrades gracefully
to plain cycle-accurate stepping -- never to a wrong result.
"""

from __future__ import annotations

from .backend import (
    SimulationBackend,
    network_stall_error,
    register_backend,
    system_stall_error,
)

__all__ = ["EventDrivenBackend"]


@register_backend
class EventDrivenBackend(SimulationBackend):
    """Advance the clock in jumps between activity points."""

    name = "event"

    def run_until_idle(self, network, *, max_cycles: int = 1_000_000) -> int:
        start = network.cycle
        budget_end = start + max_cycles
        while not network.is_idle():
            if network.cycle - start > max_cycles:
                raise network_stall_error(network, max_cycles)
            target = network.next_activity_cycle()
            if target is not None and target > network.cycle:
                # Jump to the next activity point (clamped so the cycle
                # budget check above still fires exactly like the
                # cycle-accurate loop would).
                network.skip_idle_cycles(min(target, budget_end + 1) - network.cycle)
                continue
            network.step_active()
        return network.cycle

    def run_to_completion(self, system, *, max_cycles: int = 5_000_000) -> int:
        start = system.cycle
        budget_end = start + max_cycles
        while not system.is_complete():
            if system.cycle - start > max_cycles:
                raise system_stall_error(system, max_cycles)
            target = system.next_activity_cycle()
            if target is not None and target > system.cycle:
                system.skip_cycles(min(target, budget_end + 1) - system.cycle)
                continue
            system.step_active()
        return system.cycle - start
