"""The reference backend: every component steps on every clock cycle.

These are the seed's original ``Network.run_until_idle`` and
``ManycoreSystem.run_to_completion`` loops, extracted behind the
:class:`~repro.sim.backend.SimulationBackend` interface.  Only the timeout
errors changed: they now describe what is still in flight (see
:class:`~repro.sim.backend.SimulationStallError`).
"""

from __future__ import annotations

from .backend import (
    SimulationBackend,
    network_stall_error,
    register_backend,
    system_stall_error,
)

__all__ = ["CycleAccurateBackend"]


@register_backend
class CycleAccurateBackend(SimulationBackend):
    """Advance the clock one cycle at a time, stepping everything."""

    name = "cycle"

    def run_until_idle(self, network, *, max_cycles: int = 1_000_000) -> int:
        start = network.cycle
        while not network.is_idle():
            if network.cycle - start > max_cycles:
                raise network_stall_error(network, max_cycles)
            network.step()
        return network.cycle

    def run_to_completion(self, system, *, max_cycles: int = 5_000_000) -> int:
        start = system.cycle
        while not system.is_complete():
            if system.cycle - start > max_cycles:
                raise system_stall_error(system, max_cycles)
            system.step()
        return system.cycle - start
