"""Pluggable simulation backends for the cycle-accurate NoC/manycore models.

The flit-level semantics of the simulator live in :mod:`repro.noc` and
:mod:`repro.manycore`; *how time is advanced* is a separate, pluggable
concern defined here:

* :class:`CycleAccurateBackend` -- the reference backend: every component is
  evaluated on every clock cycle (the seed's ``Network.run_until_idle`` /
  ``ManycoreSystem.run_to_completion`` loops, extracted verbatim);
* :class:`EventDrivenBackend` -- the fast backend: it tracks the next cycle
  at which *anything* in the system can act (a buffered flit becoming ready,
  a NIC holding injection credits, a core finishing its compute gap, a
  memory reply leaving the controller) and jumps straight there, replaying
  the skipped cycles' only state effects (WaW arbiter credit refills, core
  stall/compute counters) in closed form.  It reproduces the cycle-accurate
  results *bit for bit* -- the differential test suite
  (``tests/test_differential.py``) enforces this over a grid of topologies,
  routings, designs and workloads.

Backends are selected by name (``"cycle"`` / ``"event"``) through
:attr:`repro.core.config.NoCConfig.sim_backend`,
:meth:`repro.api.Scenario.backend`, the ``backend=`` parameter of the
simulating experiments and the ``repro-experiments --backend`` flag.
"""

from .backend import (
    SimulationBackend,
    SimulationStallError,
    available_backends,
    make_backend,
    normalize_backend_name,
    register_backend,
)
from .cycle import CycleAccurateBackend
from .event import EventDrivenBackend

__all__ = [
    "SimulationBackend",
    "SimulationStallError",
    "available_backends",
    "make_backend",
    "normalize_backend_name",
    "register_backend",
    "CycleAccurateBackend",
    "EventDrivenBackend",
]
