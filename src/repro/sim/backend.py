"""The :class:`SimulationBackend` interface and the backend registry.

A backend owns the *time-advancement loops* of the simulator -- nothing
else.  The flit/credit/arbitration semantics stay in :mod:`repro.noc` and
:mod:`repro.manycore`; a backend drives them through a small, documented
surface (``step``, ``is_idle``/``is_complete``, ``next_activity_cycle``,
``skip_idle_cycles``/``skip_cycles``), so every backend simulates exactly
the same hardware model and differs only in how fast it walks the clock.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Type, Union

__all__ = [
    "SimulationBackend",
    "SimulationStallError",
    "available_backends",
    "make_backend",
    "register_backend",
]


class SimulationStallError(RuntimeError):
    """A bounded simulation run exhausted its cycle budget before finishing.

    Raised by ``Network.run_until_idle`` and
    ``ManycoreSystem.run_to_completion`` (under every backend) with a
    description of what is still in flight -- buffered flit counts, per-node
    occupancy, unfinished cores -- so a deadlocked or under-budgeted run is
    diagnosable from the message alone.
    """


class SimulationBackend:
    """Interface of a simulation time-advancement strategy.

    Backends are stateless: all simulation state lives in the
    :class:`~repro.noc.network.Network` / :class:`~repro.manycore.system.ManycoreSystem`
    being driven, so one backend instance can serve any number of concurrent
    simulations.
    """

    #: Registry name of the backend (overridden by every implementation).
    name = "abstract"

    def run_until_idle(self, network, *, max_cycles: int = 1_000_000) -> int:
        """Advance ``network`` until it drains; return the final cycle.

        Raises :class:`SimulationStallError` when the network still holds
        flits after ``max_cycles`` cycles.
        """
        raise NotImplementedError

    def run_to_completion(self, system, *, max_cycles: int = 5_000_000) -> int:
        """Advance ``system`` until every core finished and the NoC drained.

        Returns the number of cycles elapsed; raises
        :class:`SimulationStallError` on budget exhaustion.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


#: name -> backend class.  Aliases map long names onto the canonical ones.
_REGISTRY: Dict[str, Type[SimulationBackend]] = {}
_ALIASES: Dict[str, str] = {
    "cycle-accurate": "cycle",
    "event-driven": "event",
}
#: Backends are stateless, so one instance per class suffices.
_INSTANCES: Dict[str, SimulationBackend] = {}


def register_backend(cls: Type[SimulationBackend]) -> Type[SimulationBackend]:
    """Class decorator registering a backend under its ``name``."""
    name = cls.name
    if not isinstance(name, str) or not name or name == "abstract":
        raise ValueError(f"backend class {cls.__name__} needs a concrete name")
    _REGISTRY[name] = cls
    return cls


def available_backends() -> List[str]:
    """The canonical backend names, sorted."""
    return sorted(_REGISTRY)


def normalize_backend_name(name: str) -> str:
    """Resolve aliases and validate ``name`` against the registry."""
    canonical = _ALIASES.get(name, name)
    if canonical not in _REGISTRY:
        known = ", ".join(available_backends())
        raise ValueError(f"unknown simulation backend {name!r}; known backends: {known}")
    return canonical


def make_backend(spec: Union[str, SimulationBackend, None]) -> SimulationBackend:
    """Resolve a backend name (or pass an instance through) to a backend.

    ``None`` resolves to the default cycle-accurate backend.
    """
    if spec is None:
        spec = "cycle"
    if isinstance(spec, SimulationBackend):
        return spec
    if not isinstance(spec, str):
        raise TypeError(f"backend must be a name or a SimulationBackend, got {spec!r}")
    canonical = normalize_backend_name(spec)
    instance = _INSTANCES.get(canonical)
    if instance is None:
        instance = _INSTANCES.setdefault(canonical, _REGISTRY[canonical]())
    return instance


def _reliability_note(network) -> str:
    """In-flight retransmit state of ``network``'s NICs, for stall errors.

    Empty on a fault-free network (or when no NIC is waiting on an ACK);
    otherwise lists, per NIC, the pending-ACK count, the highest transmission
    attempt reached and the next retransmit deadline -- so a stall under
    faults shows immediately whether the drain loop was cut short while the
    HARQ protocol was still legitimately retrying.
    """
    states: List[Tuple[int, str]] = []
    for coord, nic in network.nics.items():
        state = nic.reliability_state()
        if state is None:
            continue
        states.append(
            (
                state["pending_acks"],
                f"{coord}: {state['pending_acks']} pending ACK(s), "
                f"attempt <= {state['max_attempt']}, "
                f"next retransmit at cycle {state['next_deadline']}",
            )
        )
    if not states:
        return ""
    states.sort(key=lambda item: (-item[0], item[1]))
    listed = "; ".join(text for _, text in states[:8])
    if len(states) > 8:
        listed += f"; ... ({len(states) - 8} more NICs)"
    total = sum(count for count, _ in states)
    return f"; retransmit state: {total} message(s) awaiting ACK [{listed}]"


def network_stall_error(network, max_cycles: int) -> SimulationStallError:
    """Build the descriptive drain-timeout error for ``network``.

    Reports the total buffered/queued flit count and the occupancy of the
    busiest nodes so deadlocks (e.g. adversarial traffic on a wrapped
    topology) are diagnosable without re-running under a debugger.  Under a
    fault model the in-flight HARQ retransmit state is appended.
    """
    occupancy: List[Tuple[int, str]] = []
    total_buffered = 0
    total_queued = 0
    for coord, router in network.routers.items():
        buffered = router.buffered_flits()
        queued = network.nics[coord].pending_injection_flits()
        total_buffered += buffered
        total_queued += queued
        if buffered or queued:
            occupancy.append((buffered + queued, f"{coord}: {buffered} buffered + {queued} queued"))
    occupancy.sort(key=lambda item: (-item[0], item[1]))
    busiest = "; ".join(text for _, text in occupancy[:8])
    if len(occupancy) > 8:
        busiest += f"; ... ({len(occupancy) - 8} more nodes)"
    return SimulationStallError(
        f"network did not drain within {max_cycles} cycles: "
        f"{total_buffered} flit(s) buffered in routers, "
        f"{total_queued} flit(s) queued for injection across "
        f"{len(occupancy)} node(s) [{busiest}]"
        f"{_reliability_note(network)}"
    )


def system_stall_error(system, max_cycles: int) -> SimulationStallError:
    """Build the descriptive completion-timeout error for ``system``."""
    unfinished = [core.name for core in system.cores.values() if not core.done]
    listed = ", ".join(unfinished[:8])
    if len(unfinished) > 8:
        listed += f", ... ({len(unfinished) - 8} more)"
    pending = system.memory_controller.pending_replies()
    buffered = system.network.buffered_flits()
    return SimulationStallError(
        f"workload did not complete within {max_cycles} cycles: "
        f"{len(unfinished)} core(s) unfinished [{listed or 'none'}], "
        f"{buffered} flit(s) still buffered in the network, "
        f"{pending} reply(ies) pending at the memory controller"
        f"{_reliability_note(system.network)}"
    )
