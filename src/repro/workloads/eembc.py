"""EEMBC-Autobench-like single-threaded benchmark profiles.

The paper evaluates WCET estimates with the EEMBC Automotive (Autobench)
suite [20].  The original binaries are proprietary, so this reproduction
ships *synthetic profiles* with the same benchmark names and the qualitative
characterisation reported by Poovey's EEMBC study: instruction counts in the
hundreds of thousands to millions, and memory intensities ranging from
almost fully compute-bound kernels (``a2time``, ``basefp``, ``puwmod``) to
cache-hostile ones (``cacheb``, ``pntrch``, ``matrix``).

What the paper's Table III measures -- per-core WCET of each benchmark under
the WCET-computation mode, normalised between the two NoC designs -- depends
only on each benchmark's ratio of compute cycles to NoC round trips, which is
exactly what these profiles encode.  The absolute instruction counts are
scaled down so that the companion cycle-accurate simulations stay fast; the
WCET ratios are unaffected by that scaling (the WCET-computation mode charges
every memory operation the same upper-bound delay, so ratios only depend on
the compute-to-communication mix).
"""

from __future__ import annotations

from typing import Dict, List

from .trace import TaskProfile

__all__ = ["AUTOBENCH_PROFILES", "autobench_suite", "autobench_profile", "memory_bound_profiles", "compute_bound_profiles"]


def _profile(
    name: str,
    instructions: int,
    base_cpi: float,
    misses_per_kinst: float,
    writebacks_per_kinst: float,
    description: str,
) -> TaskProfile:
    return TaskProfile(
        name=name,
        instructions=instructions,
        base_cpi=base_cpi,
        misses_per_kinst=misses_per_kinst,
        writebacks_per_kinst=writebacks_per_kinst,
        description=description,
    )


#: The sixteen Autobench kernels, from compute-bound to memory-bound.
AUTOBENCH_PROFILES: Dict[str, TaskProfile] = {
    p.name: p
    for p in [
        _profile("a2time", 480_000, 1.05, 0.9, 0.2, "Angle-to-time conversion; tight arithmetic loop."),
        _profile("basefp", 420_000, 1.20, 1.1, 0.2, "Basic floating-point arithmetic kernel."),
        _profile("bitmnp", 360_000, 1.10, 1.4, 0.3, "Bit manipulation; register-resident working set."),
        _profile("puwmod", 300_000, 1.00, 1.6, 0.3, "Pulse-width modulation control loop."),
        _profile("rspeed", 280_000, 1.00, 1.8, 0.4, "Road-speed calculation; small lookup tables."),
        _profile("tblook", 340_000, 1.15, 6.0, 1.0, "Table lookup and interpolation."),
        _profile("iirflt", 380_000, 1.10, 3.2, 0.6, "IIR filter over streaming samples."),
        _profile("aifirf", 400_000, 1.10, 3.6, 0.6, "FIR filter over streaming samples."),
        _profile("canrdr", 320_000, 1.25, 4.5, 0.9, "CAN remote data request handling."),
        _profile("ttsprk", 360_000, 1.20, 5.2, 1.0, "Tooth-to-spark ignition timing."),
        _profile("aifftr", 520_000, 1.30, 8.5, 1.6, "Radix-2 FFT over audio frames."),
        _profile("aiifft", 520_000, 1.30, 8.8, 1.6, "Inverse FFT over audio frames."),
        _profile("idctrn", 460_000, 1.25, 10.5, 2.1, "Inverse DCT transform."),
        _profile("matrix", 540_000, 1.35, 14.0, 3.0, "Dense matrix arithmetic; streaming misses."),
        _profile("pntrch", 300_000, 1.50, 22.0, 2.5, "Pointer chasing across a linked structure."),
        _profile("cacheb", 340_000, 1.40, 30.0, 6.0, "Cache buster: deliberately cache-hostile strides."),
    ]
}


def autobench_suite() -> List[TaskProfile]:
    """All sixteen Autobench-like profiles, in a stable order."""
    return [AUTOBENCH_PROFILES[name] for name in sorted(AUTOBENCH_PROFILES)]


def autobench_profile(name: str) -> TaskProfile:
    """Look up one profile by benchmark name."""
    try:
        return AUTOBENCH_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(AUTOBENCH_PROFILES))
        raise KeyError(f"unknown Autobench benchmark {name!r}; known: {known}") from None


def memory_bound_profiles(threshold_mpki: float = 8.0) -> List[TaskProfile]:
    """Profiles whose miss density is at or above ``threshold_mpki``."""
    return [p for p in autobench_suite() if p.misses_per_kinst >= threshold_mpki]


def compute_bound_profiles(threshold_mpki: float = 8.0) -> List[TaskProfile]:
    """Profiles whose miss density is below ``threshold_mpki``."""
    return [p for p in autobench_suite() if p.misses_per_kinst < threshold_mpki]
