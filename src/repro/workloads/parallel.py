"""Representation of barrier-synchronised parallel applications.

The paper's parallel case study (the Honeywell 3D path-planning avionics
application, 3DPP) runs on 16 cores and, like most safety-critical parallel
codes, proceeds as a sequence of *phases* separated by barriers: within a
phase every thread works independently on its share of the data; the phase
ends when the slowest thread finishes.  The WCET estimate of the application
is therefore the sum over phases of the worst per-thread WCET in that phase
(plus a fixed barrier cost).

:class:`ParallelWorkload` captures exactly that structure -- per-phase,
per-thread compute cycles and NoC operation counts -- independently of how
the numbers were produced (the 3DPP generator measures them by actually
running the planner; synthetic workloads can construct them directly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

__all__ = ["ThreadPhaseWork", "Phase", "ParallelWorkload"]


@dataclass(frozen=True)
class ThreadPhaseWork:
    """Work performed by one thread within one phase."""

    thread_id: int
    compute_cycles: int
    loads: int
    evictions: int = 0

    def __post_init__(self) -> None:
        if self.thread_id < 0:
            raise ValueError("thread_id must be >= 0")
        if min(self.compute_cycles, self.loads, self.evictions) < 0:
            raise ValueError("work amounts must be non-negative")

    @property
    def noc_operations(self) -> int:
        return self.loads + self.evictions


@dataclass
class Phase:
    """One barrier-delimited phase of a parallel application."""

    name: str
    work: Dict[int, ThreadPhaseWork] = field(default_factory=dict)

    def add(self, work: ThreadPhaseWork) -> None:
        if work.thread_id in self.work:
            raise ValueError(f"thread {work.thread_id} already has work in phase {self.name}")
        self.work[work.thread_id] = work

    def thread_ids(self) -> List[int]:
        return sorted(self.work.keys())

    def work_of(self, thread_id: int) -> ThreadPhaseWork:
        if thread_id not in self.work:
            return ThreadPhaseWork(thread_id=thread_id, compute_cycles=0, loads=0, evictions=0)
        return self.work[thread_id]

    @property
    def total_loads(self) -> int:
        return sum(w.loads for w in self.work.values())

    @property
    def total_compute_cycles(self) -> int:
        return sum(w.compute_cycles for w in self.work.values())


@dataclass
class ParallelWorkload:
    """A complete parallel application as a sequence of phases."""

    name: str
    num_threads: int
    phases: List[Phase] = field(default_factory=list)
    #: Fixed per-barrier synchronisation cost, in cycles.
    barrier_cycles: int = 100
    description: str = ""

    def __post_init__(self) -> None:
        if self.num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        if self.barrier_cycles < 0:
            raise ValueError("barrier_cycles must be >= 0")

    # ------------------------------------------------------------------
    def add_phase(self, phase: Phase) -> None:
        bad = [tid for tid in phase.thread_ids() if tid >= self.num_threads]
        if bad:
            raise ValueError(f"phase {phase.name} references unknown thread ids {bad}")
        self.phases.append(phase)

    def thread_ids(self) -> List[int]:
        return list(range(self.num_threads))

    # ------------------------------------------------------------------
    # Aggregate queries
    # ------------------------------------------------------------------
    @property
    def total_loads(self) -> int:
        return sum(p.total_loads for p in self.phases)

    @property
    def total_compute_cycles(self) -> int:
        return sum(p.total_compute_cycles for p in self.phases)

    def thread_loads(self, thread_id: int) -> int:
        return sum(p.work_of(thread_id).loads for p in self.phases)

    def thread_compute_cycles(self, thread_id: int) -> int:
        return sum(p.work_of(thread_id).compute_cycles for p in self.phases)

    def summary(self) -> Dict[str, float]:
        """Human-readable aggregate used by reports and examples."""
        return {
            "threads": self.num_threads,
            "phases": len(self.phases),
            "total_compute_cycles": self.total_compute_cycles,
            "total_loads": self.total_loads,
        }

    # ------------------------------------------------------------------
    @classmethod
    def balanced(
        cls,
        name: str,
        *,
        num_threads: int,
        phases: int,
        compute_cycles_per_phase: int,
        loads_per_phase: int,
        evictions_per_phase: int = 0,
        barrier_cycles: int = 100,
    ) -> "ParallelWorkload":
        """Synthetic perfectly balanced workload (used by tests/examples)."""
        workload = cls(name=name, num_threads=num_threads, barrier_cycles=barrier_cycles)
        for p in range(phases):
            phase = Phase(name=f"phase{p}")
            for tid in range(num_threads):
                phase.add(
                    ThreadPhaseWork(
                        thread_id=tid,
                        compute_cycles=compute_cycles_per_phase,
                        loads=loads_per_phase,
                        evictions=evictions_per_phase,
                    )
                )
            workload.add_phase(phase)
        return workload
