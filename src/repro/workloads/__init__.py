"""Workloads: EEMBC-like profiles, the 3DPP avionics application, synthetic traffic."""

from .eembc import (
    AUTOBENCH_PROFILES,
    autobench_profile,
    autobench_suite,
    compute_bound_profiles,
    memory_bound_profiles,
)
from .parallel import ParallelWorkload, Phase, ThreadPhaseWork
from .pathplanning import (
    PathPlanningConfig,
    PathPlanningResult,
    ThreeDPathPlanner,
    plan_path,
)
from .synthetic import AdversarialCongestionTraffic, HotspotTraffic, UniformRandomTraffic
from .trace import AccessTrace, MemoryOperation, TaskProfile, TraceItem

__all__ = [
    "AUTOBENCH_PROFILES",
    "autobench_profile",
    "autobench_suite",
    "compute_bound_profiles",
    "memory_bound_profiles",
    "ParallelWorkload",
    "Phase",
    "ThreadPhaseWork",
    "PathPlanningConfig",
    "PathPlanningResult",
    "ThreeDPathPlanner",
    "plan_path",
    "AdversarialCongestionTraffic",
    "HotspotTraffic",
    "UniformRandomTraffic",
    "AccessTrace",
    "MemoryOperation",
    "TaskProfile",
    "TraceItem",
]
