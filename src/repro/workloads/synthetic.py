"""Synthetic traffic generators for the NoC simulator.

Three families of generators are provided:

* :class:`UniformRandomTraffic` -- classic uniform random traffic at a
  configurable injection rate, used for average-performance comparisons and
  stress tests;
* :class:`HotspotTraffic` -- every node targets a single hotspot node (the
  memory controller of the evaluated manycore), the pattern under which the
  unfair bandwidth allocation of distributed round-robin shows up;
* :class:`AdversarialCongestionTraffic` -- the validation workload: the
  network is saturated by background flows that interfere with one *victim*
  flow on every hop of its path, and the victim periodically injects probe
  packets whose observed traversal times are compared against the analytical
  WCTT bound.

All generators are deterministic given their seed, so experiments and tests
are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..geometry import Coord, Mesh
from ..noc.flit import Message
from ..noc.network import Network
from ..routing import xy_route

__all__ = ["UniformRandomTraffic", "HotspotTraffic", "AdversarialCongestionTraffic"]


@dataclass
class UniformRandomTraffic:
    """Every node injects packets to uniformly random destinations.

    ``injection_rate`` is the probability that a node injects one message in
    a given cycle (messages per node per cycle).
    """

    mesh: Mesh
    injection_rate: float
    payload_flits: int = 1
    seed: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.injection_rate <= 1.0:
            raise ValueError("injection_rate must be within [0, 1]")
        if self.payload_flits < 1:
            raise ValueError("payload_flits must be >= 1")
        self._rng = random.Random(self.seed)

    def drive(self, network: Network, cycles: int) -> List[Message]:
        """Inject traffic for ``cycles`` cycles, stepping the network."""
        nodes = list(self.mesh.nodes())
        sent: List[Message] = []
        for _ in range(cycles):
            for src in nodes:
                if self._rng.random() < self.injection_rate:
                    dst = self._rng.choice(nodes)
                    while dst == src:
                        dst = self._rng.choice(nodes)
                    sent.append(
                        network.send(src, dst, self.payload_flits, kind="synthetic")
                    )
            network.step()
        return sent


@dataclass
class HotspotTraffic:
    """Every node sends to one hotspot node at a configurable rate."""

    mesh: Mesh
    hotspot: Coord
    injection_rate: float
    payload_flits: int = 1
    seed: int = 1

    def __post_init__(self) -> None:
        self.mesh.require(self.hotspot)
        if not 0.0 <= self.injection_rate <= 1.0:
            raise ValueError("injection_rate must be within [0, 1]")
        self._rng = random.Random(self.seed)

    def drive(self, network: Network, cycles: int) -> List[Message]:
        sent: List[Message] = []
        sources = [c for c in self.mesh.nodes() if c != self.hotspot]
        for _ in range(cycles):
            for src in sources:
                if self._rng.random() < self.injection_rate:
                    sent.append(
                        network.send(src, self.hotspot, self.payload_flits, kind="hotspot")
                    )
            network.step()
        return sent


@dataclass
class AdversarialCongestionTraffic:
    """Saturating background traffic crafted against one victim flow.

    Every node whose XY route towards the victim's destination shares at
    least one link with the victim's route keeps a configurable number of
    messages outstanding towards that destination, recreating the worst-case
    contention assumption of the analytical models as closely as a real
    (finite-buffer) network allows.  Probe messages of the victim flow are
    injected at a low rate and their latencies recorded.
    """

    mesh: Mesh
    victim_source: Coord
    victim_destination: Coord
    background_outstanding: int = 4
    probe_period: int = 200
    payload_flits: int = 1
    #: Optional allow-list of background sources.  ``None`` (default) lets
    #: every overlapping node interfere; a list restricts the adversary to a
    #: known workload's sources (the ``bound_comparison`` experiment uses
    #: this to simulate sparse workloads matching a flow-aware analysis).
    background_sources: Optional[List[Coord]] = None

    def __post_init__(self) -> None:
        self.mesh.require(self.victim_source)
        self.mesh.require(self.victim_destination)
        if self.victim_source == self.victim_destination:
            raise ValueError("victim source and destination coincide")
        if self.background_outstanding < 1 or self.probe_period < 1:
            raise ValueError("invalid adversarial traffic parameters")
        if self.background_sources is not None:
            for node in self.background_sources:
                self.mesh.require(node)

    # ------------------------------------------------------------------
    def interfering_sources(self) -> List[Coord]:
        """Nodes whose route to the destination overlaps the victim's route."""
        victim_links = {
            (hop.router, hop.out_port)
            for hop in xy_route(self.mesh, self.victim_source, self.victim_destination)
        }
        allowed = (
            None if self.background_sources is None else set(self.background_sources)
        )
        sources = []
        for node in self.mesh.nodes():
            if node in (self.victim_source, self.victim_destination):
                continue
            if allowed is not None and node not in allowed:
                continue
            links = {
                (hop.router, hop.out_port)
                for hop in xy_route(self.mesh, node, self.victim_destination)
            }
            if links & victim_links:
                sources.append(node)
        return sources

    def drive(self, network: Network, cycles: int) -> Tuple[List[Message], List[Message]]:
        """Run the scenario; returns (probe_messages, background_messages)."""
        interferers = self.interfering_sources()
        outstanding: Dict[Coord, List[Message]] = {src: [] for src in interferers}
        probes: List[Message] = []
        background: List[Message] = []

        for cycle in range(cycles):
            # Keep every interferer's outstanding window full.
            for src in interferers:
                live = [m for m in outstanding[src] if m.completion_cycle is None]
                outstanding[src] = live
                while len(live) < self.background_outstanding:
                    msg = network.send(
                        src, self.victim_destination, self.payload_flits, kind="background"
                    )
                    live.append(msg)
                    background.append(msg)
            if cycle % self.probe_period == 0:
                probes.append(
                    network.send(
                        self.victim_source,
                        self.victim_destination,
                        self.payload_flits,
                        kind="probe",
                    )
                )
            network.step()

        # Drain the probes (stop refilling the background).
        guard = 0
        while any(p.completion_cycle is None for p in probes):
            guard += 1
            if guard > 1_000_000:  # pragma: no cover - defensive
                raise RuntimeError("probe messages did not drain")
            network.step()
        return probes, background

    def worst_probe_latency(self, network: Network, cycles: int) -> int:
        """Convenience wrapper returning the largest observed probe latency."""
        probes, _ = self.drive(network, cycles)
        latencies = [p.network_latency for p in probes if p.network_latency is not None]
        if not latencies:
            raise RuntimeError("no probe completed")
        return max(latencies)
