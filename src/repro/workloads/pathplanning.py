"""3D path planning (3DPP): an executable stand-in for the avionics case study.

The paper evaluates its proposal with "3D path planning (3DPP), an industrial
avionics parallel application provided by Honeywell" that "uses 16 cores to
guide an aircraft through the obstacle map represented as a 3D matrix".  The
original code is proprietary; this module re-implements the algorithmic core
-- a parallel wavefront (breadth-first) planner over a 3D occupancy grid --
so that the Figure 2 experiments run on a real application with a real memory
footprint rather than on synthetic numbers:

1. the obstacle map is generated deterministically from a seed;
2. a wavefront expansion propagates distances from the start cell, one
   expansion sweep per barrier-synchronised *phase*;
3. the path is extracted by gradient descent on the distance field.

The grid is decomposed into horizontal slabs, one per worker thread; during
every sweep each thread expands the frontier cells that fall in its slab and
the per-thread work (cells visited, cache misses, write-backs) is recorded
into a :class:`~repro.workloads.parallel.ParallelWorkload`, which the WCET
machinery then prices for any NoC design point and placement.  Cache misses
are counted by running each thread's cell accesses through a private
:class:`~repro.manycore.cache.Cache` model, so the NoC traffic reflects the
actual locality of the algorithm.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..manycore.cache import Cache, CacheConfig
from .parallel import ParallelWorkload, Phase, ThreadPhaseWork

__all__ = ["PathPlanningConfig", "PathPlanningResult", "ThreeDPathPlanner", "plan_path"]

Cell = Tuple[int, int, int]

#: 6-connected neighbourhood of a 3D grid.
_NEIGHBOUR_OFFSETS: Tuple[Cell, ...] = (
    (1, 0, 0),
    (-1, 0, 0),
    (0, 1, 0),
    (0, -1, 0),
    (0, 0, 1),
    (0, 0, -1),
)


@dataclass(frozen=True)
class PathPlanningConfig:
    """Parameters of the 3DPP workload generator."""

    dimensions: Cell = (24, 24, 12)
    obstacle_density: float = 0.22
    seed: int = 2016
    start: Optional[Cell] = None
    goal: Optional[Cell] = None
    num_threads: int = 16
    #: Cycles a core spends updating one cell.  The industrial planner does
    #: substantially more work per cell than a plain BFS relaxation
    #: (trajectory cost evaluation, clearance checks), which these defaults
    #: approximate so that the compute/communication balance of the WCET
    #: experiments is in the regime the paper reports.
    cycles_per_cell_update: int = 600
    #: Cycles spent inspecting a neighbour that is not updated.
    cycles_per_neighbour_check: int = 150
    #: Bytes of the per-cell record in the distance field.
    bytes_per_cell: int = 8
    #: Private cache used to derive the NoC traffic of each thread.
    cache: CacheConfig = field(default_factory=lambda: CacheConfig(size_bytes=32 * 1024))
    #: How many wavefront sweeps are grouped into one barrier phase.
    sweeps_per_phase: int = 2
    barrier_cycles: int = 200

    def __post_init__(self) -> None:
        if any(d < 2 for d in self.dimensions):
            raise ValueError("grid dimensions must be at least 2 in every axis")
        if not 0.0 <= self.obstacle_density < 0.9:
            raise ValueError("obstacle_density must be in [0, 0.9)")
        if self.num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        if self.sweeps_per_phase < 1:
            raise ValueError("sweeps_per_phase must be >= 1")

    @property
    def resolved_start(self) -> Cell:
        return self.start if self.start is not None else (0, 0, 0)

    @property
    def resolved_goal(self) -> Cell:
        if self.goal is not None:
            return self.goal
        x, y, z = self.dimensions
        return (x - 1, y - 1, z - 1)


@dataclass
class PathPlanningResult:
    """Everything the planner produced: the path and the workload model."""

    config: PathPlanningConfig
    reached: bool
    path: List[Cell]
    distance: Optional[int]
    sweeps: int
    workload: ParallelWorkload
    per_thread_misses: Dict[int, int]

    @property
    def path_length(self) -> int:
        return len(self.path)


class ThreeDPathPlanner:
    """Parallel wavefront planner over a 3D occupancy grid."""

    def __init__(self, config: Optional[PathPlanningConfig] = None):
        self.config = config if config is not None else PathPlanningConfig()
        self._rng = random.Random(self.config.seed)
        self.dims = self.config.dimensions
        self.obstacles = self._generate_obstacles()
        self.start = self.config.resolved_start
        self.goal = self.config.resolved_goal
        if self.obstacles.get(self.start) or self.obstacles.get(self.goal):
            # Never wall off the endpoints.
            self.obstacles[self.start] = False
            self.obstacles[self.goal] = False

    # ------------------------------------------------------------------
    # Map generation
    # ------------------------------------------------------------------
    def _generate_obstacles(self) -> Dict[Cell, bool]:
        """Deterministic obstacle map: random blocks plus a few walls with gaps."""
        nx, ny, nz = self.dims
        obstacles: Dict[Cell, bool] = {}
        for x in range(nx):
            for y in range(ny):
                for z in range(nz):
                    obstacles[(x, y, z)] = self._rng.random() < self.config.obstacle_density
        # Add vertical walls with one opening each to force non-trivial paths.
        for wall_x in range(nx // 3, nx, max(1, nx // 3)):
            gap_y = self._rng.randrange(ny)
            gap_z = self._rng.randrange(nz)
            for y in range(ny):
                for z in range(nz):
                    obstacles[(wall_x, y, z)] = not (abs(y - gap_y) <= 1 and abs(z - gap_z) <= 1)
        return obstacles

    # ------------------------------------------------------------------
    # Decomposition helpers
    # ------------------------------------------------------------------
    def owner_thread(self, cell: Cell) -> int:
        """Thread owning a cell: horizontal slab decomposition along Y."""
        ny = self.dims[1]
        slab = max(1, ny // self.config.num_threads)
        return min(self.config.num_threads - 1, cell[1] // slab)

    def cell_address(self, cell: Cell) -> int:
        """Byte address of a cell's record in the shared distance field."""
        nx, ny, _ = self.dims
        x, y, z = cell
        linear = (z * ny + y) * nx + x
        return linear * self.config.bytes_per_cell

    def in_bounds(self, cell: Cell) -> bool:
        return all(0 <= c < d for c, d in zip(cell, self.dims))

    def neighbours(self, cell: Cell) -> List[Cell]:
        x, y, z = cell
        result = []
        for dx, dy, dz in _NEIGHBOUR_OFFSETS:
            candidate = (x + dx, y + dy, z + dz)
            if self.in_bounds(candidate):
                result.append(candidate)
        return result

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def run(self) -> PathPlanningResult:
        """Run the wavefront expansion and extract the path."""
        cfg = self.config
        distance: Dict[Cell, int] = {self.start: 0}
        frontier: List[Cell] = [self.start]
        sweeps = 0

        caches = {tid: Cache(cfg.cache) for tid in range(cfg.num_threads)}
        workload = ParallelWorkload(
            name="3dpp",
            num_threads=cfg.num_threads,
            barrier_cycles=cfg.barrier_cycles,
            description="3D wavefront path planning over an occupancy grid",
        )

        # Initialisation phase: every thread clears its slab of the distance field.
        init_phase = Phase(name="init")
        nx, ny, nz = self.dims
        for tid in range(cfg.num_threads):
            slab_cells = [c for c in self._slab_cells(tid)]
            compute = len(slab_cells) * 2
            loads, evictions = self._charge_accesses(caches[tid], slab_cells, write=True)
            init_phase.add(ThreadPhaseWork(tid, compute, loads, evictions))
        workload.add_phase(init_phase)

        phase_work: Dict[int, List[int]] = {tid: [0, 0, 0] for tid in range(cfg.num_threads)}
        sweeps_in_phase = 0
        phase_index = 0

        while frontier and self.goal not in distance:
            sweeps += 1
            sweeps_in_phase += 1
            next_frontier: List[Cell] = []
            for cell in frontier:
                tid = self.owner_thread(cell)
                cache = caches[tid]
                compute, loads, evictions = self._expand_cell(cell, distance, next_frontier, cache)
                phase_work[tid][0] += compute
                phase_work[tid][1] += loads
                phase_work[tid][2] += evictions
            frontier = next_frontier

            if sweeps_in_phase >= cfg.sweeps_per_phase or not frontier or self.goal in distance:
                phase = Phase(name=f"wave{phase_index}")
                for tid, (compute, loads, evictions) in phase_work.items():
                    phase.add(ThreadPhaseWork(tid, compute, loads, evictions))
                workload.add_phase(phase)
                phase_work = {tid: [0, 0, 0] for tid in range(cfg.num_threads)}
                sweeps_in_phase = 0
                phase_index += 1

        reached = self.goal in distance
        path = self._backtrack(distance) if reached else []

        # Backtracking phase (single thread walks the path).
        backtrack_phase = Phase(name="backtrack")
        walker = 0
        cells = path if path else [self.start]
        loads, evictions = self._charge_accesses(caches[walker], cells, write=False)
        backtrack_phase.add(
            ThreadPhaseWork(walker, len(cells) * cfg.cycles_per_neighbour_check, loads, evictions)
        )
        for tid in range(1, cfg.num_threads):
            backtrack_phase.add(ThreadPhaseWork(tid, 0, 0, 0))
        workload.add_phase(backtrack_phase)

        return PathPlanningResult(
            config=cfg,
            reached=reached,
            path=path,
            distance=distance.get(self.goal),
            sweeps=sweeps,
            workload=workload,
            per_thread_misses={tid: caches[tid].misses for tid in caches},
        )

    # ------------------------------------------------------------------
    def _slab_cells(self, thread_id: int) -> List[Cell]:
        nx, ny, nz = self.dims
        slab = max(1, ny // self.config.num_threads)
        y_lo = thread_id * slab
        y_hi = ny if thread_id == self.config.num_threads - 1 else min(ny, y_lo + slab)
        return [(x, y, z) for y in range(y_lo, y_hi) for x in range(nx) for z in range(nz)]

    def _charge_accesses(
        self, cache: Cache, cells: Sequence[Cell], *, write: bool
    ) -> Tuple[int, int]:
        """Run cell accesses through a thread cache; return (misses, writebacks)."""
        loads = 0
        evictions = 0
        for cell in cells:
            result = cache.access(self.cell_address(cell), is_write=write)
            if not result.hit:
                loads += 1
            if result.writeback:
                evictions += 1
        return loads, evictions

    def _expand_cell(
        self,
        cell: Cell,
        distance: Dict[Cell, int],
        next_frontier: List[Cell],
        cache: Cache,
    ) -> Tuple[int, int, int]:
        """Expand one frontier cell; returns (compute_cycles, loads, evictions)."""
        cfg = self.config
        compute = 0
        loads = 0
        evictions = 0
        base_distance = distance[cell]

        # Read the cell's own record.
        result = cache.access(self.cell_address(cell), is_write=False)
        loads += 0 if result.hit else 1
        evictions += 1 if result.writeback else 0

        for neighbour in self.neighbours(cell):
            compute += cfg.cycles_per_neighbour_check
            result = cache.access(self.cell_address(neighbour), is_write=False)
            loads += 0 if result.hit else 1
            evictions += 1 if result.writeback else 0
            if self.obstacles.get(neighbour, True) or neighbour in distance:
                continue
            distance[neighbour] = base_distance + 1
            next_frontier.append(neighbour)
            compute += cfg.cycles_per_cell_update
            result = cache.access(self.cell_address(neighbour), is_write=True)
            loads += 0 if result.hit else 1
            evictions += 1 if result.writeback else 0
        return compute, loads, evictions

    def _backtrack(self, distance: Dict[Cell, int]) -> List[Cell]:
        """Walk from the goal back to the start following decreasing distance."""
        path = [self.goal]
        current = self.goal
        guard = 0
        limit = len(distance) + 1
        while current != self.start:
            guard += 1
            if guard > limit:  # pragma: no cover - defensive
                raise RuntimeError("backtracking did not terminate")
            current_distance = distance[current]
            nxt = None
            for neighbour in self.neighbours(current):
                if distance.get(neighbour, current_distance) == current_distance - 1:
                    nxt = neighbour
                    break
            if nxt is None:  # pragma: no cover - defensive
                raise RuntimeError("broken distance field during backtracking")
            path.append(nxt)
            current = nxt
        path.reverse()
        return path


def plan_path(config: Optional[PathPlanningConfig] = None) -> PathPlanningResult:
    """Convenience wrapper: build a planner, run it, return the result."""
    return ThreeDPathPlanner(config).run()
