"""Workload representations consumed by the manycore model.

Two granularities are supported, matching what the paper's experiments need:

* :class:`TaskProfile` -- a *profile-driven* single-threaded workload
  characterised by instruction count, base CPI and memory-operation
  densities.  This is how the EEMBC-like benchmarks are described (the
  original binaries are proprietary; see :mod:`repro.workloads.eembc`) and it is all the
  WCET-computation-mode experiments need, because in that mode every memory
  operation is charged the same upper-bound delay.
* :class:`AccessTrace` -- an *address-level* workload: an explicit sequence
  of memory operations with the compute gaps between them.  The 3D
  path-planning application and custom user workloads produce these; a
  private cache turns them into NoC transactions.

Both representations can be converted into the stream of
:class:`MemoryOperation` items that drives the cycle-accurate core model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Tuple

__all__ = ["MemoryOperation", "TaskProfile", "AccessTrace", "TraceItem"]


@dataclass(frozen=True)
class MemoryOperation:
    """One memory operation issued by a core after a compute gap.

    ``compute_cycles`` is the number of cycles the core computes before
    issuing the operation; ``is_write`` distinguishes stores from loads;
    ``address`` is optional (profile-driven workloads have no addresses and
    are treated as always-miss at the configured densities).
    """

    compute_cycles: int
    is_write: bool = False
    address: Optional[int] = None

    def __post_init__(self) -> None:
        if self.compute_cycles < 0:
            raise ValueError("compute_cycles must be >= 0")


@dataclass(frozen=True)
class TaskProfile:
    """Profile-driven characterisation of a single-threaded task.

    ``misses_per_kinst`` counts cache *misses* (i.e. NoC load round trips)
    per thousand instructions; ``writebacks_per_kinst`` counts dirty-line
    evictions per thousand instructions.  ``base_cpi`` is the
    cycles-per-instruction of the task when every memory access hits
    (everything that is independent of the NoC).
    """

    name: str
    instructions: int
    base_cpi: float = 1.0
    misses_per_kinst: float = 5.0
    writebacks_per_kinst: float = 1.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.instructions < 1:
            raise ValueError("instructions must be >= 1")
        if self.base_cpi <= 0:
            raise ValueError("base_cpi must be positive")
        if self.misses_per_kinst < 0 or self.writebacks_per_kinst < 0:
            raise ValueError("densities must be non-negative")

    # ------------------------------------------------------------------
    @property
    def compute_cycles(self) -> int:
        """Execution cycles spent outside the memory hierarchy."""
        return round(self.instructions * self.base_cpi)

    @property
    def memory_loads(self) -> int:
        """Number of load round trips that reach the NoC."""
        return round(self.instructions * self.misses_per_kinst / 1000.0)

    @property
    def evictions(self) -> int:
        """Number of dirty-line write-backs that reach the NoC."""
        return round(self.instructions * self.writebacks_per_kinst / 1000.0)

    @property
    def noc_operations(self) -> int:
        return self.memory_loads + self.evictions

    def scaled(self, factor: float) -> "TaskProfile":
        """A shorter/longer variant of the same task (same densities)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return TaskProfile(
            name=self.name,
            instructions=max(1, round(self.instructions * factor)),
            base_cpi=self.base_cpi,
            misses_per_kinst=self.misses_per_kinst,
            writebacks_per_kinst=self.writebacks_per_kinst,
            description=self.description,
        )

    # ------------------------------------------------------------------
    def operations(self) -> Iterator[MemoryOperation]:
        """Evenly spread the NoC operations over the task's compute cycles.

        The cycle-accurate core model consumes this stream; evictions are
        interleaved with loads at the profile's relative rate.
        """
        loads = self.memory_loads
        evictions = self.evictions
        total_ops = loads + evictions
        if total_ops == 0:
            return iter(())
        gap = max(1, self.compute_cycles // total_ops)

        def _generate() -> Iterator[MemoryOperation]:
            # Spread the evictions evenly among the operations using integer
            # arithmetic so that exactly ``evictions`` writes are produced.
            for i in range(total_ops):
                is_write = (
                    (i + 1) * evictions // total_ops > i * evictions // total_ops
                )
                yield MemoryOperation(compute_cycles=gap, is_write=is_write)

        return _generate()


@dataclass(frozen=True)
class TraceItem:
    """One record of an address-level trace."""

    compute_cycles: int
    address: int
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.compute_cycles < 0 or self.address < 0:
            raise ValueError("invalid trace item")


@dataclass
class AccessTrace:
    """An explicit address-level memory trace of one thread."""

    name: str
    items: List[TraceItem] = field(default_factory=list)

    def append(self, compute_cycles: int, address: int, *, is_write: bool = False) -> None:
        self.items.append(TraceItem(compute_cycles, address, is_write))

    def extend(self, items: Iterable[TraceItem]) -> None:
        self.items.extend(items)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[TraceItem]:
        return iter(self.items)

    @property
    def total_compute_cycles(self) -> int:
        return sum(item.compute_cycles for item in self.items)

    def operations(self) -> Iterator[MemoryOperation]:
        """View the trace as the operation stream consumed by the core model."""
        for item in self.items:
            yield MemoryOperation(
                compute_cycles=item.compute_cycles,
                is_write=item.is_write,
                address=item.address,
            )

    def footprint_bytes(self, line_bytes: int = 64) -> int:
        """Number of distinct cache lines touched, in bytes."""
        lines = {item.address // line_bytes for item in self.items}
        return len(lines) * line_bytes
