"""Blocking client for the analysis daemon (used by the CLI and by tests).

:class:`ServiceClient` speaks the newline-delimited-JSON protocol over a
plain TCP socket -- no asyncio required on the calling side, so it drops
into scripts, notebooks and the ``repro-experiments`` subcommands alike::

    from repro.service import ServiceClient

    client = ServiceClient(port=8537)
    results = client.submit([{"experiment": "table2", "quick": True}])
    print(results[0]["rows"][0])

Submissions accept :class:`~repro.api.BatchJob` objects, wire-form dicts or
:class:`~repro.api.Scenario` objects (converted through
:meth:`Scenario.as_job`, i.e. evaluated by the ``scenario_wctt``
experiment); :meth:`ServiceClient.submit_scenarios` submits a whole
``sweep()`` grid in one round trip, so a scenario design space computes
server-side with dedup and durable caching.
"""

from __future__ import annotations

import socket
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from ..api.engine import BatchJob
from ..api.results import ExperimentResult
from .protocol import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    MAX_MESSAGE_BYTES,
    ProtocolError,
    decode,
    encode,
    job_to_wire,
)

__all__ = ["ServiceClient", "ServiceError"]

ProgressCallback = Callable[[Dict[str, Any]], None]


class ServiceError(RuntimeError):
    """The daemon was unreachable or answered with an error."""


def _as_job(item: Any) -> BatchJob:
    """Normalise one submission item to a :class:`BatchJob`."""
    if isinstance(item, BatchJob):
        return item
    # A Scenario converts through its registered evaluation experiment.
    as_job = getattr(item, "as_job", None)
    if callable(as_job):
        return as_job()
    if isinstance(item, Mapping):
        return BatchJob(
            experiment=str(item.get("experiment", "")),
            params=dict(item.get("params", {})),
            quick=bool(item.get("quick", False)),
        )
    raise TypeError(
        f"cannot submit {type(item).__name__}: expected BatchJob, Scenario "
        "or a job dict with an 'experiment' key"
    )


class ServiceClient:
    """One daemon address plus a request timeout (seconds; None = no limit)."""

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        timeout: Optional[float] = 300.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        """Round-trip liveness check; returns the server's identity line."""
        return self._request({"op": "ping"})

    def stats(self) -> Dict[str, Any]:
        """Queue depth, cache hit rate, jobs/second, store statistics."""
        return self._request({"op": "stats"})["stats"]

    def submit(
        self,
        jobs: Iterable[Any],
        *,
        wait: bool = True,
        on_progress: Optional[ProgressCallback] = None,
    ) -> Dict[str, Any]:
        """Submit design points; returns the server response.

        ``jobs`` may mix :class:`BatchJob` objects, job dicts and
        :class:`~repro.api.Scenario` objects.  With ``wait=True`` (default)
        the call blocks until every design point is settled and the
        response carries ``results`` (one dict per submitted job, in
        submission order; ``None`` for failed points -- check the matching
        ticket's ``error``).  With ``wait=False`` it returns immediately
        with ``tickets`` only; poll with :meth:`status` / :meth:`fetch`.
        ``on_progress`` receives one event dict per completed design point.
        """
        wire_jobs = [job_to_wire(_as_job(job)) for job in jobs]
        if not wire_jobs:
            raise ValueError("submit needs at least one job")
        request: Dict[str, Any] = {"op": "submit", "jobs": wire_jobs, "wait": wait}
        if wait and on_progress is not None:
            request["stream"] = True
        return self._request(request, on_event=on_progress)

    def submit_scenarios(
        self,
        scenarios: Iterable[Any],
        *,
        experiment: str = "scenario_wctt",
        quick: bool = False,
        wait: bool = True,
        on_progress: Optional[ProgressCallback] = None,
        **params: Any,
    ) -> Dict[str, Any]:
        """Submit a :func:`repro.api.sweep` grid (or any scenario iterable).

        Every scenario becomes one job of ``experiment`` (default: the
        ``scenario_wctt`` design-point evaluation) via
        :meth:`Scenario.as_job`; extra keyword arguments become run()
        parameters shared by every design point.
        """
        jobs = [sc.as_job(experiment, quick=quick, **params) for sc in scenarios]
        return self.submit(jobs, wait=wait, on_progress=on_progress)

    def status(self, hashes: Sequence[str]) -> List[Dict[str, Any]]:
        """Job states for the given config hashes."""
        return self._request({"op": "status", "hashes": list(hashes)})["states"]

    def fetch(
        self, hashes: Optional[Sequence[str]] = None, *, all: bool = False
    ) -> Dict[str, Any]:
        """Completed results by hash (or everything with ``all=True``).

        Returns ``{"results": [...], "missing": [...]}``; each result dict
        is the ``BatchResult.to_dict`` shape and rebuilds into an
        :class:`ExperimentResult` via :meth:`as_results`.
        """
        if all:
            request: Dict[str, Any] = {"op": "fetch", "all": True, "hashes": []}
        else:
            request = {"op": "fetch", "hashes": list(hashes or [])}
        response = self._request(request)
        return {"results": response["results"], "missing": response["missing"]}

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to exit cleanly."""
        return self._request({"op": "shutdown"})

    @staticmethod
    def as_results(result_dicts: Iterable[Optional[Mapping[str, Any]]]) -> List[ExperimentResult]:
        """Rebuild wire result dicts into (rows-only) ExperimentResults."""
        return [
            ExperimentResult.from_dict(data)
            for data in result_dicts
            if data is not None
        ]

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(
        self, payload: Dict[str, Any], *, on_event: Optional[ProgressCallback] = None
    ) -> Dict[str, Any]:
        """One request/response round trip (event lines go to ``on_event``)."""
        try:
            connection = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            raise ServiceError(
                f"cannot reach repro.service at {self.host}:{self.port} "
                f"({exc}); is the daemon running? start one with "
                "'repro-experiments serve'"
            ) from None
        try:
            with connection:
                connection.sendall(encode(payload))
                reader = connection.makefile("rb")
                while True:
                    line = reader.readline(MAX_MESSAGE_BYTES + 2)
                    if not line:
                        raise ServiceError(
                            f"repro.service at {self.host}:{self.port} closed "
                            "the connection mid-request"
                        )
                    try:
                        message = decode(line)
                    except ProtocolError as exc:
                        raise ServiceError(f"bad response from the daemon: {exc}") from None
                    if "event" in message:
                        if on_event is not None:
                            on_event(message)
                        continue
                    if not message.get("ok", False):
                        raise ServiceError(
                            message.get("error", "the daemon reported an unknown error")
                        )
                    return message
        except socket.timeout:
            raise ServiceError(
                f"request to repro.service at {self.host}:{self.port} timed "
                f"out after {self.timeout}s"
            ) from None
        except OSError as exc:
            raise ServiceError(
                f"connection to repro.service at {self.host}:{self.port} "
                f"failed: {exc}"
            ) from None
