"""Analysis-as-a-service: daemon, durable result store, protocol, client.

The subsystem turns the batch-script workflow into a persistent service:

* :mod:`repro.service.store` -- :class:`ResultStore`, the durable
  content-addressed result store (config-hash keyed, atomic writes,
  shared across processes and daemon restarts);
* :mod:`repro.service.server` -- :class:`ReproService`, the asyncio daemon
  with an async job queue, request coalescing and streaming progress;
* :mod:`repro.service.client` -- :class:`ServiceClient`, the blocking
  socket client used by the CLI (``repro-experiments serve / submit /
  status / fetch``) and by scripts;
* :mod:`repro.service.protocol` -- the newline-delimited-JSON wire format
  shared by both ends.

Only the store is imported eagerly: :mod:`repro.api.engine` builds its
persistent cache on it, and loading the server/client machinery (asyncio,
sockets) at ``import repro`` time would be wasted work for purely
analytical use.  ``ReproService``, ``ServiceClient`` and friends resolve
lazily on first attribute access (PEP 562).
"""

from __future__ import annotations

from typing import Any

from .store import ResultStore, StoreError, default_store_dir

__all__ = [
    "ResultStore",
    "StoreError",
    "default_store_dir",
    "ReproService",
    "ServiceHandle",
    "start_service_thread",
    "ServiceClient",
    "ServiceError",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
]

_LAZY = {
    "ReproService": ("repro.service.server", "ReproService"),
    "ServiceHandle": ("repro.service.server", "ServiceHandle"),
    "start_service_thread": ("repro.service.server", "start_service_thread"),
    "ServiceClient": ("repro.service.client", "ServiceClient"),
    "ServiceError": ("repro.service.client", "ServiceError"),
    "DEFAULT_HOST": ("repro.service.protocol", "DEFAULT_HOST"),
    "DEFAULT_PORT": ("repro.service.protocol", "DEFAULT_PORT"),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list:
    return sorted(set(globals()) | set(_LAZY))
