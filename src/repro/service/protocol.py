"""Wire protocol of the analysis service: newline-delimited JSON messages.

One request is one JSON object on one line; the server answers with zero or
more *event* lines (objects carrying an ``"event"`` key, e.g. streamed job
progress) followed by exactly one *response* line (an object carrying an
``"ok"`` key).  The connection stays open for further requests, so a client
may pipeline; the bundled :class:`~repro.service.client.ServiceClient` opens
one connection per request for simplicity.

Requests (the ``"op"`` key selects the operation)::

    {"op": "ping"}
    {"op": "submit", "jobs": [JOB, ...], "wait": true, "stream": true}
    {"op": "status", "hashes": [HASH, ...]}
    {"op": "fetch", "hashes": [HASH, ...]}        # or {"op": "fetch", "all": true}
    {"op": "stats"}
    {"op": "shutdown"}

where ``JOB`` is ``{"experiment": str, "params": {...}, "quick": bool}`` --
exactly the fields of :class:`repro.api.BatchJob` -- and ``HASH`` is the
config hash returned by a submission ticket.

This module is transport-agnostic plumbing shared by the asyncio server and
the blocking socket client: message (de)serialisation and request
validation.  It only depends on :mod:`repro.api` for the job shape.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional

from ..api.engine import BatchJob
from ..api.results import ResultEncoder

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "ProtocolError",
    "encode",
    "decode",
    "job_from_wire",
    "job_to_wire",
    "error_response",
]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8537

#: Upper bound on one serialized message, applied on both ends (a large
#: sweep of rich params fits comfortably; a runaway line does not).
MAX_MESSAGE_BYTES = 32 * 1024 * 1024

_OPS = ("ping", "submit", "status", "fetch", "stats", "shutdown")


class ProtocolError(ValueError):
    """A malformed protocol message (bad JSON, unknown op, bad job spec)."""


def encode(message: Mapping[str, Any]) -> bytes:
    """Serialize one message to its single-line wire form."""
    line = json.dumps(message, separators=(",", ":"), cls=ResultEncoder)
    blob = line.encode("utf-8") + b"\n"
    if len(blob) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(blob)} bytes exceeds the {MAX_MESSAGE_BYTES}-byte limit"
        )
    return blob


def decode(line: bytes) -> Dict[str, Any]:
    """Parse one wire line into a message dict."""
    if len(line) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(line)} bytes exceeds the {MAX_MESSAGE_BYTES}-byte limit"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"malformed JSON message: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(f"a message must be a JSON object, got {type(message).__name__}")
    return message


def validate_request(message: Mapping[str, Any]) -> str:
    """Check the request shape; returns the operation name."""
    op = message.get("op")
    if op not in _OPS:
        raise ProtocolError(
            f"unknown operation {op!r} (known operations: {', '.join(_OPS)})"
        )
    if op == "submit":
        jobs = message.get("jobs")
        if not isinstance(jobs, list) or not jobs:
            raise ProtocolError("submit needs a non-empty 'jobs' list")
    if op in ("status", "fetch"):
        hashes = message.get("hashes")
        if op == "fetch" and message.get("all"):
            return op
        if not isinstance(hashes, list) or not all(isinstance(h, str) for h in hashes):
            raise ProtocolError(f"{op} needs a 'hashes' list of config hashes")
    return op


def job_from_wire(spec: Any) -> BatchJob:
    """Build a :class:`BatchJob` from its wire form, validating the shape."""
    if not isinstance(spec, Mapping):
        raise ProtocolError(f"a job must be an object, got {type(spec).__name__}")
    unknown = set(spec) - {"experiment", "params", "quick"}
    if unknown:
        raise ProtocolError(f"unknown job field(s): {', '.join(sorted(unknown))}")
    experiment = spec.get("experiment")
    if not isinstance(experiment, str) or not experiment:
        raise ProtocolError("a job needs an 'experiment' name")
    params = spec.get("params", {})
    if not isinstance(params, Mapping):
        raise ProtocolError(f"job params must be an object, got {type(params).__name__}")
    quick = spec.get("quick", False)
    if not isinstance(quick, bool):
        raise ProtocolError(f"job 'quick' must be a boolean, got {quick!r}")
    return BatchJob(experiment=experiment, params=dict(params), quick=quick)


def job_to_wire(job: BatchJob) -> Dict[str, Any]:
    """The wire form of one :class:`BatchJob` (inverse of job_from_wire)."""
    return {
        "experiment": job.experiment,
        "params": dict(job.params),
        "quick": job.quick,
    }


def error_response(message: str, *, code: Optional[str] = None) -> Dict[str, Any]:
    """A failed-request response line."""
    response: Dict[str, Any] = {"ok": False, "error": message}
    if code is not None:
        response["code"] = code
    return response


def jobs_from_wire(specs: List[Any]) -> List[BatchJob]:
    """Validate and convert a submission's job list."""
    return [job_from_wire(spec) for spec in specs]
