"""The analysis daemon: a long-running asyncio server over the registry.

:class:`ReproService` wraps the experiment registry and the batch-execution
machinery behind the newline-delimited-JSON protocol of
:mod:`repro.service.protocol`:

* **async job queue with bounded concurrency** -- submissions land on an
  :class:`asyncio.Queue`; a single drainer task peels off up to
  ``batch_size`` jobs at a time and fans them onto the existing
  :func:`repro.api.engine.map_jobs` worker pool (``jobs`` processes), so
  the event loop stays responsive while compute saturates the cores;
* **durable content-addressed results** -- every computed result is written
  through to a shared :class:`~repro.service.store.ResultStore`, so answers
  survive daemon restarts and are shared with every other daemon, batch run
  or CI job pointing at the same directory;
* **request coalescing/dedup** -- identical design points (same config
  hash) submitted concurrently attach to one in-flight computation and are
  computed exactly once;
* **streaming progress** -- a submission with ``"stream": true`` receives
  one progress event per completed design point before the final response;
* **introspection** -- the ``stats`` operation reports queue depth, cache
  hit rate, jobs/second and the store statistics.

The server binds to localhost by default and implements no authentication:
it is a local analysis accelerator, not an internet-facing endpoint.

Synchronous entry points: :meth:`ReproService.run` (blocking, used by the
``repro-experiments serve`` CLI) and :func:`start_service_thread` (a
background daemon inside the current process, used by tests, benchmarks and
the documentation examples).
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from ..api.engine import BatchJob, config_hash, map_jobs, safe_execute_job
from ..api.results import ExperimentResult
from .protocol import (
    DEFAULT_HOST,
    MAX_MESSAGE_BYTES,
    ProtocolError,
    decode,
    encode,
    error_response,
    jobs_from_wire,
    validate_request,
)
from .store import ResultStore

__all__ = ["ReproService", "ServiceHandle", "start_service_thread"]


def _run_batch(jobs: List[BatchJob], workers: int) -> List[Tuple[str, Any, float]]:
    """Execute one drained batch on the shared worker pool.

    Each job runs through :func:`repro.api.engine.safe_execute_job`, so one
    failing design point becomes a recorded failure instead of poisoning the
    whole batch.
    """
    return map_jobs(safe_execute_job, jobs, jobs=min(workers, len(jobs)))


class _Entry:
    """One unique design point known to the daemon (keyed by config hash)."""

    __slots__ = (
        "digest", "job", "future", "state", "error",
        "duration", "cached", "result", "submissions",
    )

    def __init__(self, digest: str, job: BatchJob, future: "asyncio.Future[None]"):
        self.digest = digest
        self.job = job
        self.future = future
        self.state = "queued"  # queued -> running -> done | failed
        self.error: Optional[str] = None
        self.duration = 0.0
        self.cached = False
        self.result: Optional[ExperimentResult] = None
        self.submissions = 0


class ReproService:
    """The persistent analysis service (see the module docstring).

    ``jobs`` bounds the compute concurrency (worker processes of the
    :func:`map_jobs` pool); ``batch_size`` is how many queued jobs one pool
    fan-out may take; ``store`` / ``store_dir`` select the durable result
    store (``use_store=False`` runs fully in-memory); ``port=0`` binds an
    ephemeral port, reported by :attr:`address` after :meth:`start`.
    """

    def __init__(
        self,
        *,
        host: str = DEFAULT_HOST,
        port: int = 0,
        jobs: int = 1,
        batch_size: int = 8,
        store: Optional[ResultStore] = None,
        store_dir: Optional[str] = None,
        use_store: bool = True,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.host = host
        self.port = port
        self.jobs = jobs
        self.batch_size = batch_size
        if not use_store:
            self.store: Optional[ResultStore] = None
        elif store is not None:
            self.store = store
        else:
            self.store = ResultStore(store_dir)
        self.address: Optional[Tuple[str, int]] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._queue: "asyncio.Queue[str]" = None  # type: ignore[assignment]
        self._entries: Dict[str, _Entry] = {}
        self._drainer: Optional["asyncio.Task[None]"] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._executor = None
        self._started_at = 0.0
        self._stats = {
            "submitted": 0,
            "computed": 0,
            "failed": 0,
            "coalesced": 0,
            "store_hits": 0,
            "memory_hits": 0,
            "compute_seconds": 0.0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind the socket and start the drainer; returns ``(host, port)``."""
        from concurrent.futures import ThreadPoolExecutor

        self._queue = asyncio.Queue()
        self._shutdown = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service-compute"
        )
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port, limit=MAX_MESSAGE_BYTES
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        self._started_at = time.monotonic()
        self._drainer = asyncio.get_running_loop().create_task(self._drain())
        return self.address

    async def wait_shutdown(self) -> None:
        """Block until a ``shutdown`` request (or :meth:`request_shutdown`)."""
        assert self._shutdown is not None, "service not started"
        await self._shutdown.wait()

    def request_shutdown(self) -> None:
        """Ask a started service to stop (safe from the service's loop)."""
        if self._shutdown is not None:
            self._shutdown.set()

    async def stop(self) -> None:
        """Close the socket, cancel the drainer and fail pending jobs."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._drainer is not None:
            self._drainer.cancel()
            try:
                await self._drainer
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._drainer = None
        for entry in self._entries.values():
            if not entry.future.done():
                entry.state = "failed"
                entry.error = "server stopped before the job completed"
                entry.future.set_result(None)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def run(self, *, announce=None) -> None:
        """Blocking entry point: serve until ``shutdown`` (CLI ``serve``)."""

        async def _main() -> None:
            await self.start()
            if announce is not None:
                announce(self)
            try:
                await self.wait_shutdown()
            finally:
                await self.stop()

        asyncio.run(_main())

    # ------------------------------------------------------------------
    # Job intake and compute
    # ------------------------------------------------------------------
    def _resolve(self, job: BatchJob) -> Tuple[_Entry, str]:
        """Dedup one submission; returns its entry plus the answer source.

        Source is ``store`` (durable hit), ``memory`` (already completed in
        this session), ``inflight`` (coalesced onto a queued/running
        computation) or ``queued`` (fresh work).
        """
        digest = config_hash(job)
        self._stats["submitted"] += 1
        entry = self._entries.get(digest)
        if entry is not None:
            entry.submissions += 1
            if entry.state in ("queued", "running"):
                self._stats["coalesced"] += 1
                return entry, "inflight"
            if entry.state == "done":
                self._stats["memory_hits"] += 1
                return entry, "memory"
            # A previously failed design point is retried on resubmission.
        if self.store is not None:
            result = self.store.get(digest)
            if result is not None:
                entry = _Entry(digest, job, asyncio.get_running_loop().create_future())
                entry.state = "done"
                entry.cached = True
                entry.result = result
                entry.submissions = 1
                entry.future.set_result(None)
                self._entries[digest] = entry
                self._stats["store_hits"] += 1
                return entry, "store"
        entry = _Entry(digest, job, asyncio.get_running_loop().create_future())
        entry.submissions = 1
        self._entries[digest] = entry
        self._queue.put_nowait(digest)
        return entry, "queued"

    async def _drain(self) -> None:
        """Forever: drain up to ``batch_size`` jobs, fan out, settle futures."""
        loop = asyncio.get_running_loop()
        while True:
            digests = [await self._queue.get()]
            while len(digests) < self.batch_size:
                try:
                    digests.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            entries = [self._entries[d] for d in digests]
            for entry in entries:
                entry.state = "running"
            try:
                outcomes = await loop.run_in_executor(
                    self._executor, _run_batch, [e.job for e in entries], self.jobs
                )
            except Exception as exc:  # noqa: BLE001 - pool-level failure
                outcomes = [("error", f"{type(exc).__name__}: {exc}", 0.0)] * len(entries)
            for entry, (status, payload, duration) in zip(entries, outcomes):
                if status == "ok":
                    entry.state = "done"
                    entry.duration = duration
                    self._stats["computed"] += 1
                    self._stats["compute_seconds"] += duration
                    if self.store is not None:
                        try:
                            self.store.put(entry.digest, payload, duration_seconds=duration)
                            # The durable copy is authoritative; drop the
                            # in-memory payload so long-running daemons stay
                            # bounded (fetch re-reads from the store).
                            entry.result = None
                        except Exception:  # noqa: BLE001 - store is best-effort
                            entry.result = payload
                    else:
                        entry.result = payload
                else:
                    entry.state = "failed"
                    entry.error = str(payload)
                    self._stats["failed"] += 1
                entry.future.set_result(None)

    def _entry_result(self, entry: _Entry) -> Optional[ExperimentResult]:
        """The completed result of ``entry`` (from memory or the store)."""
        if entry.result is not None:
            return entry.result
        if self.store is not None:
            return self.store.get(entry.digest)
        return None

    def _result_wire(self, entry: _Entry) -> Optional[Dict[str, Any]]:
        result = self._entry_result(entry)
        if result is None:
            return None
        data = result.to_dict()
        data["config_hash"] = entry.digest
        data["cached"] = entry.cached
        data["duration_seconds"] = round(entry.duration, 6)
        return data

    def _ticket(self, entry: _Entry, source: str) -> Dict[str, Any]:
        ticket = {
            "hash": entry.digest,
            "experiment": entry.job.experiment,
            "state": entry.state,
            "source": source,
        }
        if entry.error is not None:
            ticket["error"] = entry.error
        return ticket

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _send(self, writer: asyncio.StreamWriter, message: Dict[str, Any]) -> None:
        writer.write(encode(message))
        await writer.drain()

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(
                        writer, error_response("message exceeds the protocol size limit")
                    )
                    break
                if not line.strip():
                    break
                stop_after = False
                try:
                    message = decode(line)
                    op = validate_request(message)
                    stop_after = op == "shutdown"
                    await self._dispatch(op, message, writer)
                except ProtocolError as exc:
                    await self._send(writer, error_response(str(exc)))
                except Exception as exc:  # noqa: BLE001 - keep the daemon alive
                    await self._send(
                        writer,
                        error_response(f"internal error: {type(exc).__name__}: {exc}"),
                    )
                if stop_after:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _dispatch(
        self, op: str, message: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        if op == "ping":
            from .. import __version__

            await self._send(
                writer,
                {"ok": True, "pong": True, "server": "repro.service", "version": __version__},
            )
        elif op == "submit":
            await self._handle_submit(message, writer)
        elif op == "status":
            await self._send(writer, {"ok": True, "states": self._states(message["hashes"])})
        elif op == "fetch":
            await self._handle_fetch(message, writer)
        elif op == "stats":
            await self._send(writer, {"ok": True, "stats": self.stats()})
        elif op == "shutdown":
            await self._send(writer, {"ok": True, "stopping": True})
            self.request_shutdown()

    async def _handle_submit(
        self, message: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        jobs = jobs_from_wire(message["jobs"])
        wait = bool(message.get("wait", True))
        stream = bool(message.get("stream", False)) and wait
        resolved = [self._resolve(job) for job in jobs]
        tickets = [self._ticket(entry, source) for entry, source in resolved]
        if not wait:
            await self._send(writer, {"ok": True, "tickets": tickets})
            return

        unique = {entry.digest: entry for entry, _ in resolved}
        pending = {entry.future for entry in unique.values() if not entry.future.done()}
        completed = len(unique) - len(pending)
        if stream:
            for entry in unique.values():
                if entry.future.done():
                    await self._send(
                        writer,
                        {
                            "event": "progress",
                            "hash": entry.digest,
                            "state": entry.state,
                            "completed": completed,
                            "total": len(unique),
                        },
                    )
        while pending:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            completed += len(done)
            if stream:
                done_futures = set(done)
                for entry in unique.values():
                    if entry.future in done_futures:
                        await self._send(
                            writer,
                            {
                                "event": "progress",
                                "hash": entry.digest,
                                "state": entry.state,
                                "completed": completed,
                                "total": len(unique),
                            },
                        )
        results = []
        for (entry, source) in resolved:
            wire = self._result_wire(entry)
            if wire is not None and source in ("store", "memory", "inflight"):
                wire["cached"] = True
            results.append(wire)
        await self._send(
            writer,
            {
                "ok": True,
                "tickets": [self._ticket(entry, source) for entry, source in resolved],
                "results": results,
            },
        )

    def _states(self, hashes: List[str]) -> List[Dict[str, Any]]:
        states = []
        for digest in hashes:
            entry = self._entries.get(digest)
            if entry is not None:
                state = {"hash": digest, "state": entry.state}
                if entry.error is not None:
                    state["error"] = entry.error
            elif self.store is not None and digest in self.store:
                state = {"hash": digest, "state": "done", "source": "store"}
            else:
                state = {"hash": digest, "state": "unknown"}
            states.append(state)
        return states

    async def _handle_fetch(
        self, message: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        if message.get("all"):
            hashes = sorted(
                set(self.store.keys() if self.store is not None else [])
                | {d for d, e in self._entries.items() if e.state == "done"}
            )
        else:
            hashes = list(message["hashes"])
        results: List[Dict[str, Any]] = []
        missing: List[str] = []
        for digest in hashes:
            entry = self._entries.get(digest)
            wire: Optional[Dict[str, Any]] = None
            if entry is not None and entry.state == "done":
                wire = self._result_wire(entry)
                if wire is not None:
                    wire["cached"] = True
            elif entry is not None and entry.state == "failed":
                missing.append(digest)
                continue
            elif self.store is not None:
                result = self.store.get(digest)
                if result is not None:
                    wire = result.to_dict()
                    wire["config_hash"] = digest
                    wire["cached"] = True
                    wire["duration_seconds"] = 0.0
            if wire is None:
                missing.append(digest)
            else:
                results.append(wire)
        await self._send(writer, {"ok": True, "results": results, "missing": missing})

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """The ``stats`` operation's payload (also usable in-process)."""
        from .. import __version__

        uptime = max(time.monotonic() - self._started_at, 1e-9)
        finished = (
            self._stats["computed"]
            + self._stats["store_hits"]
            + self._stats["memory_hits"]
            + self._stats["coalesced"]
        )
        hits = (
            self._stats["store_hits"]
            + self._stats["memory_hits"]
            + self._stats["coalesced"]
        )
        running = sum(1 for e in self._entries.values() if e.state == "running")
        return {
            "version": __version__,
            "uptime_seconds": round(uptime, 3),
            "queue_depth": self._queue.qsize() if self._queue is not None else 0,
            "running": running,
            "workers": self.jobs,
            "batch_size": self.batch_size,
            "jobs": {
                "submitted": self._stats["submitted"],
                "unique": len(self._entries),
                "computed": self._stats["computed"],
                "failed": self._stats["failed"],
                "coalesced": self._stats["coalesced"],
                "store_hits": self._stats["store_hits"],
                "memory_hits": self._stats["memory_hits"],
            },
            "cache_hit_rate": (
                round(hits / self._stats["submitted"], 4)
                if self._stats["submitted"]
                else None
            ),
            "jobs_per_second": round(finished / uptime, 3),
            "compute_seconds": round(self._stats["compute_seconds"], 3),
            "store": self.store.stats() if self.store is not None else None,
        }


# ----------------------------------------------------------------------
# Background-thread harness (tests, benchmarks, examples)
# ----------------------------------------------------------------------
class ServiceHandle:
    """A service running on a daemon thread: address plus a stop switch."""

    def __init__(self, service: ReproService, thread: threading.Thread, loop) -> None:
        self.service = service
        self._thread = thread
        self._loop = loop

    @property
    def address(self) -> Tuple[str, int]:
        assert self.service.address is not None
        return self.service.address

    @property
    def host(self) -> str:
        return self.address[0]

    @property
    def port(self) -> int:
        return self.address[1]

    def stop(self, timeout: float = 10.0) -> None:
        """Request shutdown and join the thread."""
        try:
            self._loop.call_soon_threadsafe(self.service.request_shutdown)
        except RuntimeError:
            pass  # loop already closed
        self._thread.join(timeout)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_service_thread(**kwargs: Any) -> ServiceHandle:
    """Start a :class:`ReproService` on a daemon thread; returns its handle.

    Keyword arguments are forwarded to :class:`ReproService`.  The call
    returns once the socket is bound (so ``handle.address`` is valid) and
    raises if the service failed to start.
    """
    started = threading.Event()
    holder: Dict[str, Any] = {}

    async def _amain() -> None:
        service = ReproService(**kwargs)
        try:
            await service.start()
        except Exception as exc:  # noqa: BLE001 - reported to the caller
            holder["error"] = exc
            started.set()
            return
        holder["service"] = service
        holder["loop"] = asyncio.get_running_loop()
        started.set()
        try:
            await service.wait_shutdown()
        finally:
            await service.stop()

    thread = threading.Thread(
        target=lambda: asyncio.run(_amain()), name="repro-service", daemon=True
    )
    thread.start()
    if not started.wait(timeout=30):
        raise RuntimeError("repro.service failed to start within 30 seconds")
    if "error" in holder:
        raise holder["error"]
    return ServiceHandle(holder["service"], thread, holder["loop"])
