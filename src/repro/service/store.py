"""Durable content-addressed result store shared across runs and workers.

The store maps a config hash (:func:`repro.api.engine.config_hash`, which
folds the package version into the digest, so results computed by an older
release can never be served by a newer one) to one JSON file on disk::

    <root>/<digest>.json

Each file is an envelope carrying provenance metadata next to the
serialized :class:`~repro.api.results.ExperimentResult`::

    {"store_format": 1,
     "meta": {"config_hash": ..., "experiment": ..., "version": ...,
              "created_unix": ..., "duration_seconds": ...},
     "result": {... ExperimentResult.to_dict() ...}}

Writes are atomic (unique temp file + ``os.replace``), so concurrent
writers -- multiple daemons, batch-engine worker pools, parallel CI jobs --
can share one store without torn reads: a reader either sees a complete
entry or none at all.  Unreadable or truncated files are treated as absent
rather than fatal.  Pre-store cache files written by older releases (the
bare ``ExperimentResult.to_dict()`` form of ``BatchEngine(cache_dir=...)``)
are still readable.

The default location is ``~/.cache/repro`` (see :func:`default_store_dir`),
overridable with the ``REPRO_STORE_DIR`` environment variable; the CLI's
``--store-dir`` flag and the service daemon both default to it.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Any, Dict, Iterator, List, Optional

from ..api.results import ExperimentResult, ResultEncoder

__all__ = ["ResultStore", "StoreError", "default_store_dir"]

#: Format tag written into every envelope (bump on incompatible layout).
STORE_FORMAT = 1

_SUFFIX = ".json"

#: Process-wide counter making concurrent temp-file names unique even when
#: two threads of one process write the same digest at the same time.
_tmp_counter = itertools.count()
_tmp_lock = threading.Lock()


class StoreError(RuntimeError):
    """A result-store operation failed (unwritable root, bad digest...)."""


def default_store_dir() -> str:
    """The durable store location used when none is given explicitly.

    Resolution order: ``$REPRO_STORE_DIR``, ``$XDG_CACHE_HOME/repro``,
    ``~/.cache/repro``.
    """
    explicit = os.environ.get("REPRO_STORE_DIR")
    if explicit:
        return explicit
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return os.path.join(xdg, "repro")
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def _check_digest(digest: str) -> str:
    if not digest or not all(c in "0123456789abcdef" for c in digest):
        raise StoreError(f"invalid config hash {digest!r}")
    return digest


class ResultStore:
    """Content-addressed, restart-durable experiment-result store.

    One instance wraps one directory; any number of instances (in any
    number of processes) may share that directory.  ``hits``/``misses``
    count this instance's lookups, so a long-running service can report its
    cache hit rate; the on-disk state is shared, the counters are not.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root if root is not None else default_store_dir()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        try:
            os.makedirs(self.root, exist_ok=True)
        except OSError as exc:
            raise StoreError(f"cannot create result store at {self.root}: {exc}") from None

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, digest: str) -> Optional[ExperimentResult]:
        """The stored result for ``digest``, or None (never raises on torn
        or legacy files -- they read as absent / rows-only respectively)."""
        envelope = self._read(digest)
        if envelope is None:
            self.misses += 1
            return None
        self.hits += 1
        return ExperimentResult.from_dict(envelope["result"])

    def entry_meta(self, digest: str) -> Optional[Dict[str, Any]]:
        """The provenance metadata stored next to ``digest``'s result."""
        envelope = self._read(digest)
        if envelope is None:
            return None
        return dict(envelope["meta"])

    def __contains__(self, digest: str) -> bool:
        # A single _read answers both "does the file exist" (OSError reads
        # as None) and "is it a complete entry" -- no extra stat() probe.
        return self._read(digest) is not None

    def keys(self) -> List[str]:
        """Every digest with a readable entry, sorted."""
        digests = []
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        for name in sorted(names):
            if name.endswith(_SUFFIX) and not name.startswith("."):
                digest = name[: -len(_SUFFIX)]
                if self._read(digest) is not None:
                    digests.append(digest)
        return digests

    def __len__(self) -> int:
        return len(self.keys())

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    # ------------------------------------------------------------------
    # Write / delete
    # ------------------------------------------------------------------
    def put(
        self,
        digest: str,
        result: ExperimentResult,
        *,
        duration_seconds: float = 0.0,
    ) -> str:
        """Durably store ``result`` under ``digest``; returns the file path.

        The write is atomic: the envelope lands in a unique temp file in the
        same directory and is renamed over the final name, so a concurrent
        reader never observes a partial entry and the last writer wins.
        """
        from .. import __version__

        path = self._path(digest)
        envelope = {
            "store_format": STORE_FORMAT,
            "meta": {
                "config_hash": digest,
                "experiment": result.experiment,
                "version": __version__,
                "created_unix": round(time.time(), 3),
                "duration_seconds": round(duration_seconds, 6),
            },
            "result": result.to_dict(),
        }
        with _tmp_lock:
            serial = next(_tmp_counter)
        tmp_path = os.path.join(
            self.root, f".{digest}.tmp.{os.getpid()}.{serial}{_SUFFIX}"
        )
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(envelope, handle, indent=2, cls=ResultEncoder)
                handle.write("\n")
            os.replace(tmp_path, path)
        except OSError as exc:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise StoreError(f"cannot write store entry {digest}: {exc}") from None
        self.writes += 1
        return path

    def discard(self, digest: str) -> bool:
        """Remove one entry; True when a file was deleted."""
        try:
            os.unlink(self._path(digest))
            return True
        except FileNotFoundError:
            return False
        except OSError as exc:
            raise StoreError(f"cannot remove store entry {digest}: {exc}") from None

    def clear(self, *, experiment: Optional[str] = None) -> int:
        """Delete entries (all, or only one experiment's); returns the count.

        Unreadable files count as belonging to every experiment, so a full
        ``clear()`` always leaves an empty directory.
        """
        removed = 0
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            return 0
        for name in names:
            if not name.endswith(_SUFFIX) or name.startswith("."):
                continue
            digest = name[: -len(_SUFFIX)]
            if experiment is not None:
                envelope = self._read(digest)
                if envelope is not None and envelope["result"].get("experiment") != experiment:
                    continue
            if self.discard(digest):
                removed += 1
        return removed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Store-wide statistics plus this instance's lookup counters.

        One pass over the directory: each entry is read and parsed exactly
        once (``keys()`` would already cost a full ``_read`` per file, so
        going through it would parse everything twice).
        """
        entries = 0
        total_bytes = 0
        by_experiment: Dict[str, int] = {}
        compute_seconds = 0.0
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            names = []
        for filename in names:
            if not filename.endswith(_SUFFIX) or filename.startswith("."):
                continue
            digest = filename[: -len(_SUFFIX)]
            envelope = self._read(digest)
            if envelope is None:
                continue
            entries += 1
            try:
                total_bytes += os.path.getsize(self._path(digest))
            except OSError:
                pass
            experiment = str(envelope["result"].get("experiment", "?"))
            by_experiment[experiment] = by_experiment.get(experiment, 0) + 1
            compute_seconds += float(envelope["meta"].get("duration_seconds", 0.0) or 0.0)
        lookups = self.hits + self.misses
        return {
            "root": self.root,
            "entries": entries,
            "total_bytes": total_bytes,
            "by_experiment": dict(sorted(by_experiment.items())),
            "saved_compute_seconds": round(compute_seconds, 3),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hits / lookups, 4) if lookups else None,
        }

    def __repr__(self) -> str:
        return f"ResultStore({self.root!r})"

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _path(self, digest: str) -> str:
        return os.path.join(self.root, f"{_check_digest(digest)}{_SUFFIX}")

    def _read(self, digest: str) -> Optional[Dict[str, Any]]:
        """The parsed envelope for ``digest`` (legacy files are wrapped)."""
        path = self._path(digest)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(data, dict):
            return None
        if "store_format" in data and "result" in data:
            meta = data.get("meta")
            return {
                "meta": meta if isinstance(meta, dict) else {},
                "result": data["result"] if isinstance(data["result"], dict) else {},
            }
        if "experiment" in data and "rows" in data:
            # Bare pre-service cache file (BatchEngine cache_dir format).
            return {"meta": {"config_hash": digest, "legacy": True}, "result": data}
        return None
