from setuptools import find_packages, setup

setup(
    name="repro-wnoc",
    version="1.7.0",
    description=(
        "Reproduction of 'Improving Performance Guarantees in Wormhole Mesh "
        "NoC Designs' (Panic et al., DATE 2016)"
    ),
    long_description=open("README.md", encoding="utf-8").read(),
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.8",
    install_requires=[
        "numpy",
    ],
    entry_points={
        "console_scripts": [
            "repro-experiments = repro.experiments.runner:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
        "Intended Audience :: Science/Research",
    ],
)
