#!/usr/bin/env python3
"""Sharded, resumable, blind-validated sweeps with repro.campaign.

A hypothetical architect runs a design-space sweep as a *campaign*:

* the grid is chunked into content-addressed shards, each checkpointed to
  the durable result store the moment it completes;
* a held-out shard subset runs first and must pass an acceptance predicate
  before the full (blind) result set is computed -- the same blind-analysis
  discipline the ``bound_comparison`` experiment applies to its bounds;
* an interruption (simulated here by raising from the progress hook) costs
  nothing: the rerun resumes from the checkpoints and produces a
  byte-identical result set;
* a failing design point (simulated with an invalid scenario) becomes a
  recorded ``failed`` outcome in the report instead of aborting its shard.

Run it with::

    python examples/campaign.py
"""

from __future__ import annotations

import json
import tempfile

from repro.api import BatchJob, Scenario, sweep_jobs
from repro.campaign import Campaign
from repro.service import ResultStore


def main() -> None:
    store_root = tempfile.mkdtemp(prefix="repro-campaign-example-")

    # A 12-point grid: three mesh sizes x two designs x two packet limits,
    # plus one deliberately broken design point.
    jobs = sweep_jobs(
        Scenario.mesh(4),
        design=("regular", "waw_wap"),
        max_packet_flits=(1, 4),
        mesh=(3, 4, 5),
        quick=True,
    )
    jobs.append(
        BatchJob("scenario_wctt", {"scenario": {"mesh_width": 4, "design": "oops"}})
    )

    def tolerate_known_bad(record):
        """Acceptance: only the deliberately broken point may fail held-out."""
        return [
            f"unexpected failure {job['config_hash']}: {job['error']}"
            for job in record["jobs"]
            if job["status"] == "failed"
            and "unknown design 'oops'" not in (job["error"] or "")
        ]

    campaign = Campaign(
        jobs,
        name="example",
        shard_size=3,
        holdout=1,
        acceptance=tolerate_known_bad,
        store=ResultStore(store_root),
    )
    print(campaign.describe())

    # First attempt: kill the campaign after two shards to show resume.
    class Interrupted(Exception):
        pass

    seen = []

    def kill_after_two(shard, record):
        seen.append(shard.shard_id)
        if len(seen) == 2:
            raise Interrupted

    try:
        campaign.run(progress=kill_after_two)
    except Interrupted:
        print(f"\n-- interrupted after {len(seen)} shard(s); resuming --\n")

    # The rerun serves the completed shards from their checkpoints.
    store = ResultStore(store_root)
    resumed = Campaign(
        jobs, name="example", shard_size=3, holdout=1,
        acceptance=tolerate_known_bad, store=store,
    )
    report = resumed.run()
    print(report.render())

    print(f"\nresult-set digest is execution-independent: "
          f"{len(json.dumps(report.result_set()))} bytes of deterministic JSON")
    print(f"campaign manifest + checkpoints live under {store_root}")


if __name__ == "__main__":
    main()
