#!/usr/bin/env python3
"""Topology comparison: mesh vs. torus vs. concentrated mesh on one workload.

The paper evaluates a 64-core 8x8 mesh; the topology subsystem makes the
network structure itself a design axis.  This example compares three
64-terminal structures --

* the paper's 8x8 mesh,
* an 8x8 torus (same routers, wrap-around links halve worst-case distances),
* a 4x4 concentrated mesh with 4 terminals per router (fewer, busier
  routers, shorter paths)

-- on three views of the same question, all under the WaW+WaP design point:

1. analytical WCTT bounds of the all-to-one memory traffic;
2. the UBD-based WCET estimate of one EEMBC-Autobench-like benchmark on the
   worst-placed terminal (the WCET-computation mode of the paper);
3. cycle-accurate simulated latencies of a burst of cache-line messages from
   every terminal to the memory controller.

Run it with::

    python examples/topology_comparison.py
"""

from __future__ import annotations

from statistics import mean
from typing import Dict, List

from repro.analysis.reporting import format_table, format_title
from repro.api import Scenario
from repro.core.flows import FlowSet
from repro.core.ubd import UBDTable
from repro.core.wctt import wctt_summary
from repro.core.wctt_weighted import WaWWaPWCTTAnalysis
from repro.geometry import Coord
from repro.manycore.wcet_mode import wcet_of_profile
from repro.noc import Network
from repro.workloads.eembc import autobench_profile

#: Three structures with 64 terminals each.
SCENARIOS = {
    "8x8 mesh": Scenario.mesh(8).waw_wap(),
    "8x8 torus": Scenario.mesh(8).topology("torus").waw_wap(),
    "4x4 cmesh (c=4)": Scenario.mesh(4).topology("cmesh", concentration=4).waw_wap(),
}

BENCHMARK = "a2time"  # automotive angle-to-time conversion, memory-hungry


def analytical_rows() -> List[Dict[str, object]]:
    """WCTT of every node's 1-flit request towards the memory controller."""
    rows = []
    for label, scenario in SCENARIOS.items():
        config = scenario.build()
        topology = config.topology
        mc = config.memory_controller
        analysis = WaWWaPWCTTAnalysis.for_memory_traffic(config, include_replies=False)
        flows = FlowSet.all_to_one(config.mesh, mc)
        summary = wctt_summary(analysis, flows, packet_flits=1)
        rows.append(
            {
                "topology": label,
                "routers": topology.num_nodes,
                "terminals": topology.num_terminals,
                "max WCTT": summary.maximum,
                "mean WCTT": round(summary.average, 1),
                "min WCTT": summary.minimum,
            }
        )
    return rows


def wcet_rows() -> List[Dict[str, object]]:
    """UBD-based WCET of one EEMBC benchmark on the worst-placed terminal."""
    profile = autobench_profile(BENCHMARK)
    rows = []
    for label, scenario in SCENARIOS.items():
        config = scenario.build()
        topology = config.topology
        mc = config.memory_controller
        ubd = UBDTable(config)
        far = max(
            (core for core in topology.nodes() if core != mc),
            key=lambda core: (topology.distance(core, mc), core.y, core.x),
        )
        estimate = wcet_of_profile(profile, far, ubd)
        rows.append(
            {
                "topology": label,
                "worst core": str(far),
                "hops to MC": topology.distance(far, mc),
                f"WCET({BENCHMARK})": estimate.total,
                "NoC share": f"{estimate.noc_fraction:.0%}",
            }
        )
    return rows


def simulated_rows() -> List[Dict[str, object]]:
    """Cycle-accurate latency of one cache-line message per terminal."""
    rows = []
    for label, scenario in SCENARIOS.items():
        config = scenario.build()
        topology = config.topology
        mc = config.memory_controller
        network = Network(config)
        messages = []
        # One 4-flit write-back per terminal: a cluster of c terminals sends
        # c messages through its shared router.
        for node in topology.nodes():
            if node == mc:
                continue
            for _ in range(topology.terminals_per_node):
                messages.append(network.send(node, mc, payload_flits=4, kind="eviction"))
        cycles = network.run_until_idle(max_cycles=1_000_000)
        latencies = [m.network_latency for m in messages]
        rows.append(
            {
                "topology": label,
                "messages": len(messages),
                "drain cycles": cycles,
                "mean latency": round(mean(latencies), 1),
                "max latency": max(latencies),
            }
        )
    return rows


def main() -> None:
    print(format_title("Analytical WCTT of all-to-one memory traffic (WaW+WaP, 1-flit)"))
    print(format_table(analytical_rows()))
    print()

    print(format_title(f"WCET-mode estimate of EEMBC '{BENCHMARK}' on the worst core"))
    print(format_table(wcet_rows()))
    print()

    print(format_title("Cycle-accurate burst: one 4-flit message per terminal to the MC"))
    print(format_table(simulated_rows()))
    print()
    print(
        "Wrap-around links (torus) and concentration (cmesh) both shorten the\n"
        "longest paths, trading uniformity of the bounds against per-router load;\n"
        "the same analyses and the same simulator score every structure."
    )


if __name__ == "__main__":
    main()
