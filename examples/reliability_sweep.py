#!/usr/bin/env python3
"""Reliability sweep: how lossy links erode the paper's latency guarantees.

The paper's WCTT analysis bounds the worst-case traversal time of every
message *assuming perfectly reliable links*.  This example asks what
happens when that assumption breaks: per-link fault models corrupt or lose
flits in flight, the NICs recover with a HARQ-style ACK/NACK retransmission
protocol, and the Monte-Carlo engine replays the workload across seeds to
estimate the resulting latency *distribution*.

Three views of the same question:

1. a single faulty run, showing the HARQ protocol at message level
   (sequence numbers, retransmissions, exactly-once delivery);
2. the Monte-Carlo latency distribution of uniform traffic under an
   independent fault model, at increasing fault rates;
3. the registered ``reliability_sweep`` experiment: the victim core's
   memory-reply tail (p99 / p99.9) against the analytical WCTT bound --
   the fault rate at which p99 crosses the bound is the point where the
   paper's guarantee stops holding on lossy links.

Run it with::

    python examples/reliability_sweep.py
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.reporting import format_table, format_title
from repro.api import Scenario
from repro.faults.montecarlo import run_trials
from repro.geometry import Coord
from repro.noc import Network

#: Split evenly between corruption and loss at each total fault rate.
FAULT_RATES = (0.0, 0.005, 0.01, 0.02)


def single_run_rows() -> List[Dict[str, object]]:
    """One faulty run: the HARQ protocol seen from the message level."""
    rows = []
    for rate in (0.0, 0.02):
        scenario = Scenario.mesh(4).waw_wap()
        if rate:
            scenario = scenario.fault_model(
                "independent", corrupt_rate=rate / 2, loss_rate=rate / 2,
                seed=7, ack_timeout=64,
            )
        network = Network(scenario.build())
        messages = [
            network.send(node, Coord(0, 0), payload_flits=4, kind="eviction")
            for node in network.mesh.nodes()
            if node != Coord(0, 0)
        ]
        cycles = network.run_until_idle(max_cycles=1_000_000)
        rows.append(
            {
                "fault rate": f"{rate:g}",
                "messages": len(messages),
                "delivered": network.stats.completed_messages,
                "retransmissions": network.total_retransmissions(),
                "flit faults": network.fault_counts()["corrupted"]
                + network.fault_counts()["lost"],
                "drain cycles": cycles,
            }
        )
    return rows


def montecarlo_rows() -> List[Dict[str, object]]:
    """Latency distribution of uniform traffic vs. fault rate (5 seeds)."""
    rows = []
    for rate in FAULT_RATES:
        scenario = Scenario.mesh(4).waw_wap()
        if rate:
            scenario = scenario.fault_model(
                "independent", corrupt_rate=rate / 2, loss_rate=rate / 2,
                ack_timeout=128,
            )
        study = run_trials(
            scenario.build(),
            trials=1 if rate == 0.0 else 5,
            workload="uniform",
            injection_rate=0.05,
            cycles=300,
        )
        dist = study.distribution
        rows.append(
            {
                "fault rate": f"{rate:g}",
                "trials": study.trials,
                "failed": study.failed_trials,
                "samples": dist.count if dist else 0,
                "mean": round(dist.mean, 1) if dist else "-",
                "p50": dist.p50 if dist else "-",
                "p99": dist.p99 if dist else "-",
                "max": dist.maximum if dist else "-",
                "ci95": round(dist.ci95, 2) if dist else "-",
                "retx": study.total_retransmissions,
            }
        )
    return rows


def main() -> None:
    print(format_title("One run: HARQ recovery under independent link faults (4x4)"))
    print(format_table(single_run_rows()))
    print()

    print(format_title("Monte-Carlo: uniform-traffic latency distribution vs. fault rate"))
    print(format_table(montecarlo_rows()))
    print()

    print(format_title("Registered experiment: memory-reply tail vs. the WCTT bound"))
    from repro.experiments import reliability_sweep

    rows = reliability_sweep.run(
        mesh_size=4, fault_rates=(0.0, 0.01, 0.04), trials=5,
        scale=0.004, background=3,
    )
    print(reliability_sweep.report(rows))
    print()
    print(
        "At rate zero the simulated tail sits below the analytical bound (the\n"
        "bound is sound on reliable links); as the fault rate grows, retransmit\n"
        "round trips push p99 past it -- the quantitative edge of the paper's\n"
        "guarantee on lossy links."
    )


if __name__ == "__main__":
    main()
