#!/usr/bin/env python3
"""Competing analysis backends on one design point, then the full experiment.

The analysis-backend registry makes the WCTT analysis itself a design axis:
the paper's ``regular`` / ``weighted`` bounds, the flow-aware ``holistic``
and ``trajectory`` analyses and (where numpy applies) the ``vector`` engine
all answer the same questions through one interface.  This example

1. bounds one victim flow of a 4x4 WaW+WaP design with every applicable
   backend, on the full all-to-one workload and on a sparse checkerboard
   workload -- the regime where flow-aware analyses beat the paper's
   traffic-agnostic bounds;
2. cross-checks the sparse-workload bounds against the cycle-accurate
   simulator's most adversarial congestion;
3. runs the registered ``bound_comparison`` experiment (quick grid) and
   prints its tightness report.

Run it with::

    python examples/bound_comparison.py
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.backends import make_analysis_backend
from repro.analysis.reporting import format_table, format_title
from repro.api import Scenario
from repro.core.flows import FlowSet
from repro.core.weights import WeightTable
from repro.experiments import bound_comparison
from repro.geometry import Coord
from repro.noc import Network
from repro.workloads.synthetic import AdversarialCongestionTraffic

SCENARIO = Scenario.mesh(4).waw_wap()
BACKENDS = ("weighted", "holistic", "trajectory")


def _workloads(config):
    """The full all-to-one flow set and a sparse checkerboard subset."""
    dst = config.memory_controller
    victim = Coord(3, 3)
    nodes = [n for n in config.mesh.nodes() if n != dst]
    sparse = [n for n in nodes if (n.x + n.y) % 2 == 0 or n == victim]
    return victim, dst, {
        "full": FlowSet.from_pairs(config.mesh, [(n, dst) for n in nodes]),
        "sparse": FlowSet.from_pairs(config.mesh, [(n, dst) for n in sparse]),
    }


def bound_rows() -> List[Dict[str, object]]:
    config = SCENARIO.build()
    victim, dst, workloads = _workloads(config)
    # The WaW arbiters are statically configured for the general all-to-one
    # case; a sparse workload does not re-weight the hardware.
    static_weights = WeightTable.from_flow_set(
        FlowSet.all_to_one(config.mesh, dst)
    )
    rows = []
    for workload, flow_set in workloads.items():
        row: Dict[str, object] = {
            "workload": workload,
            "flows": len(flow_set),
            "flow": f"{victim}->{dst}",
        }
        for name in BACKENDS:
            backend = make_analysis_backend(name)
            analysis = backend.validation_analysis(
                config, destination=dst, flow_set=flow_set,
                weight_table=static_weights,
            )
            row[name] = analysis.wctt_packet(victim, dst)
        rows.append(row)
    return rows


def observed_worst() -> int:
    """Worst probe latency under adversarial sparse-workload congestion."""
    config = SCENARIO.build()
    victim, dst, workloads = _workloads(config)
    static_weights = WeightTable.from_flow_set(
        FlowSet.all_to_one(config.mesh, dst)
    )
    network = Network(config, weight_table=static_weights)
    traffic = AdversarialCongestionTraffic(
        mesh=config.mesh,
        victim_source=victim,
        victim_destination=dst,
        background_sources=[f.source for f in workloads["sparse"]],
    )
    return traffic.worst_probe_latency(network, 1_200)


def main() -> None:
    print(format_title("Burst-safe packet bounds of one victim flow (4x4 WaW+WaP)"))
    rows = bound_rows()
    print(format_table(rows))
    print()

    worst = observed_worst()
    sparse = next(r for r in rows if r["workload"] == "sparse")
    print(f"worst simulated probe latency under the sparse adversary: {worst}")
    for name in BACKENDS:
        bound = sparse[name]
        print(f"  {name:10s} bound {bound:4d}  slack {bound - worst:4d}  "
              f"{'sound' if bound >= worst else 'UNSOUND'}")
    print()

    print("Running the registered bound_comparison experiment (quick grid)...")
    print()
    result = bound_comparison.run(
        mesh_sizes=(3,), payload_sizes=(1,), congestion_cycles=600
    )
    print(bound_comparison.report(result))


if __name__ == "__main__":
    main()
