#!/usr/bin/env python3
"""Design-space exploration through the Scenario / sweep / engine API.

This example shows the library as a *design tool* rather than a paper
re-run.  A hypothetical architect explores how the guaranteed and the average
behaviour of the proposed WaW+WaP mesh react to three knobs:

* mesh size (core count),
* maximum packet size allowed in the network,
* router buffer depth,

then sweeps a registered experiment through the cache-aware batch engine and
finally validates the analytical bound of one design point against the
cycle-accurate simulator under adversarial congestion.

Run it with::

    python examples/design_space_exploration.py
"""

from __future__ import annotations

import tempfile

from repro.analysis.reporting import format_table, format_title
from repro.analysis.validation import validate_flow_bound
from repro.api import BatchEngine, Scenario, sweep
from repro.core import FlowSet, make_wctt_analysis, wctt_summary
from repro.core.area import waw_wap_overhead
from repro.core.wctt_weighted import WaWWaPWCTTAnalysis
from repro.geometry import Coord
from repro.noc.network import Network
from repro.workloads.synthetic import UniformRandomTraffic


def sweep_mesh_size() -> None:
    """One sweep() call replaces the hand-written double config loop."""
    rows = []
    for scenario in sweep(mesh=(4, 6, 8, 10, 12)):
        regular = scenario.regular().max_packet_flits(4).build()
        proposal = scenario.waw_wap().max_packet_flits(4).build()
        flows = FlowSet.all_to_one(regular.mesh, Coord(0, 0))
        regular_summary = wctt_summary(make_wctt_analysis(regular), flows, packet_flits=1)
        proposal_summary = wctt_summary(
            WaWWaPWCTTAnalysis.for_memory_traffic(proposal, include_replies=False),
            flows,
            packet_flits=1,
        )
        rows.append(
            {
                "mesh": f"{regular.mesh.width}x{regular.mesh.height}",
                "cores": regular.mesh.num_nodes - 1,
                "regular max WCTT": regular_summary.maximum,
                "WaW+WaP max WCTT": proposal_summary.maximum,
                "area overhead (%)": round(waw_wap_overhead(proposal) * 100, 2),
            }
        )
    print(format_title("Scaling the chip: worst-case guarantees vs core count"))
    print(format_table(rows))
    print()


def sweep_packet_size_and_buffers() -> None:
    """A two-axis grid of design points from a single sweep() expansion."""
    rows = []
    far = Coord(7, 7)
    base = Scenario.mesh(8)
    for scenario in sweep(base, max_packet_flits=(1, 4, 8, 16), buffer_depth=(2, 4, 8)):
        regular = scenario.regular().build()
        proposal = scenario.waw_wap().build()
        regular_bound = make_wctt_analysis(regular).wctt_packet(far, Coord(0, 0), packet_flits=1)
        proposal_bound = WaWWaPWCTTAnalysis.for_memory_traffic(
            proposal, include_replies=False
        ).wctt_packet(far, Coord(0, 0))
        rows.append(
            {
                "max packet (flits)": regular.max_packet_flits,
                "buffers (flits)": regular.buffer_depth,
                "regular WCTT (7,7)": regular_bound,
                "WaW+WaP WCTT (7,7)": proposal_bound,
            }
        )
    print(format_title("Packet size and buffering: only the regular design reacts"))
    print(format_table(rows))
    print()


def sweep_registered_experiment() -> None:
    """Run the Table II experiment over a grid through the batch engine.

    The engine caches every design point by config hash, so re-running the
    exploration (or sharing the cache dir between runs) only computes what
    changed; ``jobs`` fans the misses out over worker processes.
    """
    with tempfile.TemporaryDirectory(prefix="repro-cache-") as cache_dir:
        engine = BatchEngine(jobs=2, cache_dir=cache_dir)
        results = engine.sweep("table2", size=(2, 3, 4, 5, 6))
        print(format_title("Registered-experiment sweep through the batch engine"))
        # Read the flattened rows() rather than the native payload: rows keep
        # the same shape whether a result was computed or came from the cache.
        print(
            format_table(
                [
                    {
                        "design point": result.job.describe(),
                        "config hash": result.config_hash,
                        "cached": result.cached,
                        "regular max": result.result.rows()[0]["regular max"],
                        "WaW+WaP max": result.result.rows()[0]["WaW+WaP max"],
                    }
                    for result in results
                ]
            )
        )
        rerun = engine.sweep("table2", size=(2, 3, 4, 5, 6))
        print(f"\nre-sweep hits the cache for all {len(rerun)} points: "
              f"{all(r.cached for r in rerun)}")
    print()


def average_latency_check() -> None:
    rows = []
    for label, config in (
        ("regular", Scenario.mesh(4).regular().build()),
        ("WaW+WaP", Scenario.mesh(4).waw_wap().build()),
    ):
        network = Network(config)
        traffic = UniformRandomTraffic(config.mesh, injection_rate=0.02, payload_flits=4, seed=42)
        traffic.drive(network, cycles=2_000)
        network.run_until_idle(max_cycles=200_000)
        summary = network.stats.latency_summary(network_only=True)
        rows.append(
            {
                "design": label,
                "messages": summary.count,
                "avg latency": round(summary.average, 1),
                "max latency": summary.maximum,
            }
        )
    print(format_title("Average behaviour under uniform random traffic (cycle-accurate)"))
    print(format_table(rows))
    print()


def validate_one_design_point() -> None:
    result = validate_flow_bound(
        Scenario.mesh(4).waw_wap().max_packet_flits(1).build(),
        Coord(3, 3),
        Coord(0, 0),
        congestion_cycles=1_500,
    )
    print(format_title("Bound validation of the chosen design point"))
    print(
        f"  flow (3,3)->(0,0): analytical bound {result.analytical_bound} cycles, "
        f"worst observed {result.observed_worst} cycles "
        f"({result.tightness * 100:.0f}% of the bound) -> safe={result.is_safe}"
    )


def main() -> None:
    sweep_mesh_size()
    sweep_packet_size_and_buffers()
    sweep_registered_experiment()
    average_latency_check()
    validate_one_design_point()


if __name__ == "__main__":
    main()
