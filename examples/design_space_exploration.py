#!/usr/bin/env python3
"""Design-space exploration with the analysis and the cycle-accurate simulator.

This example shows the library as a *design tool* rather than a paper
re-run.  A hypothetical architect explores how the guaranteed and the average
behaviour of the proposed WaW+WaP mesh react to three knobs:

* mesh size (core count),
* maximum packet size allowed in the network,
* router buffer depth,

and finally validates the analytical bound of one design point against the
cycle-accurate simulator under adversarial congestion.

Run it with::

    python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_table, format_title
from repro.analysis.validation import validate_flow_bound
from repro.core import (
    FlowSet,
    make_wctt_analysis,
    regular_mesh_config,
    waw_wap_config,
    wctt_summary,
)
from repro.core.area import waw_wap_overhead
from repro.core.wctt_weighted import WaWWaPWCTTAnalysis
from repro.geometry import Coord
from repro.noc.network import Network
from repro.workloads.synthetic import UniformRandomTraffic


def sweep_mesh_size() -> None:
    rows = []
    for size in (4, 6, 8, 10, 12):
        regular = regular_mesh_config(size, max_packet_flits=4)
        proposal = waw_wap_config(size, max_packet_flits=4)
        flows = FlowSet.all_to_one(regular.mesh, Coord(0, 0))
        regular_summary = wctt_summary(make_wctt_analysis(regular), flows, packet_flits=1)
        proposal_summary = wctt_summary(
            WaWWaPWCTTAnalysis.for_memory_traffic(proposal, include_replies=False),
            flows,
            packet_flits=1,
        )
        rows.append(
            {
                "mesh": f"{size}x{size}",
                "cores": size * size - 1,
                "regular max WCTT": regular_summary.maximum,
                "WaW+WaP max WCTT": proposal_summary.maximum,
                "area overhead (%)": round(waw_wap_overhead(proposal) * 100, 2),
            }
        )
    print(format_title("Scaling the chip: worst-case guarantees vs core count"))
    print(format_table(rows))
    print()


def sweep_packet_size_and_buffers() -> None:
    rows = []
    far = Coord(7, 7)
    for max_packet in (1, 4, 8, 16):
        for buffers in (2, 4, 8):
            regular = regular_mesh_config(8, max_packet_flits=max_packet, buffer_depth=buffers)
            proposal = waw_wap_config(8, max_packet_flits=max_packet, buffer_depth=buffers)
            regular_bound = make_wctt_analysis(regular).wctt_packet(far, Coord(0, 0), packet_flits=1)
            proposal_bound = WaWWaPWCTTAnalysis.for_memory_traffic(
                proposal, include_replies=False
            ).wctt_packet(far, Coord(0, 0))
            rows.append(
                {
                    "max packet (flits)": max_packet,
                    "buffers (flits)": buffers,
                    "regular WCTT (7,7)": regular_bound,
                    "WaW+WaP WCTT (7,7)": proposal_bound,
                }
            )
    print(format_title("Packet size and buffering: only the regular design reacts"))
    print(format_table(rows))
    print()


def average_latency_check() -> None:
    rows = []
    for label, config in (
        ("regular", regular_mesh_config(4)),
        ("WaW+WaP", waw_wap_config(4)),
    ):
        network = Network(config)
        traffic = UniformRandomTraffic(config.mesh, injection_rate=0.02, payload_flits=4, seed=42)
        traffic.drive(network, cycles=2_000)
        network.run_until_idle(max_cycles=200_000)
        summary = network.stats.latency_summary(network_only=True)
        rows.append(
            {
                "design": label,
                "messages": summary.count,
                "avg latency": round(summary.average, 1),
                "max latency": summary.maximum,
            }
        )
    print(format_title("Average behaviour under uniform random traffic (cycle-accurate)"))
    print(format_table(rows))
    print()


def validate_one_design_point() -> None:
    result = validate_flow_bound(
        waw_wap_config(4, max_packet_flits=1),
        Coord(3, 3),
        Coord(0, 0),
        congestion_cycles=1_500,
    )
    print(format_title("Bound validation of the chosen design point"))
    print(
        f"  flow (3,3)->(0,0): analytical bound {result.analytical_bound} cycles, "
        f"worst observed {result.observed_worst} cycles "
        f"({result.tightness * 100:.0f}% of the bound) -> safe={result.is_safe}"
    )


def main() -> None:
    sweep_mesh_size()
    sweep_packet_size_and_buffers()
    average_latency_check()
    validate_one_design_point()


if __name__ == "__main__":
    main()
