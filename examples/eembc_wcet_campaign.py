#!/usr/bin/env python3
"""WCET campaign: every EEMBC-like benchmark on every core (paper Table III).

A certification-oriented user wants to know, for each core of the 64-core
manycore, how large the WCET estimate of a task becomes when it is placed
there -- and how that picture changes when the NoC is switched from the
regular design to WaW+WaP.  This script:

1. builds the per-core UBD tables of both design points;
2. computes the WCET estimate of all sixteen Autobench-like benchmarks on
   every core (WCET-computation mode);
3. prints the paper's Table III (per-core normalized WCET) plus a breakdown
   of the benchmarks that gain the most and the least.

Run it with::

    python examples/eembc_wcet_campaign.py
"""

from __future__ import annotations

from statistics import mean

from repro.analysis.reporting import format_key_values, format_table, format_title
from repro.experiments import table3_eembc
from repro.geometry import Coord
from repro.workloads.eembc import autobench_suite


def main() -> None:
    result = table3_eembc.run(mesh_size=8, max_packet_flits=4)

    # ------------------------------------------------------------------
    # 1. The paper-style normalized grid.
    # ------------------------------------------------------------------
    print(table3_eembc.report(result))
    print()

    # ------------------------------------------------------------------
    # 2. Which benchmarks move the most?  (Memory-bound kernels benefit most
    #    from the proposal on distant cores; compute-bound ones barely move.)
    # ------------------------------------------------------------------
    far_corner = Coord(result.mesh_width - 1, result.mesh_height - 1)
    near_core = Coord(1, 0)
    rows = []
    for profile in autobench_suite():
        ratios = result.per_benchmark[profile.name]
        rows.append(
            {
                "benchmark": profile.name,
                "misses/kinst": profile.misses_per_kinst,
                "ratio @ near core (1,0)": round(ratios[near_core], 3),
                "ratio @ far corner": f"{ratios[far_corner]:.2e}",
                "mean ratio (all cores)": round(mean(ratios.values()), 3),
            }
        )
    rows.sort(key=lambda r: r["misses/kinst"])
    print(format_title("Per-benchmark sensitivity (WCET with WaW+WaP / WCET with regular wNoC)"))
    print(format_table(rows))
    print()

    # ------------------------------------------------------------------
    # 3. A few headline numbers for the integrator.
    # ------------------------------------------------------------------
    print(
        format_key_values(
            {
                "cores whose WCET grows under WaW+WaP": len(result.cores_worse_than_regular()),
                "worst per-core slowdown": round(result.worst_slowdown(), 3),
                "best per-core improvement (ratio)": f"{result.best_improvement():.2e}",
                "mean ratio over the whole chip": round(mean(result.normalized.values()), 3),
            }
        )
    )


if __name__ == "__main__":
    main()
