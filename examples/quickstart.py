#!/usr/bin/env python3
"""Quickstart: compare worst-case traversal bounds of the two NoC designs.

This is the five-minute tour of the library:

1. describe the two design points of the paper (regular wNoC vs WaW+WaP) on
   the evaluated 8x8 mesh;
2. ask the analytical models for time-composable WCTT bounds of a few flows
   towards the memory controller;
3. build the per-core upper-bound-delay (UBD) table each design would use in
   the WCET-computation mode;
4. double check one flow on the cycle-accurate simulator.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    Coord,
    Network,
    UBDTable,
    make_wctt_analysis,
    regular_mesh_config,
    waw_wap_config,
)
from repro.analysis.reporting import format_table, format_title


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The two design points: same mesh, same messages, different policies.
    # ------------------------------------------------------------------
    regular = regular_mesh_config(8, max_packet_flits=4)
    proposal = waw_wap_config(8, max_packet_flits=4)
    print(format_title("Design points"))
    print(f"  baseline : {regular.describe()}")
    print(f"  proposal : {proposal.describe()}")
    print()

    # ------------------------------------------------------------------
    # 2. Time-composable WCTT bounds for a near, a mid and a far core.
    # ------------------------------------------------------------------
    memory = regular.memory_controller
    regular_analysis = make_wctt_analysis(regular)
    proposal_analysis = make_wctt_analysis(proposal)

    rows = []
    for label, core in [("near", Coord(1, 0)), ("mid", Coord(4, 3)), ("far", Coord(7, 7))]:
        regular_bound = regular_analysis.wctt_packet(core, memory, packet_flits=1)
        proposal_bound = proposal_analysis.wctt_packet(core, memory, packet_flits=1)
        rows.append(
            {
                "core": f"{label} {core}",
                "hops to MC": core.manhattan(memory) + 1,
                "regular WCTT": regular_bound,
                "WaW+WaP WCTT": proposal_bound,
                "gain": round(regular_bound / proposal_bound, 2),
            }
        )
    print(format_title("Per-flow WCTT bounds (1-flit request towards the memory controller)"))
    print(format_table(rows))
    print()

    # ------------------------------------------------------------------
    # 3. Upper bound delays: what a memory access costs in WCET mode.
    # ------------------------------------------------------------------
    regular_ubd = UBDTable(regular)
    proposal_ubd = UBDTable(proposal)
    rows = []
    for label, core in [("near", Coord(1, 0)), ("far", Coord(7, 7))]:
        rows.append(
            {
                "core": f"{label} {core}",
                "regular load UBD": regular_ubd.load_ubd(core),
                "WaW+WaP load UBD": proposal_ubd.load_ubd(core),
            }
        )
    print(format_title("Per-core load UBDs (request + memory + cache-line reply)"))
    print(format_table(rows))
    print()

    # ------------------------------------------------------------------
    # 4. Sanity check one uncontended flow on the cycle-accurate simulator.
    # ------------------------------------------------------------------
    network = Network(proposal)
    message = network.send(Coord(7, 7), memory, payload_flits=1, kind="load")
    network.run_until_idle(max_cycles=10_000)
    print(format_title("Cycle-accurate cross-check (no contention)"))
    print(
        f"  simulated zero-load latency (7,7)->(0,0): {message.network_latency} cycles; "
        f"analytical worst case: {proposal_analysis.wctt_packet(Coord(7, 7), memory)} cycles"
    )


if __name__ == "__main__":
    main()
