#!/usr/bin/env python3
"""Avionics case study: WCET of a 16-core 3D path planner (paper Figure 2).

This example mirrors the paper's industrial use case: a parallel 3D path
planning application (re-implemented in :mod:`repro.workloads.pathplanning`)
runs on 16 cores of a 64-core manycore whose single memory controller sits at
the corner of the mesh.  The script

1. plans an actual path through a 3D obstacle map and extracts the per-phase,
   per-thread work of the parallel run;
2. prices that work under the WCET-computation mode for both NoC design
   points, for three maximum packet sizes (Figure 2(a));
3. repeats the exercise across four task placements (Figure 2(b)) and shows
   why placement stops mattering once WaW+WaP is enabled.

Run it with::

    python examples/avionics_path_planning.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_key_values, format_table, format_title
from repro.experiments import fig2a_packet_size, fig2b_placement
from repro.workloads.pathplanning import PathPlanningConfig, plan_path


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Run the planner itself (this is a real path-planning computation).
    # ------------------------------------------------------------------
    config = PathPlanningConfig()
    result = plan_path(config)
    print(format_title("3D path planning run"))
    print(
        format_key_values(
            {
                "grid": "x".join(str(d) for d in config.dimensions),
                "goal reached": result.reached,
                "path length (cells)": result.path_length,
                "wavefront sweeps": result.sweeps,
                "parallel phases": len(result.workload.phases),
                "NoC load round trips": result.workload.total_loads,
                "compute cycles (all threads)": result.workload.total_compute_cycles,
            }
        )
    )
    print()

    # ------------------------------------------------------------------
    # 2. Figure 2(a): sensitivity to the maximum packet size.
    # ------------------------------------------------------------------
    points = fig2a_packet_size.run(workload=result.workload, packet_sizes=(1, 4, 8))
    print(format_title("WCET estimates vs maximum packet size (placement P0)"))
    print(format_table([p.as_dict() for p in points]))
    print()

    # ------------------------------------------------------------------
    # 3. Figure 2(b): sensitivity to the placement of the 16 threads.
    # ------------------------------------------------------------------
    placement_points = fig2b_placement.run(workload=result.workload)
    print(format_title("WCET estimates vs task placement (1-flit maximum packets)"))
    print(format_table([p.as_dict() for p in placement_points]))
    print()
    print(format_key_values(fig2b_placement.variability(placement_points)))
    print()
    print(
        "With the regular wNoC the system integrator must fight for the placement\n"
        "next to the memory controller; with WaW+WaP any placement gives nearly the\n"
        "same guaranteed performance, which is what makes incremental integration\n"
        "of avionics functions practical."
    )


if __name__ == "__main__":
    main()
