#!/usr/bin/env python3
"""Analysis as a service: a client session against the repro daemon.

This example plays both sides of the service protocol in one process: it
starts a daemon on a background thread (exactly what ``repro-experiments
serve`` runs in the foreground), then walks the client surface a design
team would script against a shared long-running daemon:

* submit individual experiments and watch streamed progress,
* submit a ``sweep()`` scenario grid that computes server-side with
  dedup -- identical design points run exactly once,
* resubmit the same grid and observe every point served from the durable
  content-addressed store,
* inspect queue/cache statistics, and
* reuse the daemon's store from a plain ``BatchEngine``.

Against a real daemon, replace ``start_service_thread`` with the address
of a ``repro-experiments serve`` process.  Run it with::

    python examples/service_client.py
"""

from __future__ import annotations

import tempfile

from repro.analysis.reporting import format_key_values, format_table, format_title
from repro.api import BatchEngine, BatchJob, Scenario, sweep
from repro.service import ResultStore, ServiceClient, start_service_thread


def submit_experiments(client: ServiceClient) -> None:
    """Individual paper experiments, with streamed per-job progress."""
    print(format_title("Submitting experiments to the daemon"))
    jobs = [BatchJob("table1", quick=True), BatchJob("table2", quick=True)]
    response = client.submit(
        jobs,
        on_progress=lambda event: print(
            f"  progress {event['completed']}/{event['total']}: "
            f"{event['hash']} is {event['state']}"
        ),
    )
    print(
        format_table(
            [
                {
                    "experiment": ticket["experiment"],
                    "hash": ticket["hash"],
                    "source": ticket["source"],
                    "rows": len(result["rows"]),
                }
                for ticket, result in zip(response["tickets"], response["results"])
            ]
        )
    )
    print()


def submit_scenario_grid(client: ServiceClient) -> None:
    """A sweep() grid evaluated server-side, then resubmitted for free."""
    print(format_title("A scenario grid: computed once, then served from the store"))
    grid = sweep(
        Scenario.mesh(4),
        design=("regular", "waw_wap"),
        max_packet_flits=(1, 4),
    )
    first = client.submit_scenarios(grid, quick=True)
    second = client.submit_scenarios(grid, quick=True)  # all cache hits
    print(
        format_table(
            [
                {
                    "scenario": result["rows"][0]["scenario"],
                    "WCTT max": result["rows"][0]["WCTT max"],
                    "first": ticket["source"],
                    "resubmit": again["source"],
                }
                for ticket, again, result in zip(
                    first["tickets"], second["tickets"], second["results"]
                )
            ]
        )
    )
    assert all(result["cached"] for result in second["results"])
    print()


def show_stats(client: ServiceClient) -> None:
    """The daemon's own accounting: queue, dedup and hit-rate counters."""
    print(format_title("Daemon statistics"))
    stats = client.stats()
    print(
        format_key_values(
            {
                "version": stats["version"],
                "submitted": stats["jobs"]["submitted"],
                "computed once": stats["jobs"]["computed"],
                "store hits": stats["jobs"]["store_hits"],
                "memory hits": stats["jobs"]["memory_hits"],
                "coalesced in-flight": stats["jobs"]["coalesced"],
                "cache hit rate": stats["cache_hit_rate"],
                "store entries": stats["store"]["entries"],
            }
        )
    )
    print()


def share_store_with_engine(store_dir: str) -> None:
    """Daemon-computed results are ordinary BatchEngine cache hits."""
    print(format_title("The durable store is shared with the batch engine"))
    engine = BatchEngine(store=ResultStore(store_dir))
    hit = engine.run(BatchJob("table1", quick=True))
    print(f"engine.run(table1) cached: {hit.cached}  (hash {hit.config_hash})")
    print()


def main() -> None:
    store_dir = tempfile.mkdtemp(prefix="repro-service-example-")
    with start_service_thread(port=0, store_dir=store_dir) as handle:
        client = ServiceClient(host=handle.host, port=handle.port)
        print(f"daemon listening on {handle.host}:{handle.port}, store at {store_dir}\n")
        submit_experiments(client)
        submit_scenario_grid(client)
        show_stats(client)
    share_store_with_engine(store_dir)


if __name__ == "__main__":
    main()
