"""Benchmark E3 -- regenerate paper Table III (normalized per-core WCET of EEMBC)."""

from __future__ import annotations

from repro.experiments import table3_eembc
from repro.geometry import Coord


def bench_table3_full_8x8(benchmark):
    """The full 8x8 grid over the sixteen Autobench-like benchmarks."""
    result = benchmark.pedantic(table3_eembc.run, rounds=1, iterations=1)

    # Headline claims of the paper:
    # (1) only a handful of nodes next to the memory controller get worse ...
    worse = result.cores_worse_than_regular()
    assert 0 < len(worse) <= 16
    assert all(core.manhattan(Coord(0, 0)) <= 4 for core in worse)
    # (2) ... and only moderately so (the paper reports up to ~1.5x);
    assert result.worst_slowdown() < 2.5
    # (3) the far corner improves by 3-4 orders of magnitude.
    assert result.normalized[Coord(7, 7)] < 1e-2

    benchmark.extra_info["cores_worse"] = len(worse)
    benchmark.extra_info["worst_slowdown"] = round(result.worst_slowdown(), 3)
    benchmark.extra_info["best_improvement"] = result.best_improvement()
    print()
    print(table3_eembc.report(result))


def bench_table3_single_benchmark_sensitivity(benchmark):
    """Per-benchmark sensitivity: the memory-bound kernels move the most."""
    from repro.workloads.eembc import autobench_profile

    def run():
        return table3_eembc.run(
            mesh_size=8, benchmarks=[autobench_profile("cacheb"), autobench_profile("a2time")]
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    far = Coord(7, 7)
    cacheb = result.per_benchmark["cacheb"][far]
    a2time = result.per_benchmark["a2time"][far]
    # The memory-bound kernel benefits more from the proposal at far nodes.
    assert cacheb <= a2time
