"""Benchmark: the numpy-vectorized sweep engine against the scalar analysis.

Two questions, recorded in ``BENCH_analysis.json`` at the repository root:

* how many design points per second :func:`repro.analysis.evaluate_grid`
  sustains on a >= 1000-point ``sweep()`` grid versus the scalar per-flow
  reference, with the >= 10x speedup asserted (the whole point of the
  vectorized kernels is that a grid submission stops being bound by python
  route walks);
* how much the :class:`~repro.analysis.vector.GridEvaluator` structural
  cache saves when a sweep varies only ``packet_flits`` on top of a fixed
  structure (the regular bound is affine in the packet's own flits, so
  packet variants cost O(flows) additions instead of a kernel run).

Both paths must agree bit-for-bit -- asserted here on every point, on top
of the dedicated differential suite.
"""

from __future__ import annotations

import json
import os
import time

from repro.analysis.vector import GridEvaluator, evaluate_grid
from repro.api import Scenario, sweep
from repro.core import FlowSet, make_wctt_analysis, wctt_summary

BENCH_JSON = os.path.join(os.path.dirname(__file__), "..", "BENCH_analysis.json")

_RECORD = {}


def _write_record() -> None:
    with open(BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(_RECORD, handle, indent=2)
        handle.write("\n")


def _sweep_grid():
    """A 1176-point structural grid (shapes x designs x depths x sizes x MC)."""
    return sweep(
        Scenario.mesh(4),
        mesh=[(w, h) for w in range(6, 13) for h in range(6, 13)],
        design=("regular", "waw_wap"),
        buffer_depth=(1, 2, 4),
        max_packet_flits=(2, 4),
        memory_controller=[(0, 0), (1, 1)],
    )


def _scalar_summaries(grid):
    summaries = []
    for scenario in grid:
        config = scenario.build()
        flows = FlowSet.all_to_one(config.mesh, config.memory_controller)
        summaries.append(wctt_summary(make_wctt_analysis(config), flows))
    return summaries


def bench_vector_sweep_speedup(benchmark):
    """Vectorized grid evaluation must beat the scalar loop by >= 10x."""
    grid = _sweep_grid()
    assert len(grid) >= 1000

    start = time.perf_counter()
    scalar = _scalar_summaries(grid)
    scalar_seconds = time.perf_counter() - start

    vector_seconds = []
    vector_results = []

    def vector_sweep():
        start = time.perf_counter()
        vector_results.append(evaluate_grid(grid))
        vector_seconds.append(time.perf_counter() - start)

    benchmark.pedantic(vector_sweep, rounds=3, iterations=1)
    for result in vector_results:
        assert result == scalar  # bit-identical summaries, incl. float means

    best_vector = min(vector_seconds)
    speedup = scalar_seconds / best_vector
    assert speedup >= 10.0, (
        f"vectorized sweep ({best_vector:.3f}s) is only {speedup:.1f}x faster "
        f"than the scalar loop ({scalar_seconds:.3f}s) on {len(grid)} points"
    )
    _RECORD["sweep_speedup"] = {
        "benchmark": f"{len(grid)}-point scenario grid: evaluate_grid vs the "
        "scalar per-flow analysis loop",
        "design_points": len(grid),
        "scalar_seconds": round(scalar_seconds, 4),
        "scalar_points_per_second": round(len(grid) / scalar_seconds, 1),
        "vector_seconds": round(best_vector, 4),
        "vector_points_per_second": round(len(grid) / best_vector, 1),
        "speedup": round(speedup, 1),
    }
    _write_record()
    benchmark.extra_info.update(_RECORD["sweep_speedup"])


def bench_packet_size_variants_reuse_structure(benchmark):
    """Packet-size variants of one structure must amortize the kernel run."""
    structures = sweep(
        Scenario.mesh(8),
        design="regular",
        buffer_depth=(1, 2, 4),
        max_packet_flits=(4, 8),
    )
    sizes = (1, 2, 3, 4)

    def fresh_per_variant():
        # Reference: a new evaluator per variant recomputes every kernel.
        results = []
        for size in sizes:
            results.extend(evaluate_grid(structures, packet_flits=size))
        return results

    start = time.perf_counter()
    fresh = fresh_per_variant()
    fresh_seconds = time.perf_counter() - start

    cached_seconds = []
    cached_results = []
    hit_counts = []

    def cached_variants():
        evaluator = GridEvaluator()
        start = time.perf_counter()
        results = []
        for size in sizes:
            for scenario in structures:
                results.append(evaluator.summary(scenario, packet_flits=size))
        cached_seconds.append(time.perf_counter() - start)
        cached_results.append(results)
        hit_counts.append((evaluator.hits, evaluator.misses))

    benchmark.pedantic(cached_variants, rounds=3, iterations=1)
    expected_misses = len(structures)
    expected_hits = len(structures) * (len(sizes) - 1)
    for hits, misses in hit_counts:
        assert (hits, misses) == (expected_hits, expected_misses)
    for results in cached_results:
        assert results == fresh

    best_cached = min(cached_seconds)
    _RECORD["packet_variants"] = {
        "benchmark": f"{len(structures)} structures x {len(sizes)} packet "
        "sizes: per-variant kernel runs vs the structural cache",
        "evaluations": len(structures) * len(sizes),
        "fresh_seconds": round(fresh_seconds, 4),
        "cached_seconds": round(best_cached, 4),
        "cache_hits": expected_hits,
        "speedup": round(fresh_seconds / best_cached, 1),
    }
    _write_record()
    benchmark.extra_info.update(_RECORD["packet_variants"])
