"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see the
experiment index in README.md or ``repro-experiments list``).  The
benchmarks both *measure* the runtime of the
reproduction pipeline and *assert* the headline qualitative claims, so that
``pytest benchmarks/ --benchmark-only`` doubles as an end-to-end regeneration
of the paper's evaluation.
"""

from __future__ import annotations

import pytest

from repro.manycore.cache import CacheConfig
from repro.workloads.pathplanning import PathPlanningConfig, plan_path


@pytest.fixture(scope="session")
def paper_3dpp_workload():
    """The 3DPP workload used by the Figure 2 benchmarks (planned once)."""
    return plan_path(PathPlanningConfig()).workload


@pytest.fixture(scope="session")
def fast_3dpp_workload():
    """A reduced 3DPP instance for benchmarks that sweep many design points."""
    config = PathPlanningConfig(
        dimensions=(16, 16, 6),
        num_threads=16,
        cycles_per_cell_update=400,
        cycles_per_neighbour_check=100,
        cache=CacheConfig(size_bytes=8 * 1024),
        sweeps_per_phase=3,
    )
    return plan_path(config).workload
