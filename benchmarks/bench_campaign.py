"""Benchmark: campaign resume throughput against cold computation.

One question, recorded in ``BENCH_campaign.json`` at the repository root:
how much faster a fully-checkpointed campaign resumes than it computed
cold.  The campaign promise is "interrupt at any point, resume with zero
recomputation" -- a resume replays shard checkpoints from the durable
store, so its per-shard cost must be store-read latency, not analysis
time.  The run asserts at least a 5x shard-throughput advantage.
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from repro.api import Scenario, sweep_jobs
from repro.campaign import Campaign
from repro.service import ResultStore

BENCH_JSON = os.path.join(os.path.dirname(__file__), "..", "BENCH_campaign.json")

_RECORD = {}


def _write_record() -> None:
    with open(BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(_RECORD, handle, indent=2)
        handle.write("\n")


def _grid():
    # Full (non-quick) scenario analyses on moderate meshes: heavy enough
    # that cold compute dominates the store reads a resume pays for.
    return sweep_jobs(
        Scenario.mesh(6),
        design=("regular", "waw_wap"),
        max_packet_flits=(1, 2, 4),
    )


def bench_resume_vs_cold_shard_throughput(benchmark):
    """Resuming a checkpointed campaign must beat cold compute >= 5x."""
    store_root = tempfile.mkdtemp(prefix="repro-bench-campaign-")
    jobs = _grid()

    cold = Campaign(jobs, name="bench", shard_size=2, holdout=1,
                    store=ResultStore(store_root))
    start = time.perf_counter()
    cold_report = cold.run()
    cold_seconds = time.perf_counter() - start
    assert cold_report.timing()["resumed_shards"] == 0
    shards = cold_report.summary()["shards"]

    resume_seconds = []

    def resume():
        store = ResultStore(store_root)
        campaign = Campaign(jobs, name="bench", shard_size=2, holdout=1,
                            store=store)
        start = time.perf_counter()
        report = campaign.run()
        resume_seconds.append(time.perf_counter() - start)
        assert report.timing()["resumed_shards"] == shards
        assert store.writes == 0  # zero recomputation, zero rewrites

    benchmark.pedantic(resume, rounds=5, iterations=1)

    best_resume = min(resume_seconds)
    speedup = cold_seconds / best_resume
    assert speedup >= 5.0, (
        f"campaign resume ({best_resume:.4f}s) is only {speedup:.1f}x faster "
        f"than the cold run ({cold_seconds:.4f}s)"
    )
    _RECORD["resume"] = {
        "benchmark": f"{len(jobs)}-point scenario_wctt campaign in {shards} "
        "shards: cold run vs fully-checkpointed resume",
        "design_points": len(jobs),
        "shards": shards,
        "cold_seconds": round(cold_seconds, 4),
        "cold_shards_per_second": round(shards / cold_seconds, 2),
        "resume_seconds": round(best_resume, 4),
        "resume_shards_per_second": round(shards / best_resume, 2),
        "resume_speedup": round(speedup, 1),
    }
    _write_record()
    benchmark.extra_info.update(_RECORD["resume"])
