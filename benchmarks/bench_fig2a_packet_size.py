"""Benchmark E4 -- regenerate paper Figure 2(a) (3DPP WCET vs max packet size)."""

from __future__ import annotations

from repro.experiments import fig2a_packet_size


def bench_fig2a_packet_size_series(benchmark, paper_3dpp_workload):
    """WCET of the 16-core path planner for L1/L4/L8 on both designs."""

    def run():
        return fig2a_packet_size.run(workload=paper_3dpp_workload, packet_sizes=(1, 4, 8))

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    by_label = {p.label: p for p in points}

    # Headline claims: the proposal wins for every packet size, its estimate
    # is independent of L, and the gap widens as L grows.
    assert all(p.improvement > 1.0 for p in points)
    assert by_label["L1"].waw_wap_wcet == by_label["L8"].waw_wap_wcet
    assert by_label["L8"].improvement > by_label["L4"].improvement
    assert by_label["L8"].regular_wcet > by_label["L4"].regular_wcet

    for point in points:
        benchmark.extra_info[f"improvement_{point.label}"] = round(point.improvement, 2)
    print()
    print(fig2a_packet_size.report(points))


def bench_fig2a_planner_generation(benchmark):
    """Cost of generating the 3DPP workload itself (planning + traffic model)."""
    from repro.workloads.pathplanning import PathPlanningConfig, plan_path

    result = benchmark.pedantic(
        lambda: plan_path(PathPlanningConfig()), rounds=1, iterations=1
    )
    assert result.reached
    assert result.workload.total_loads > 0
