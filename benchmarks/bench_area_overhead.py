"""Benchmark E7 -- router area overhead of WaW+WaP (< 5 % claim)."""

from __future__ import annotations

from repro.core.config import waw_wap_config
from repro.core.area import waw_wap_overhead
from repro.experiments import area_overhead


def bench_area_overhead_model(benchmark):
    """Evaluate the parametric area model for the evaluated system + sweeps."""
    points = benchmark(area_overhead.run)
    evaluated = points[0]
    assert 0.0 < evaluated.overhead_percent < 5.0
    benchmark.extra_info["overhead_percent"] = round(evaluated.overhead_percent, 2)
    print()
    print(area_overhead.report(points))


def bench_area_overhead_whole_noc(benchmark):
    """Whole-NoC overhead figure used in the paper's text."""
    overhead = benchmark(lambda: waw_wap_overhead(waw_wap_config(8)))
    assert overhead < 0.05
