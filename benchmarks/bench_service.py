"""Benchmark: the analysis daemon (repro.service) against batch execution.

Two questions, recorded in ``BENCH_service.json`` at the repository root:

* how much faster a warm-cache fetch from a (restarted) daemon is than
  computing the Table III EEMBC scenario cold -- the whole point of the
  durable content-addressed store is that the second consumer of a design
  point pays socket + store-read latency instead of analysis time;
* how many design-point submissions per second the daemon sustains on a
  ``scenario_wctt`` sweep grid, cold (every point computed) and warm
  (every point answered from the store).
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from repro.api import Scenario, sweep
from repro.service import ServiceClient, start_service_thread

BENCH_JSON = os.path.join(os.path.dirname(__file__), "..", "BENCH_service.json")

#: The paper scenario of the speedup benchmark: the full Table III EEMBC
#: per-core WCET grid (8x8 mesh), the heaviest registered analysis.
TABLE3_JOB = {"experiment": "table3"}

_RECORD = {}


def _write_record() -> None:
    with open(BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(_RECORD, handle, indent=2)
        handle.write("\n")


def bench_warm_cache_fetch_vs_cold_compute(benchmark):
    """Warm-cache fetch must beat cold compute by >= 10x (Table III)."""
    store_dir = tempfile.mkdtemp(prefix="repro-bench-service-")

    with start_service_thread(port=0, store_dir=store_dir) as handle:
        client = ServiceClient(port=handle.port)
        start = time.perf_counter()
        cold = client.submit([TABLE3_JOB])
        cold_seconds = time.perf_counter() - start
        assert cold["results"][0]["cached"] is False

    # A fresh daemon on the same store: every answer must come from disk.
    warm_seconds = []
    with start_service_thread(port=0, store_dir=store_dir) as handle:
        client = ServiceClient(port=handle.port)

        def warm_fetch():
            start = time.perf_counter()
            response = client.submit([TABLE3_JOB])
            warm_seconds.append(time.perf_counter() - start)
            assert response["results"][0]["cached"] is True

        benchmark.pedantic(warm_fetch, rounds=5, iterations=1)
        assert client.stats()["jobs"]["computed"] == 0  # nothing recomputed

    best_warm = min(warm_seconds)
    speedup = cold_seconds / best_warm
    assert speedup >= 10.0, (
        f"warm-cache fetch ({best_warm:.4f}s) is only {speedup:.1f}x faster "
        f"than cold compute ({cold_seconds:.4f}s)"
    )
    _RECORD["warm_cache"] = {
        "benchmark": "Table III EEMBC scenario: cold daemon compute vs "
        "warm-cache fetch after a daemon restart",
        "cold_compute_seconds": round(cold_seconds, 4),
        "warm_fetch_seconds": round(best_warm, 4),
        "warm_speedup": round(speedup, 1),
    }
    _write_record()
    benchmark.extra_info.update(_RECORD["warm_cache"])


def bench_submission_throughput(benchmark):
    """Design-point submissions/second on a scenario sweep grid."""
    grid = sweep(
        Scenario.mesh(4),
        design=("regular", "waw_wap"),
        max_packet_flits=(1, 2, 4, 8),
    )

    with start_service_thread(port=0, store_dir=tempfile.mkdtemp()) as handle:
        client = ServiceClient(port=handle.port)

        start = time.perf_counter()
        first = client.submit_scenarios(grid, quick=True)
        cold_seconds = time.perf_counter() - start
        assert all(t["state"] == "done" for t in first["tickets"])

        warm_seconds = []

        def warm_resubmit():
            start = time.perf_counter()
            response = client.submit_scenarios(grid, quick=True)
            warm_seconds.append(time.perf_counter() - start)
            assert all(r["cached"] for r in response["results"])

        benchmark.pedantic(warm_resubmit, rounds=5, iterations=1)
        stats = client.stats()
        assert stats["jobs"]["computed"] == len(grid)  # each point ran once

    best_warm = min(warm_seconds)
    _RECORD["throughput"] = {
        "benchmark": f"{len(grid)}-point scenario_wctt sweep grid submitted "
        "over the NDJSON socket protocol",
        "design_points": len(grid),
        "cold_seconds": round(cold_seconds, 4),
        "cold_submissions_per_second": round(len(grid) / cold_seconds, 1),
        "warm_seconds": round(best_warm, 4),
        "warm_submissions_per_second": round(len(grid) / best_warm, 1),
    }
    _write_record()
    benchmark.extra_info.update(_RECORD["throughput"])
