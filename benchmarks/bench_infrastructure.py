"""Infrastructure micro-benchmarks (not tied to a specific paper artefact).

These track the cost of the two computational kernels every experiment rests
on -- the analytical WCTT evaluation and the cycle-accurate simulation loop --
so that performance regressions in the library itself are visible.
"""

from __future__ import annotations

from repro.core.config import regular_mesh_config, waw_wap_config
from repro.core.ubd import UBDTable
from repro.core.wctt import make_wctt_analysis
from repro.core.wctt_weighted import WaWWaPWCTTAnalysis
from repro.geometry import Coord
from repro.noc.network import Network


def bench_regular_wctt_corner_flow(benchmark):
    """One corner-to-corner regular-mesh WCTT evaluation on the 8x8 chip."""
    config = regular_mesh_config(8, max_packet_flits=4)

    def run():
        analysis = make_wctt_analysis(config)
        return analysis.wctt_packet(Coord(7, 7), Coord(0, 0), packet_flits=1)

    assert benchmark(run) > 0


def bench_waw_wap_full_ubd_table(benchmark):
    """Building the full 63-core UBD table for the WaW+WaP design."""
    config = waw_wap_config(8, max_packet_flits=4)

    def run():
        return UBDTable(config)

    table = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(table) == 63


def bench_network_cycle_loop_idle(benchmark):
    """Cost of stepping an idle 8x8 network for 1000 cycles."""
    network = Network(waw_wap_config(8))

    def run():
        network.run(1_000)
        return network.cycle

    assert benchmark.pedantic(run, rounds=2, iterations=1) > 0


def bench_network_cycle_loop_loaded(benchmark):
    """Cost of delivering a burst of hotspot messages on a 4x4 network."""
    config = regular_mesh_config(4)

    def run():
        network = Network(config)
        for _ in range(5):
            for src in config.mesh.nodes():
                if src != Coord(0, 0):
                    network.send(src, Coord(0, 0), 4, kind="load")
        network.run_until_idle(max_cycles=100_000)
        return network.stats.completed_messages

    assert benchmark.pedantic(run, rounds=2, iterations=1) == 75


def bench_memory_traffic_weight_analysis(benchmark):
    """Building the WaW+WaP analysis with memory-traffic weights (8x8)."""

    def run():
        return WaWWaPWCTTAnalysis.for_memory_traffic(waw_wap_config(8))

    analysis = benchmark.pedantic(run, rounds=2, iterations=1)
    assert analysis.round_flits(Coord(0, 0), list(analysis.mesh.output_ports(Coord(0, 0)))[0]) >= 1
