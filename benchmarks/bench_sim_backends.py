"""Benchmark: event-driven vs cycle-accurate backend on the EEMBC workload.

The paper's Table III workload -- each EEMBC-Autobench-like benchmark running
alone against the memory controller of the 8x8 mesh -- is the regime the
event-driven backend was built for: long compute gaps between NoC round
trips that the cycle-accurate reference walks one cycle at a time.  This
benchmark runs the full suite under both backends, asserts the makespans
are bit-identical, requires the event-driven backend to be at least 3x
faster and records the wall-clock trajectory in ``BENCH_sim.json`` at the
repository root.
"""

from __future__ import annotations

import json
import os
import time

from repro.api import Scenario
from repro.geometry import Coord
from repro.manycore.system import ManycoreSystem
from repro.workloads.eembc import autobench_suite

BENCH_JSON = os.path.join(os.path.dirname(__file__), "..", "BENCH_sim.json")

#: Scaled-down instruction counts keep the cycle-accurate reference runnable
#: in CI; the compute-gap structure (and therefore the speedup regime) is
#: scale-invariant.
PROFILE_SCALE = 0.005
MESH_SIZE = 8
REQUIRED_SPEEDUP = 3.0


def _run_suite(backend: str) -> "tuple[dict, float]":
    """Run every benchmark alone at the far corner; return makespans + time."""
    config = Scenario.mesh(MESH_SIZE).waw_wap().backend(backend).build()
    far_corner = Coord(MESH_SIZE - 1, MESH_SIZE - 1)
    makespans = {}
    start = time.perf_counter()
    for profile in autobench_suite():
        system = ManycoreSystem(config)
        system.add_profile_core(far_corner, profile.scaled(PROFILE_SCALE))
        system.run_to_completion()
        makespans[profile.name] = system.makespan()
    return makespans, time.perf_counter() - start


def bench_event_driven_vs_cycle_accurate(benchmark):
    """Wall-clock of both backends over the 16-benchmark EEMBC suite."""
    cycle_makespans, cycle_seconds = _run_suite("cycle")

    event_state = {}

    def run_event():
        event_state["makespans"], event_state["seconds"] = _run_suite("event")

    benchmark.pedantic(run_event, rounds=1, iterations=1)
    event_makespans = event_state["makespans"]
    event_seconds = event_state["seconds"]

    # Differential guard: the speedup is only worth anything if the numbers
    # are exactly the cycle-accurate ones.
    assert event_makespans == cycle_makespans

    speedup = cycle_seconds / event_seconds
    record = {
        "benchmark": "table3-eembc-per-core (each Autobench kernel alone at "
        f"({MESH_SIZE - 1},{MESH_SIZE - 1}) of the {MESH_SIZE}x{MESH_SIZE} "
        "WaW+WaP mesh)",
        "profile_scale": PROFILE_SCALE,
        "benchmarks": len(cycle_makespans),
        "simulated_cycles_total": sum(cycle_makespans.values()),
        "cycle_accurate_seconds": round(cycle_seconds, 3),
        "event_driven_seconds": round(event_seconds, 3),
        "speedup": round(speedup, 2),
        "makespans_identical": True,
    }
    with open(BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")

    benchmark.extra_info.update(record)
    assert speedup >= REQUIRED_SPEEDUP, (
        f"event-driven backend is only {speedup:.2f}x faster than the "
        f"cycle-accurate reference (required: >= {REQUIRED_SPEEDUP}x); "
        "see BENCH_sim.json"
    )


def bench_event_driven_drain_throughput(benchmark):
    """Event-driven drain of a bursty hotspot load on the 8x8 mesh."""
    from repro.noc.network import Network

    config = Scenario.mesh(8).waw_wap().backend("event").build()

    def run():
        network = Network(config)
        for src in config.mesh.nodes():
            if src != Coord(0, 0):
                network.send(src, Coord(0, 0), 4, kind="load")
        network.run_until_idle(max_cycles=500_000)
        return network.stats.completed_messages

    assert benchmark.pedantic(run, rounds=2, iterations=1) == 63
