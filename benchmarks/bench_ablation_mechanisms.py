"""Benchmark E8 -- ablation of the two mechanisms (WaP only / WaW only / both)."""

from __future__ import annotations

from repro.experiments import ablation_mechanisms


def bench_ablation_8x8(benchmark):
    """WCTT decomposition on the evaluated 8x8 memory-traffic scenario."""
    rows = benchmark.pedantic(ablation_mechanisms.run, rounds=1, iterations=1)
    by_variant = {r.variant: r for r in rows}
    regular = next(v for k, v in by_variant.items() if k.startswith("regular (L=4, merging"))
    wap_only = next(v for k, v in by_variant.items() if k.startswith("WaP only"))
    waw_only = next(v for k, v in by_variant.items() if k.startswith("WaW only"))
    combined = next(v for k, v in by_variant.items() if k.startswith("WaW + WaP"))

    assert wap_only.maximum < regular.maximum
    assert waw_only.maximum < regular.maximum
    assert combined.maximum <= min(wap_only.maximum, waw_only.maximum)

    benchmark.extra_info["regular_max"] = regular.maximum
    benchmark.extra_info["combined_max"] = combined.maximum
    print()
    print(ablation_mechanisms.report(rows))
