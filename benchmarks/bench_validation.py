"""Benchmark E9 -- analytical WCTT bounds vs adversarial cycle-accurate runs."""

from __future__ import annotations

from repro.experiments import bound_validation


def bench_bound_validation(benchmark):
    """Safety check of both designs' bounds on 3x3 and 4x4 meshes."""

    def run():
        return bound_validation.run(mesh_sizes=(3, 4), congestion_cycles=1_000)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert rows and all(r.safe for r in rows)
    waw_rows = [r for r in rows if r.design == "WaW+WaP"]
    benchmark.extra_info["flows_validated"] = len(rows)
    benchmark.extra_info["waw_wap_worst_tightness"] = round(
        max(r.tightness for r in waw_rows), 3
    )
    print()
    print(bound_validation.report(rows))


def bench_adversarial_simulation_only(benchmark):
    """Raw cost of one adversarial congestion run (4x4, far victim flow)."""
    from repro.analysis.validation import validate_flow_bound
    from repro.core.config import waw_wap_config
    from repro.geometry import Coord

    def run():
        return validate_flow_bound(
            waw_wap_config(4, max_packet_flits=1),
            Coord(3, 3),
            Coord(0, 0),
            congestion_cycles=800,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.is_safe
