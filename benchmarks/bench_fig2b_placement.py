"""Benchmark E5 -- regenerate paper Figure 2(b) (3DPP WCET vs task placement)."""

from __future__ import annotations

from repro.experiments import fig2b_placement


def bench_fig2b_placement_series(benchmark, paper_3dpp_workload):
    """WCET of the path planner under the four standard placements (L1 setup)."""

    def run():
        return fig2b_placement.run(workload=paper_3dpp_workload)

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    spread = fig2b_placement.variability(points)

    # Headline claims: the proposal wins for every placement; placement is a
    # first-order factor for the regular design and a second-order one for
    # WaW+WaP.
    assert all(p.improvement > 1.0 for p in points)
    assert spread["regular wNoC max/min across placements"] > 6.0
    assert spread["WaW+WaP max/min across placements"] < 1.5

    benchmark.extra_info["regular_spread"] = round(
        spread["regular wNoC max/min across placements"], 1
    )
    benchmark.extra_info["waw_wap_spread"] = round(
        spread["WaW+WaP max/min across placements"], 3
    )
    print()
    print(fig2b_placement.report(points))


def bench_fig2b_single_placement_wcet(benchmark, fast_3dpp_workload):
    """Cost of one parallel WCET evaluation (one bar of the figure)."""
    from repro.core.config import waw_wap_config
    from repro.core.ubd import UBDTable
    from repro.geometry import Mesh
    from repro.manycore.placement import standard_placements
    from repro.manycore.wcet_mode import wcet_of_parallel_workload

    config = waw_wap_config(8, max_packet_flits=1)
    table = UBDTable(config)
    placement = standard_placements(Mesh(8, 8))["P0"]

    result = benchmark(
        lambda: wcet_of_parallel_workload(fast_3dpp_workload, placement, table)
    )
    assert result.total > 0
