"""Benchmark E6 -- average-performance impact of WaW+WaP (cycle-accurate)."""

from __future__ import annotations

from repro.experiments import avg_performance


def bench_avg_performance_scenarios(benchmark):
    """Makespan of both designs on the multiprogrammed and parallel scenarios."""

    def run():
        return avg_performance.run(mesh_size=4)

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(points) == 2
    for point in points:
        # The paper reports < 1 % degradation; the reproduction's small
        # simulated configurations stay in the low single digits.
        assert abs(point.slowdown_percent) < 6.0
        benchmark.extra_info[point.scenario] = round(point.slowdown_percent, 2)
    print()
    print(avg_performance.report(points))


def bench_simulator_throughput_hotspot(benchmark):
    """Raw simulator speed under hotspot traffic (cycles simulated per call)."""
    from repro.core.config import waw_wap_config
    from repro.geometry import Coord
    from repro.noc.network import Network
    from repro.workloads.synthetic import HotspotTraffic

    config = waw_wap_config(4)

    def run():
        network = Network(config)
        traffic = HotspotTraffic(config.mesh, hotspot=Coord(0, 0), injection_rate=0.02, seed=9)
        traffic.drive(network, cycles=2_000)
        network.run_until_idle(max_cycles=200_000)
        return network.stats.completed_messages

    completed = benchmark.pedantic(run, rounds=1, iterations=1)
    assert completed > 0
