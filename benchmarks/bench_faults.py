"""Benchmark: fault injection, HARQ recovery and Monte-Carlo throughput.

Two questions, recorded in ``BENCH_faults.json`` at the repository root:

* what does the fault-injection + HARQ machinery cost per backend --
  event-driven vs cycle-accurate wall-clock on the same faulty workload,
  with the differential guard that both deliver bit-identical statistics;
* how many Monte-Carlo trials per second the reliability engine sustains
  on the uniform-traffic workload (the unit of work of the
  ``reliability_sweep`` experiment).
"""

from __future__ import annotations

import json
import os
import time

from repro.api import Scenario
from repro.faults.montecarlo import run_trials
from repro.geometry import Coord
from repro.noc.network import Network

BENCH_JSON = os.path.join(os.path.dirname(__file__), "..", "BENCH_faults.json")

#: Total flit-fault rate of the benchmark workload, split evenly between
#: corruption and loss -- high enough to exercise retransmissions on every
#: run, low enough never to exhaust the retry budget.
FAULT_RATE = 0.005
MESH_SIZE = 8
MC_TRIALS = 10

_RECORD = {}


def _write_record() -> None:
    with open(BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(_RECORD, handle, indent=2)
        handle.write("\n")


def _faulty_scenario(backend: str) -> Scenario:
    return (
        Scenario.mesh(MESH_SIZE)
        .waw_wap()
        .backend(backend)
        .fault_model(
            "independent",
            corrupt_rate=FAULT_RATE / 2,
            loss_rate=FAULT_RATE / 2,
            seed=7,
            ack_timeout=128,
        )
    )


def _drain_hotspot(backend: str):
    """All-to-one hotspot burst under faults; returns (stats, seconds)."""
    network = Network(_faulty_scenario(backend).build())
    for src in network.mesh.nodes():
        if src != Coord(0, 0):
            network.send(src, Coord(0, 0), 4, kind="load")
    start = time.perf_counter()
    network.run_until_idle(max_cycles=1_000_000)
    seconds = time.perf_counter() - start
    stats = (
        network.cycle,
        network.stats.completed_messages,
        network.total_retransmissions(),
        tuple(sorted(network.fault_counts().items())),
        tuple(m.latency for m in network.stats.messages),
    )
    return stats, seconds


def bench_faulty_drain_event_vs_cycle(benchmark):
    """Event-driven vs cycle-accurate on the same faulty hotspot burst."""
    cycle_stats, cycle_seconds = _drain_hotspot("cycle")

    state = {}

    def run_event():
        state["stats"], state["seconds"] = _drain_hotspot("event")

    benchmark.pedantic(run_event, rounds=2, iterations=1)

    # Differential guard: faults or not, both backends must agree exactly.
    assert state["stats"] == cycle_stats

    speedup = cycle_seconds / state["seconds"]
    _RECORD["faulty_drain"] = {
        "benchmark": f"all-to-one 4-flit burst on the {MESH_SIZE}x{MESH_SIZE} "
        f"WaW+WaP mesh at {FAULT_RATE:g} total flit-fault rate",
        "messages": cycle_stats[1],
        "retransmissions": cycle_stats[2],
        "simulated_cycles": cycle_stats[0],
        "cycle_accurate_seconds": round(cycle_seconds, 3),
        "event_driven_seconds": round(state["seconds"], 3),
        "event_speedup": round(speedup, 2),
        "stats_identical": True,
    }
    _write_record()
    benchmark.extra_info.update(_RECORD["faulty_drain"])


def bench_montecarlo_trials_per_second(benchmark):
    """Serial Monte-Carlo throughput of the uniform-traffic workload."""
    config = _faulty_scenario("event").build()

    state = {}

    def run_study():
        start = time.perf_counter()
        state["result"] = run_trials(
            config,
            trials=MC_TRIALS,
            workload="uniform",
            injection_rate=0.05,
            cycles=300,
        )
        state["seconds"] = time.perf_counter() - start

    benchmark.pedantic(run_study, rounds=2, iterations=1)
    result = state["result"]
    assert result.failed_trials == 0
    assert result.distribution is not None and result.distribution.count > 0

    trials_per_second = MC_TRIALS / state["seconds"]
    _RECORD["montecarlo"] = {
        "benchmark": f"{MC_TRIALS} seeded uniform-traffic trials on the "
        f"{MESH_SIZE}x{MESH_SIZE} faulty mesh (event-driven backend, serial)",
        "trials": MC_TRIALS,
        "latency_samples": result.distribution.count,
        "retransmissions": result.total_retransmissions,
        "seconds": round(state["seconds"], 3),
        "trials_per_second": round(trials_per_second, 2),
    }
    _write_record()
    benchmark.extra_info.update(_RECORD["montecarlo"])
