"""Benchmark E1 -- regenerate paper Table I (WaW weights of R(1,1) in a 2x2 mesh)."""

from __future__ import annotations

import pytest

from repro.experiments import table1_weights
from repro.geometry import Coord, Mesh


def bench_table1_paper_example(benchmark):
    """Table I: weighted vs round-robin bandwidth shares at router R(1,1)."""
    rows = benchmark(table1_weights.run)
    shares = {(r.in_port, r.out_port): r for r in rows}
    assert shares[("X+", "PME")].waw == pytest.approx(1 / 3)
    assert shares[("Y+", "PME")].waw == pytest.approx(2 / 3)
    assert shares[("X+", "PME")].round_robin == pytest.approx(0.5)
    benchmark.extra_info["rows"] = len(rows)


def bench_table1_full_chip_weight_tables(benchmark):
    """Weight-table construction for every router of the evaluated 8x8 chip."""
    from repro.core.flows import FlowSet
    from repro.core.weights import WeightTable

    mesh = Mesh(8, 8)

    def build():
        table = WeightTable.from_flow_set(FlowSet.all_to_one(mesh, Coord(0, 0)))
        return sum(
            table.output_round_flits(router, port)
            for router in mesh.nodes()
            for port in mesh.output_ports(router)
        )

    total = benchmark(build)
    assert total > 0
