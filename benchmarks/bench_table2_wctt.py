"""Benchmark E2 -- regenerate paper Table II (WCTT scaling with mesh size)."""

from __future__ import annotations

from repro.experiments import table2_wctt


def bench_table2_full(benchmark):
    """All mesh sizes 2x2..8x8, both designs, 1-flit packets (the full table)."""
    rows = benchmark.pedantic(table2_wctt.run, rounds=1, iterations=1)
    by_mesh = {r.mesh: r for r in rows}

    # Headline claims of the paper:
    # (1) at 8x8 the regular worst case sits orders of magnitude above WaW+WaP;
    eight = by_mesh["8x8"]
    assert eight.regular.maximum > 1_000 * eight.waw_wap.maximum
    # (2) the regular minimum does not grow with the mesh size;
    assert by_mesh["3x3"].regular.minimum == by_mesh["8x8"].regular.minimum
    # (3) the WaW+WaP bounds stay uniform (max within a small factor of min).
    assert eight.waw_wap.maximum < 10 * eight.waw_wap.minimum

    benchmark.extra_info["regular_max_8x8"] = eight.regular.maximum
    benchmark.extra_info["waw_wap_max_8x8"] = eight.waw_wap.maximum
    print()
    print(table2_wctt.report(rows))


def bench_table2_regular_8x8_analysis_only(benchmark):
    """Cost of the regular-mesh analysis alone on the 64-node chip."""
    from repro.core.config import regular_mesh_config
    from repro.core.flows import FlowSet
    from repro.core.wctt import make_wctt_analysis, wctt_summary
    from repro.geometry import Coord

    config = regular_mesh_config(8, max_packet_flits=1)
    flows = FlowSet.all_to_one(config.mesh, Coord(0, 0))

    def run():
        return wctt_summary(make_wctt_analysis(config), flows, packet_flits=1)

    summary = benchmark(run)
    assert summary.maximum > summary.minimum


def bench_table2_waw_wap_8x8_analysis_only(benchmark):
    """Cost of the WaW+WaP analysis alone on the 64-node chip."""
    from repro.core.config import waw_wap_config
    from repro.core.flows import FlowSet
    from repro.core.wctt import wctt_summary
    from repro.core.wctt_weighted import WaWWaPWCTTAnalysis
    from repro.geometry import Coord

    config = waw_wap_config(8, max_packet_flits=1)
    flows = FlowSet.all_to_one(config.mesh, Coord(0, 0))

    def run():
        analysis = WaWWaPWCTTAnalysis.for_memory_traffic(config, include_replies=False)
        return wctt_summary(analysis, flows, packet_flits=1)

    summary = benchmark(run)
    assert summary.maximum < 10 * summary.minimum
