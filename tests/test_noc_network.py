"""Integration tests for the cycle-accurate NoC (:mod:`repro.noc`).

These tests exercise the assembled network: delivery, latency, flit
conservation, wormhole semantics, credit flow control and both arbitration
policies.
"""

from __future__ import annotations

import pytest

from repro.core.config import RouterTiming, regular_mesh_config, waw_wap_config
from repro.core.weights import WeightTable
from repro.geometry import Coord, Port
from repro.noc.network import Network


class TestBasicDelivery:
    def test_single_message_is_delivered(self):
        network = Network(regular_mesh_config(4))
        message = network.send(Coord(3, 3), Coord(0, 0), 4, kind="load")
        network.run_until_idle(max_cycles=2_000)
        assert message.completion_cycle is not None
        assert message.latency is not None and message.latency > 0
        assert network.stats.completed_messages == 1

    def test_zero_load_latency_close_to_analytical_model(self):
        """An uncontended packet's latency tracks hops * hop_latency + flits."""
        config = regular_mesh_config(8)
        network = Network(config)
        src, dst = Coord(7, 7), Coord(0, 0)
        message = network.send(src, dst, 1, kind="probe")
        network.run_until_idle(max_cycles=2_000)
        hops = src.manhattan(dst) + 1
        timing = config.timing
        expected = hops * timing.routing_latency + (hops - 1) * timing.link_latency + 1
        assert message.network_latency is not None
        # NIC injection/ejection add a couple of cycles on top of the model.
        assert expected <= message.network_latency <= expected + 6

    def test_adjacent_nodes_have_short_latency(self):
        network = Network(regular_mesh_config(4))
        message = network.send(Coord(1, 0), Coord(0, 0), 1)
        network.run_until_idle(max_cycles=500)
        assert message.network_latency < 20

    def test_message_to_every_destination_arrives(self):
        config = regular_mesh_config(3)
        network = Network(config)
        source = Coord(1, 1)
        messages = [
            network.send(source, dst, 2, kind="bcast")
            for dst in config.mesh.nodes()
            if dst != source
        ]
        network.run_until_idle(max_cycles=5_000)
        assert all(m.completion_cycle is not None for m in messages)

    def test_flit_conservation(self):
        """Every injected flit is eventually ejected, none duplicated or lost."""
        config = regular_mesh_config(4)
        network = Network(config)
        for src in config.mesh.nodes():
            if src != Coord(0, 0):
                network.send(src, Coord(0, 0), 3)
        network.run_until_idle(max_cycles=10_000)
        assert network.total_injected_flits() == network.total_ejected_flits() == 15 * 3
        assert network.buffered_flits() == 0


class TestWormholeSemantics:
    def test_packets_are_not_interleaved_on_a_link(self):
        """Wormhole: once a packet owns an output, its flits arrive contiguously."""
        config = regular_mesh_config(4, max_packet_flits=4)
        network = Network(config)
        arrival_order = []

        def listener(message, cycle):
            arrival_order.append(message.message_id)

        network.add_listener(Coord(0, 0), listener)
        # Two multi-flit packets from different sources share the final link.
        m1 = network.send(Coord(3, 0), Coord(0, 0), 4)
        m2 = network.send(Coord(0, 3), Coord(0, 0), 4)
        network.run_until_idle(max_cycles=2_000)
        assert len(arrival_order) == 2
        assert {m1.message_id, m2.message_id} == set(arrival_order)

    def test_full_congestion_drains_without_deadlock(self):
        """XY routing on a mesh is deadlock free; the simulator must agree."""
        config = regular_mesh_config(4, buffer_depth=2)
        network = Network(config)
        for _ in range(4):
            for src in config.mesh.nodes():
                if src != Coord(0, 0):
                    network.send(src, Coord(0, 0), 4, kind="hotspot")
        final_cycle = network.run_until_idle(max_cycles=100_000)
        assert network.stats.completed_messages == 60
        assert final_cycle > 0

    def test_backpressure_limits_buffered_flits(self):
        """Credit flow control never overflows any input buffer."""
        config = regular_mesh_config(3, buffer_depth=2)
        network = Network(config)
        for rep in range(10):
            for src in config.mesh.nodes():
                if src != Coord(0, 0):
                    network.send(src, Coord(0, 0), 4)
        # Step manually and check occupancy every cycle (push would raise on
        # overflow, but check explicitly for clarity).
        for _ in range(300):
            network.step()
            for router in network.routers.values():
                for port, buffer in router.buffers.items():
                    assert len(buffer) <= config.buffer_depth
        network.run_until_idle(max_cycles=100_000)


class TestArbitrationPolicies:
    def _saturate(self, config, cycles=600):
        network = Network(config)
        sources = [c for c in config.mesh.nodes() if c != Coord(0, 0)]
        # Keep a steady backlog from every node towards the corner.
        for _ in range(cycles):
            if network.cycle % 3 == 0:
                for src in sources:
                    network.send(src, Coord(0, 0), 1, kind="hotspot")
            network.step()
        network.run_until_idle(max_cycles=200_000)
        return network

    def test_waw_network_uses_weighted_arbiters(self):
        config = waw_wap_config(3)
        network = Network(config)
        router = network.router(Coord(0, 0))
        from repro.core.arbitration import WeightedRoundRobinArbiter

        assert isinstance(router.arbiters[Port.LOCAL], WeightedRoundRobinArbiter)

    def test_regular_network_uses_round_robin(self):
        config = regular_mesh_config(3)
        network = Network(config)
        from repro.core.arbitration import RoundRobinArbiter

        assert isinstance(network.router(Coord(1, 1)).arbiters[Port.LOCAL], RoundRobinArbiter)

    def test_waw_reduces_worst_case_spread_under_hotspot(self):
        """Under saturation towards the MC, WaW narrows the per-flow latency spread."""
        regular = self._saturate(regular_mesh_config(4, buffer_depth=2))
        waw = self._saturate(waw_wap_config(4, buffer_depth=2))

        def spread(network):
            worst_by_flow = []
            for src in network.config.mesh.nodes():
                if src == Coord(0, 0):
                    continue
                lats = network.stats.latencies(source=src, network_only=True)
                if lats:
                    worst_by_flow.append(max(lats))
            return max(worst_by_flow) / max(1, min(worst_by_flow))

        assert spread(waw) <= spread(regular) * 1.5

    def test_explicit_weight_table_is_used(self):
        config = waw_wap_config(3)
        table = WeightTable.from_closed_form(config.mesh)
        network = Network(config, weight_table=table)
        assert network.weight_table is table


class TestNetworkAPI:
    def test_run_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            Network(regular_mesh_config(2)).run(-1)

    def test_run_until_idle_times_out(self):
        network = Network(regular_mesh_config(3))
        network.send(Coord(2, 2), Coord(0, 0), 4)
        with pytest.raises(RuntimeError):
            network.run_until_idle(max_cycles=2)

    def test_is_idle_initially(self):
        assert Network(regular_mesh_config(2)).is_idle()

    def test_custom_timing_is_respected(self):
        fast = Network(
            regular_mesh_config(4, timing=RouterTiming(routing_latency=1, link_latency=0))
        )
        slow = Network(
            regular_mesh_config(4, timing=RouterTiming(routing_latency=5, link_latency=2))
        )
        mf = fast.send(Coord(3, 3), Coord(0, 0), 1)
        ms = slow.send(Coord(3, 3), Coord(0, 0), 1)
        fast.run_until_idle(max_cycles=2_000)
        slow.run_until_idle(max_cycles=2_000)
        assert mf.network_latency < ms.network_latency

    def test_stats_latency_filters(self):
        network = Network(regular_mesh_config(3))
        network.send(Coord(1, 1), Coord(0, 0), 1, kind="load")
        network.send(Coord(2, 2), Coord(0, 0), 2, kind="reply")
        network.run_until_idle(max_cycles=2_000)
        assert len(network.stats.latencies(kind="load")) == 1
        assert len(network.stats.latencies(source=Coord(2, 2))) == 1
        assert network.stats.completed_for_flow(Coord(1, 1), Coord(0, 0)) == 1
        summary = network.stats.latency_summary()
        assert summary.count == 2
        assert summary.minimum <= summary.average <= summary.maximum
