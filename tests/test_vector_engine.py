"""Edge cases and property tests for :mod:`repro.analysis.vector`.

Complements ``tests/test_differential_analysis.py`` (the fixed wide grid)
with degenerate shapes -- single-row/column meshes, single-flow weight
tables with zero-weight ports, unregulated contenders -- plus
hypothesis-driven scalar-vs-vector equivalence over random design points
and the :class:`GridEvaluator` caching contract.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.analysis.vector import (
    GridEvaluator,
    VectorWaWWaPAnalysis,
    evaluate_grid,
    make_vector_analysis,
    vector_supported,
    vector_wctt_map,
    vector_wctt_summary,
)
from repro.api.scenario import Scenario, sweep
from repro.core import (
    FlowSet,
    WeightTable,
    make_wctt_analysis,
    regular_mesh_config,
    waw_wap_config,
    wctt_map,
    wctt_summary,
)
from repro.core.wctt_weighted import WaWWaPWCTTAnalysis
from repro.geometry import Coord, Mesh

CONFIG_FNS = {"regular": regular_mesh_config, "waw_wap": waw_wap_config}


class TestDegenerateShapes:
    @pytest.mark.parametrize("width,height", [(1, 2), (1, 6), (2, 1), (6, 1)])
    @pytest.mark.parametrize("design", ["regular", "waw_wap"])
    def test_single_row_and_column_meshes(self, width, height, design):
        config = CONFIG_FNS[design](width, height)
        scalar = make_wctt_analysis(config)
        vector = make_vector_analysis(config)
        for destination in config.mesh.nodes():
            assert vector_wctt_map(vector, destination) == wctt_map(
                scalar, destination
            ), destination

    def test_single_node_mesh_summary_raises_empty(self):
        config = waw_wap_config(1, 1)
        with pytest.raises(ValueError, match="flow set is empty"):
            vector_wctt_summary(config)

    def test_two_node_mesh(self):
        config = waw_wap_config(2, 1)
        summary = vector_wctt_summary(config)
        flows = FlowSet.all_to_one(config.mesh, config.memory_controller)
        assert summary == wctt_summary(make_wctt_analysis(config), flows)


class TestZeroWeightPorts:
    def test_single_flow_weight_table(self):
        """A one-flow table leaves most ports at weight 0 (clamped to 1)."""
        config = waw_wap_config(3, 3)
        mesh = config.mesh
        flows = FlowSet.from_pairs(mesh, [(Coord(2, 2), Coord(0, 0))])
        table = WeightTable.from_flow_set(flows)
        scalar = WaWWaPWCTTAnalysis(config, table)
        vector = VectorWaWWaPAnalysis(config, table)
        for destination in (Coord(0, 0), Coord(1, 1), Coord(2, 0)):
            assert vector_wctt_map(vector, destination) == wctt_map(scalar, destination)

    def test_single_flow_unregulated(self):
        config = waw_wap_config(3, 3, buffer_depth=6)
        flows = FlowSet.from_pairs(config.mesh, [(Coord(0, 2), Coord(2, 0))])
        table = WeightTable.from_flow_set(flows)
        scalar = WaWWaPWCTTAnalysis(config, table, regulated_contenders=False)
        vector = VectorWaWWaPAnalysis(config, table, regulated_contenders=False)
        for destination in (Coord(2, 0), Coord(0, 0)):
            assert vector_wctt_map(vector, destination) == wctt_map(scalar, destination)


class TestProperties:
    @given(
        width=st.integers(1, 6),
        height=st.integers(1, 6),
        dx=st.integers(0, 5),
        dy=st.integers(0, 5),
        design=st.sampled_from(["regular", "waw_wap"]),
        buffer_depth=st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_design_points_bit_identical(
        self, width, height, dx, dy, design, buffer_depth
    ):
        if dx >= width or dy >= height:
            return
        config = CONFIG_FNS[design](width, height, buffer_depth=buffer_depth)
        destination = Coord(dx, dy)
        scalar = make_wctt_analysis(config)
        vector = make_vector_analysis(config)
        assert vector_wctt_map(vector, destination) == wctt_map(scalar, destination)

    @given(
        width=st.integers(2, 5),
        height=st.integers(2, 5),
        payload=st.integers(1, 12),
        regulated=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_waw_messages_both_directions(
        self, width, height, payload, regulated
    ):
        config = waw_wap_config(width, height)
        scalar = WaWWaPWCTTAnalysis(config, regulated_contenders=regulated)
        vector = VectorWaWWaPAnalysis(config, regulated_contenders=regulated)
        mc = config.memory_controller
        to_grid = vector.message_grid_to(mc, payload_flits=payload)
        from_grid = vector.message_grid_from(mc, payload_flits=payload)
        for node in config.mesh.nodes():
            if node == mc:
                continue
            assert int(to_grid[node.y, node.x]) == scalar.wctt_message(
                node, mc, payload_flits=payload
            )
            assert int(from_grid[node.y, node.x]) == scalar.wctt_message(
                mc, node, payload_flits=payload
            )

    def test_waw_packet_size_validation_matches_scalar(self):
        config = waw_wap_config(3, 3)
        vector = make_vector_analysis(config)
        too_big = config.min_packet_flits + 1
        with pytest.raises(ValueError, match="minimum size"):
            vector.wctt_grid_to(Coord(0, 0), packet_flits=too_big)


class TestGridEvaluator:
    def test_packet_size_variants_hit_the_cache(self):
        evaluator = GridEvaluator()
        scenario = Scenario.mesh(4).regular()
        first = evaluator.summary(scenario, packet_flits=1)
        second = evaluator.summary(scenario, packet_flits=3)
        assert evaluator.misses == 1
        assert evaluator.hits == 1
        # And both variants still match a fresh scalar evaluation.
        config = scenario.build()
        flows = FlowSet.all_to_one(config.mesh, config.memory_controller)
        analysis = make_wctt_analysis(config)
        assert first == wctt_summary(analysis, flows, packet_flits=1)
        assert second == wctt_summary(analysis, flows, packet_flits=3)

    def test_waw_bound_is_packet_size_independent(self):
        evaluator = GridEvaluator()
        scenario = Scenario.mesh(3).waw_wap()
        one = evaluator.summary(scenario, packet_flits=1)
        also_one = evaluator.summary(scenario, packet_flits=1)
        assert one == also_one
        assert (evaluator.hits, evaluator.misses) == (1, 1)

    def test_waw_oversized_packet_rejected_from_cache_path(self):
        evaluator = GridEvaluator()
        scenario = Scenario.mesh(3).waw_wap()
        evaluator.summary(scenario)
        config = scenario.build()
        with pytest.raises(ValueError, match="minimum size"):
            evaluator.summary(scenario, packet_flits=config.min_packet_flits + 1)

    def test_dict_form_scenarios_accepted(self):
        evaluator = GridEvaluator()
        scenario = Scenario.mesh(3).waw_wap()
        assert evaluator.summary(scenario.to_dict()) == evaluator.summary(scenario)


class TestEvaluateGrid:
    def test_mixed_grid_falls_back_and_stays_complete(self):
        grid = [
            Scenario.mesh(3).waw_wap(),
            Scenario.mesh(3).waw_wap().topology("torus"),
            Scenario.mesh(3).regular().topology("mesh", routing="yx"),
        ]
        assert vector_supported(grid[1].build()) is not None
        summaries = evaluate_grid(grid)
        assert len(summaries) == 3
        for scenario, summary in zip(grid, summaries):
            config = scenario.build()
            flows = FlowSet.all_to_one(config.mesh, config.memory_controller)
            assert summary == wctt_summary(make_wctt_analysis(config), flows)

    def test_per_scenario_packet_sizes(self):
        grid = sweep(Scenario.mesh(3), design=("regular", "regular"))
        summaries = evaluate_grid(grid, packet_flits=[1, 4])
        config = grid[0].build()
        flows = FlowSet.all_to_one(config.mesh, config.memory_controller)
        analysis = make_wctt_analysis(config)
        assert summaries[0] == wctt_summary(analysis, flows, packet_flits=1)
        assert summaries[1] == wctt_summary(analysis, flows, packet_flits=4)

    def test_size_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="packet sizes"):
            evaluate_grid([Scenario.mesh(3)], packet_flits=[1, 2])
