"""Tests of the fluent Scenario builder and the sweep() grid expansion."""

from __future__ import annotations

import pytest

from repro.api import Scenario, ScenarioError, sweep
from repro.core import regular_mesh_config, waw_wap_config
from repro.core.config import ArbitrationPolicy, PacketizationPolicy
from repro.geometry import Coord


class TestScenarioBuild:
    def test_regular_matches_legacy_constructor(self):
        built = Scenario.mesh(8).regular().max_packet_flits(4).build()
        assert built == regular_mesh_config(8, max_packet_flits=4)

    def test_waw_wap_matches_legacy_constructor(self):
        built = Scenario.mesh(4).waw_wap().max_packet_flits(1).build()
        assert built == waw_wap_config(4, max_packet_flits=1)

    def test_defaults_match_regular_mesh(self):
        assert Scenario.mesh(4).build() == regular_mesh_config(4)

    def test_rectangular_mesh(self):
        config = Scenario.mesh(4, 2).build()
        assert config.mesh.width == 4 and config.mesh.height == 2

    def test_all_knobs(self):
        config = (
            Scenario.mesh(6)
            .waw_wap()
            .max_packet_flits(8)
            .min_packet_flits(2)
            .buffer_depth(2)
            .memory_controller(5, 5)
            .timing(routing_latency=2, link_latency=2)
            .build()
        )
        assert config.max_packet_flits == 8
        assert config.min_packet_flits == 2
        assert config.buffer_depth == 2
        assert config.memory_controller == Coord(5, 5)
        assert config.timing.routing_latency == 2
        assert config.timing.link_latency == 2
        assert config.timing.flit_cycle == 1  # untouched default

    def test_ablation_designs(self):
        waw = Scenario.mesh(4).waw_only().build()
        assert waw.arbitration is ArbitrationPolicy.WEIGHTED_ROUND_ROBIN
        assert waw.packetization is PacketizationPolicy.SINGLE_PACKET
        wap = Scenario.mesh(4).wap_only().build()
        assert wap.arbitration is ArbitrationPolicy.ROUND_ROBIN
        assert wap.packetization is PacketizationPolicy.MINIMUM_SIZE_PACKETS

    def test_builder_is_immutable(self):
        base = Scenario.mesh(4)
        derived = base.waw_wap().max_packet_flits(8)
        assert base.build() == regular_mesh_config(4)
        assert derived.build() != base.build()

    def test_label_is_deterministic(self):
        label = Scenario.mesh(8).waw_wap().max_packet_flits(1).label()
        assert label == "waw_wap-8x8-L1"


class TestScenarioValidation:
    def test_rejects_zero_mesh(self):
        with pytest.raises(ScenarioError):
            Scenario.mesh(0)

    def test_rejects_non_integer_knob(self):
        with pytest.raises(ScenarioError):
            Scenario.mesh(4).max_packet_flits("big")

    def test_rejects_zero_packet_flits(self):
        with pytest.raises(ScenarioError):
            Scenario.mesh(4).max_packet_flits(0)

    def test_rejects_unknown_design(self):
        with pytest.raises(ScenarioError, match="unknown design"):
            Scenario.mesh(4).design("turbo")

    def test_rejects_min_above_max_at_build(self):
        scenario = Scenario.mesh(4).max_packet_flits(2).min_packet_flits(4)
        with pytest.raises(ScenarioError, match="min_packet_flits"):
            scenario.build()

    def test_rejects_memory_controller_outside_mesh(self):
        with pytest.raises(ScenarioError):
            Scenario.mesh(2).memory_controller(5, 5).build()

    def test_rejects_invalid_timing(self):
        with pytest.raises(ScenarioError):
            Scenario.mesh(4).timing(routing_latency=0)

    def test_scenario_error_is_value_error(self):
        assert issubclass(ScenarioError, ValueError)


class TestSweep:
    def test_cartesian_product_order(self):
        points = sweep(mesh=(2, 3), design=("regular", "waw_wap"))
        labels = [p.label() for p in points]
        assert labels == [
            "regular-2x2",
            "waw_wap-2x2",
            "regular-3x3",
            "waw_wap-3x3",
        ]

    def test_base_scenario_is_preserved(self):
        base = Scenario.mesh(8).waw_wap().buffer_depth(2)
        points = sweep(base, max_packet_flits=(1, 4))
        assert all(p.build().buffer_depth == 2 for p in points)
        assert [p.build().max_packet_flits for p in points] == [1, 4]

    def test_scalar_axis_values_allowed(self):
        points = sweep(mesh=4, design="waw_wap")
        assert len(points) == 1
        assert points[0].build() == waw_wap_config(4)

    def test_mesh_axis_tuple_is_two_sizes_list_wraps_rectangles(self):
        assert [p.label() for p in sweep(mesh=(8, 4))] == ["regular-8x8", "regular-4x4"]
        assert [p.label() for p in sweep(mesh=[(8, 4)])] == ["regular-8x4"]

    def test_built_configs_match_legacy_constructors(self):
        points = sweep(mesh=(2, 4), max_packet_flits=(1, 8))
        configs = [p.build() for p in points]
        assert configs[0] == regular_mesh_config(2, max_packet_flits=1)
        assert configs[-1] == regular_mesh_config(4, max_packet_flits=8)

    def test_rejects_empty_grid(self):
        with pytest.raises(ScenarioError, match="at least one axis"):
            sweep()

    def test_rejects_unknown_axis(self):
        with pytest.raises(ScenarioError, match="unknown sweep axis"):
            sweep(mesh=(2,), frequency=(1, 2))

    def test_rejects_empty_axis(self):
        with pytest.raises(ScenarioError, match="no values"):
            sweep(mesh=())

    def test_rejects_missing_mesh_without_base(self):
        with pytest.raises(ScenarioError, match="mesh"):
            sweep(max_packet_flits=(1, 4))
