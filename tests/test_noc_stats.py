"""Tests for the traffic statistics collector (:mod:`repro.noc.stats`)."""

from __future__ import annotations

import pytest

from repro.geometry import Coord
from repro.noc.flit import Message
from repro.noc.stats import LatencySummary, NetworkStats


def completed_message(src, dst, created, injected, completed, kind="data"):
    message = Message(source=src, destination=dst, payload_flits=1, kind=kind)
    message.created_cycle = created
    message.injection_cycle = injected
    message.completion_cycle = completed
    return message


class TestLatencySummary:
    def test_from_values(self):
        summary = LatencySummary.from_values([4, 10, 7])
        assert summary.count == 3
        assert summary.minimum == 4
        assert summary.maximum == 10
        assert summary.average == pytest.approx(7.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LatencySummary.from_values([])


class TestNetworkStats:
    def setup_method(self):
        self.stats = NetworkStats()
        self.m1 = completed_message(Coord(1, 0), Coord(0, 0), 0, 2, 12, kind="load")
        self.m2 = completed_message(Coord(2, 2), Coord(0, 0), 5, 6, 45, kind="load")
        self.m3 = completed_message(Coord(0, 0), Coord(2, 2), 10, 11, 30, kind="reply")
        for message in (self.m1, self.m2, self.m3):
            self.stats.record_send(message)
            self.stats.record_message(message, message.completion_cycle)

    def test_counters(self):
        assert self.stats.sent_messages == 3
        assert self.stats.completed_messages == 3

    def test_latency_filters_by_kind(self):
        assert sorted(self.stats.latencies(kind="load")) == [12, 40]
        assert self.stats.latencies(kind="reply") == [20]

    def test_latency_filters_by_endpoints(self):
        assert self.stats.latencies(source=Coord(2, 2)) == [40]
        assert self.stats.latencies(destination=Coord(2, 2)) == [20]

    def test_network_only_latency(self):
        assert sorted(self.stats.latencies(kind="load", network_only=True)) == [10, 39]

    def test_worst_latency_and_summary(self):
        assert self.stats.worst_latency() == 40
        summary = self.stats.latency_summary(kind="load")
        assert summary.count == 2 and summary.maximum == 40

    def test_per_flow_counts(self):
        assert self.stats.completed_for_flow(Coord(1, 0), Coord(0, 0)) == 1
        assert self.stats.completed_for_flow(Coord(3, 3), Coord(0, 0)) == 0

    def test_throughput(self):
        assert self.stats.throughput(100) == pytest.approx(0.03)
        with pytest.raises(ValueError):
            self.stats.throughput(0)

    def test_in_flight_messages_are_not_counted(self):
        pending = Message(source=Coord(1, 1), destination=Coord(0, 0), payload_flits=1)
        self.stats.record_send(pending)
        assert self.stats.sent_messages == 4
        assert self.stats.completed_messages == 3
        # Its latency is undefined, so it must not appear in the samples.
        assert len(self.stats.latencies()) == 3
