"""Tests for the UBD tables (:mod:`repro.core.ubd`)."""

from __future__ import annotations

import pytest

from repro.core.config import regular_mesh_config, waw_wap_config
from repro.core.ubd import MemoryTiming, UBDTable
from repro.core.wctt import make_wctt_analysis
from repro.core.wctt_weighted import WaWWaPWCTTAnalysis
from repro.geometry import Coord


class TestMemoryTiming:
    def test_default_and_validation(self):
        assert MemoryTiming().service_latency == 30
        with pytest.raises(ValueError):
            MemoryTiming(service_latency=-1)


class TestUBDTableRegular:
    def setup_method(self):
        self.config = regular_mesh_config(4, max_packet_flits=4)
        self.table = UBDTable(self.config)

    def test_covers_every_core_but_the_memory_controller(self):
        assert len(self.table) == 15
        assert Coord(0, 0) not in list(self.table.cores())

    def test_memory_controller_entry_rejected(self):
        with pytest.raises(ValueError):
            self.table.entry(Coord(0, 0))

    def test_load_ubd_composition(self):
        """UBD = request WCTT + memory service + reply WCTT."""
        analysis = make_wctt_analysis(self.config)
        core = Coord(2, 3)
        entry = self.table.entry(core)
        expected_request = analysis.wctt_message(core, Coord(0, 0), payload_flits=1)
        expected_reply = analysis.wctt_message(Coord(0, 0), core, payload_flits=4)
        assert entry.request_wctt == expected_request
        assert entry.reply_wctt == expected_reply
        assert entry.load_ubd == expected_request + 30 + expected_reply

    def test_eviction_ubd_composition(self):
        analysis = make_wctt_analysis(self.config)
        core = Coord(3, 1)
        entry = self.table.entry(core)
        expected_evict = analysis.wctt_message(core, Coord(0, 0), payload_flits=4)
        expected_ack = analysis.wctt_message(Coord(0, 0), core, payload_flits=1)
        assert entry.eviction_ubd == expected_evict + 30 + expected_ack

    def test_far_cores_have_larger_ubd(self):
        assert self.table.load_ubd(Coord(3, 3)) > self.table.load_ubd(Coord(1, 0))
        assert self.table.max_load_ubd() >= self.table.min_load_ubd()

    def test_custom_memory_latency_shifts_ubd(self):
        slow = UBDTable(self.config, memory=MemoryTiming(service_latency=100))
        core = Coord(2, 2)
        assert slow.load_ubd(core) == self.table.load_ubd(core) + 70


class TestUBDTableWaW:
    def test_default_analysis_uses_memory_traffic_weights(self):
        config = waw_wap_config(4, max_packet_flits=4)
        table = UBDTable(config)
        assert isinstance(table.analysis, WaWWaPWCTTAnalysis)
        # Memory-traffic weights: the ejection round of the MC covers all flows.
        assert table.analysis.weights.output_round_flits(Coord(0, 0), "PME") or True
        assert table.max_load_ubd() > 0

    def test_waw_narrows_the_ubd_spread(self):
        """The proposal makes guarantees uniform: max/min UBD ratio collapses."""
        regular = UBDTable(regular_mesh_config(8, max_packet_flits=4))
        waw = UBDTable(waw_wap_config(8, max_packet_flits=4))
        regular_spread = regular.max_load_ubd() / regular.min_load_ubd()
        waw_spread = waw.max_load_ubd() / waw.min_load_ubd()
        assert waw_spread < regular_spread / 10

    def test_waw_far_core_ubd_is_orders_of_magnitude_lower(self):
        regular = UBDTable(regular_mesh_config(8, max_packet_flits=4))
        waw = UBDTable(waw_wap_config(8, max_packet_flits=4))
        far = Coord(7, 7)
        assert waw.load_ubd(far) * 100 < regular.load_ubd(far)

    def test_waw_near_core_ubd_slightly_higher(self):
        """Cores adjacent to the MC pay a small price (paper Table III > 1)."""
        regular = UBDTable(regular_mesh_config(8, max_packet_flits=4))
        waw = UBDTable(waw_wap_config(8, max_packet_flits=4))
        near = Coord(1, 0)
        assert waw.load_ubd(near) > regular.load_ubd(near)
        assert waw.load_ubd(near) < 10 * regular.load_ubd(near)

    def test_explicit_analysis_override(self):
        config = waw_wap_config(4)
        analysis = WaWWaPWCTTAnalysis(config)
        table = UBDTable(config, analysis=analysis)
        assert table.analysis is analysis
