"""Tests of the Monte-Carlo reliability engine and its statistics."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Scenario
from repro.faults.montecarlo import (
    LatencyDistribution,
    MonteCarloResult,
    TrialOutcome,
    available_workloads,
    percentile,
    run_trials,
)


# ----------------------------------------------------------------------
# Percentiles
# ----------------------------------------------------------------------
class TestPercentile:
    def test_nearest_rank_on_known_data(self):
        data = list(range(1, 101))  # 1..100
        assert percentile(data, 50) == 50
        assert percentile(data, 90) == 90
        assert percentile(data, 99) == 99
        assert percentile(data, 99.9) == 100
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 100

    def test_always_returns_an_observed_value(self):
        data = [3, 1, 4, 1, 5, 9, 2, 6]
        for q in (0, 10, 33.3, 50, 75, 99, 100):
            assert percentile(data, q) in data

    def test_single_sample(self):
        assert percentile([7], 99.9) == 7

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=50),
           st.floats(0, 100, allow_nan=False))
    def test_monotone_in_q(self, data, q):
        assert percentile(data, q) <= percentile(data, 100)
        assert percentile(data, 0) <= percentile(data, q)


# ----------------------------------------------------------------------
# Distribution statistics
# ----------------------------------------------------------------------
class TestLatencyDistribution:
    def test_summary_of_known_samples(self):
        dist = LatencyDistribution.from_samples([10, 20, 30, 40])
        assert dist.count == 4
        assert dist.mean == pytest.approx(25.0)
        assert dist.minimum == 10 and dist.maximum == 40
        assert dist.p50 == 20
        assert dist.ci95 == pytest.approx(1.96 * dist.std / 2.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LatencyDistribution.from_samples([])

    @settings(max_examples=30)
    @given(
        st.lists(st.integers(1, 10_000), min_size=2, max_size=40).filter(
            lambda xs: len(set(xs)) > 1
        ),
        st.integers(2, 6),
    )
    def test_ci_width_shrinks_as_one_over_sqrt_n(self, samples, k):
        """Duplicating the sample set k times shrinks ci95 by exactly sqrt(k).

        ``ci95`` uses the *population* standard deviation, which is invariant
        under duplication, so the k-fold sample gives ci95 / sqrt(k) exactly
        -- the 1/sqrt(N) convergence a Monte-Carlo mean estimate must show.
        """
        base = LatencyDistribution.from_samples(samples)
        bigger = LatencyDistribution.from_samples(samples * k)
        assert bigger.std == pytest.approx(base.std)
        assert bigger.ci95 == pytest.approx(base.ci95 / math.sqrt(k))


# ----------------------------------------------------------------------
# Trial engine
# ----------------------------------------------------------------------
def _faulty_config(**overrides):
    model = {
        "kind": "independent",
        "corrupt_rate": 0.01,
        "loss_rate": 0.005,
        "ack_timeout": 128,
    }
    model.update(overrides)
    return Scenario.mesh(3).waw_wap().fault_model(model).build()


class TestRunTrials:
    def test_workload_registry(self):
        assert available_workloads() == ["eembc", "uniform"]
        with pytest.raises(ValueError, match="unknown Monte-Carlo workload"):
            run_trials(_faulty_config(), trials=1, workload="bogus")
        with pytest.raises(ValueError, match="trials"):
            run_trials(_faulty_config(), trials=0)

    def test_same_base_seed_reproduces_exactly(self):
        kwargs = dict(trials=3, base_seed=5, workload="uniform",
                      injection_rate=0.05, cycles=120)
        first = run_trials(_faulty_config(), **kwargs)
        second = run_trials(_faulty_config(), **kwargs)
        assert first.outcomes == second.outcomes
        assert first.distribution == second.distribution
        assert first.fault_counts == second.fault_counts

    def test_different_base_seed_gives_different_faults(self):
        kwargs = dict(trials=2, workload="uniform", injection_rate=0.05, cycles=120)
        a = run_trials(_faulty_config(), base_seed=1, **kwargs)
        b = run_trials(_faulty_config(), base_seed=100, **kwargs)
        assert a.fault_counts != b.fault_counts or a.distribution != b.distribution

    def test_trials_use_distinct_seeds(self):
        result = run_trials(_faulty_config(), trials=4, base_seed=9,
                            workload="uniform", cycles=80)
        assert [o.seed for o in result.outcomes] == [9, 10, 11, 12]

    def test_parallel_equals_serial(self):
        kwargs = dict(trials=4, base_seed=2, workload="uniform",
                      injection_rate=0.05, cycles=100)
        serial = run_trials(_faulty_config(), jobs=1, **kwargs)
        parallel = run_trials(_faulty_config(), jobs=4, **kwargs)
        assert serial.outcomes == parallel.outcomes
        assert serial.distribution == parallel.distribution

    def test_null_model_trials_are_identical(self):
        config = Scenario.mesh(3).waw_wap().build()
        result = run_trials(config, trials=3, workload="uniform", cycles=80)
        assert result.failed_trials == 0
        assert result.total_retransmissions == 0
        assert len(set(result.makespans)) == 1
        latencies = {o.latencies for o in result.outcomes}
        assert len(latencies) == 1

    def test_exhausted_retries_captured_as_failed_trial(self):
        config = _faulty_config(loss_rate=1.0, corrupt_rate=0.0,
                                ack_timeout=16, max_retries=1)
        result = run_trials(config, trials=2, workload="uniform",
                            injection_rate=0.05, cycles=40)
        assert result.failed_trials == 2
        assert result.failure_rate == 1.0
        assert result.distribution is None
        for outcome in result.outcomes:
            assert outcome.failed
            assert "abandoned after 2 attempts" in outcome.failure
            assert "message" in outcome.failure and "seq" in outcome.failure
        # A failed study still serialises cleanly.
        assert result.as_dict()["failure_rate"] == 1.0

    def test_eembc_workload_produces_reply_samples(self):
        result = run_trials(_faulty_config(), trials=2, workload="eembc",
                            scale=0.002, background=2)
        assert result.failed_trials == 0
        assert result.distribution is not None
        assert result.distribution.count > 0
        assert result.fault_counts["transmitted"] > 0
        assert all(o.delivered_messages > 0 for o in result.outcomes)


# ----------------------------------------------------------------------
# The registered experiment
# ----------------------------------------------------------------------
class TestReliabilitySweepExperiment:
    @pytest.fixture(scope="class")
    def rows(self):
        from repro.experiments import reliability_sweep

        return reliability_sweep.run(
            mesh_size=3, fault_rates=(0.0, 0.02), trials=3,
            scale=0.004, background=2,
        )

    def test_row_per_fault_rate(self, rows):
        assert [r.fault_rate for r in rows] == [0.0, 0.02]
        assert all(r.topology == "mesh" and r.mesh == "3x3" for r in rows)

    def test_zero_rate_tail_within_analytical_bound(self, rows):
        clean = rows[0]
        assert clean.trials == 1
        assert clean.retransmissions == 0
        assert clean.p99 <= clean.wctt_bound
        assert clean.p99_over_bound <= 1.0

    def test_faulty_rate_degrades_the_tail(self, rows):
        clean, faulty = rows
        assert faulty.retransmissions > 0
        assert faulty.p999 >= clean.p999
        assert faulty.ci95 >= 0.0

    def test_rows_serialise_for_experiment_result(self, rows):
        data = rows[1].as_dict()
        assert data["fault rate"] == 0.02
        assert "p99/bound" in data and "WCTT bound" in data

    def test_report_mentions_bound_crossings(self, rows):
        from repro.experiments import reliability_sweep

        text = reliability_sweep.report(rows)
        assert "WCTT" in text


class TestAsDictRounding:
    def test_every_statistic_is_a_rounded_float(self):
        """One rounding policy: three digits, always a float (int samples
        used to leak through min/max/percentiles unrounded)."""
        dist = LatencyDistribution.from_samples([10, 20, 30, 41])
        data = dist.as_dict()
        assert data["count"] == 4
        for key, value in data.items():
            if key == "count":
                continue
            assert isinstance(value, float), key
            assert value == round(value, 3), key
        assert data["min"] == 10.0
        assert data["max"] == 41.0
        assert data["mean"] == 25.25

    def test_irrational_statistics_round_to_three_digits(self):
        dist = LatencyDistribution.from_samples([1, 2, 4])
        data = dist.as_dict()
        assert data["mean"] == round(7 / 3, 3)
        assert data["std"] == round(dist.std, 3)
        assert data["ci95"] == round(dist.ci95, 3)
