"""Tests for the design-point configuration objects (:mod:`repro.core.config`)."""

from __future__ import annotations

import pytest

from repro.core.config import (
    ArbitrationPolicy,
    MessageConfig,
    NoCConfig,
    PacketizationPolicy,
    RouterTiming,
    regular_mesh_config,
    waw_wap_config,
)
from repro.geometry import Coord, Mesh


class TestRouterTiming:
    def test_defaults(self):
        timing = RouterTiming()
        assert timing.routing_latency == 3
        assert timing.link_latency == 1
        assert timing.hop_latency == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            RouterTiming(routing_latency=0)
        with pytest.raises(ValueError):
            RouterTiming(link_latency=-1)
        with pytest.raises(ValueError):
            RouterTiming(flit_cycle=0)


class TestMessageConfig:
    def test_paper_defaults(self):
        msgs = MessageConfig()
        assert msgs.request_flits == 1
        assert msgs.reply_flits == 4
        assert msgs.eviction_flits == 4
        assert msgs.eviction_ack_flits == 1
        assert msgs.link_width_bits == 132

    def test_cache_line_fits_four_flits(self):
        """512 payload bits + 16 control bits over 132-bit links -> 4 flits."""
        msgs = MessageConfig()
        assert msgs.flits_for_payload_bits(512) == 4

    def test_wap_packets_for_cache_line(self):
        """512 payload bits with per-flit control -> 5 one-flit packets (25 %)."""
        msgs = MessageConfig()
        assert msgs.wap_packets_for_payload_bits(512) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            MessageConfig(request_flits=0)
        with pytest.raises(ValueError):
            MessageConfig(link_width_bits=16, control_bits=16)
        with pytest.raises(ValueError):
            MessageConfig().flits_for_payload_bits(-1)
        with pytest.raises(ValueError):
            MessageConfig().wap_packets_for_payload_bits(-5)


class TestNoCConfig:
    def test_regular_factory(self):
        config = regular_mesh_config(8, max_packet_flits=4)
        assert config.mesh == Mesh(8, 8)
        assert config.arbitration is ArbitrationPolicy.ROUND_ROBIN
        assert config.packetization is PacketizationPolicy.SINGLE_PACKET
        assert not config.is_waw and not config.is_wap and not config.is_waw_wap
        assert config.memory_controller == Coord(0, 0)

    def test_waw_wap_factory(self):
        config = waw_wap_config(6, max_packet_flits=8)
        assert config.is_waw and config.is_wap and config.is_waw_wap
        assert config.arbitration_slot_flits == 1

    def test_rectangular_mesh(self):
        config = regular_mesh_config(4, 2)
        assert config.mesh.width == 4 and config.mesh.height == 2

    def test_arbitration_slot_reflects_packetization(self):
        assert regular_mesh_config(4, max_packet_flits=8).arbitration_slot_flits == 8
        assert waw_wap_config(4, max_packet_flits=8).arbitration_slot_flits == 1

    def test_validation_rules(self):
        mesh = Mesh(4, 4)
        with pytest.raises(ValueError):
            NoCConfig(mesh=mesh, max_packet_flits=0)
        with pytest.raises(ValueError):
            NoCConfig(mesh=mesh, min_packet_flits=0)
        with pytest.raises(ValueError):
            NoCConfig(mesh=mesh, max_packet_flits=2, min_packet_flits=4)
        with pytest.raises(ValueError):
            NoCConfig(mesh=mesh, buffer_depth=0)
        with pytest.raises(ValueError):
            NoCConfig(mesh=mesh, memory_controller=Coord(9, 9))

    def test_with_mesh_and_with_max_packet_flits(self):
        config = regular_mesh_config(4)
        bigger = config.with_mesh(Mesh(8, 8))
        assert bigger.mesh == Mesh(8, 8)
        assert bigger.arbitration is config.arbitration
        longer = config.with_max_packet_flits(8)
        assert longer.max_packet_flits == 8
        # The original is unchanged (frozen dataclass semantics).
        assert config.max_packet_flits == 4

    def test_describe_mentions_design_and_mesh(self):
        text = waw_wap_config(8).describe()
        assert "WaW+WaP" in text and "8x8" in text
        assert "regular" in regular_mesh_config(4).describe()

    def test_custom_memory_controller_location(self):
        config = regular_mesh_config(4, memory_controller=Coord(3, 3))
        assert config.memory_controller == Coord(3, 3)
