"""Tests of the batch engine (caching, fan-out, export) and the new CLI."""

from __future__ import annotations

import csv
import io
import json
import os

import pytest

from repro.api import BatchEngine, BatchJob, config_hash
from repro.experiments.runner import main, run_experiment


class TestConfigHash:
    def test_deterministic_and_param_sensitive(self):
        job = BatchJob("table2", {"sizes": (2, 3)})
        assert config_hash(job) == config_hash(BatchJob("table2", {"sizes": (2, 3)}))
        assert config_hash(job) != config_hash(BatchJob("table2", {"sizes": (2, 4)}))
        assert config_hash(job) != config_hash(BatchJob("table1", {"sizes": (2, 3)}))
        assert config_hash(job) != config_hash(BatchJob("table2", {"sizes": (2, 3)}, quick=True))

    def test_handles_non_json_values(self):
        from repro.api import Scenario

        config = Scenario.mesh(2).waw_wap().build()
        digest = config_hash(BatchJob("area", {"config": config}))
        assert digest == config_hash(BatchJob("area", {"config": config}))


class TestEngineCaching:
    def test_memory_cache_hit(self):
        engine = BatchEngine()
        first = engine.run(BatchJob("table1"))
        second = engine.run(BatchJob("table1"))
        assert not first.cached
        assert second.cached
        assert second.result is first.result

    def test_disk_cache_survives_engine_restart(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = BatchEngine(cache_dir=cache_dir).run(BatchJob("table2", {"sizes": (2,)}))
        assert not first.cached
        assert os.path.exists(os.path.join(cache_dir, f"{first.config_hash}.json"))

        second = BatchEngine(cache_dir=cache_dir).run(BatchJob("table2", {"sizes": (2,)}))
        assert second.cached
        assert second.result.from_cache
        assert second.result.rows() == first.result.to_dict()["rows"]

    def test_no_cache_recomputes(self):
        engine = BatchEngine(use_cache=False)
        engine.run(BatchJob("table1"))
        assert not engine.run(BatchJob("table1")).cached

    def test_duplicate_jobs_in_one_batch_computed_once(self):
        engine = BatchEngine(use_cache=False)
        results = engine.run_many([BatchJob("table1"), BatchJob("table1")])
        assert [r.cached for r in results] == [False, True]

    def test_cached_results_enumerates_disk_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        engine = BatchEngine(cache_dir=cache_dir)
        engine.run_many([BatchJob("table1"), BatchJob("table2", {"sizes": (2,)})])
        listed = BatchEngine(cache_dir=cache_dir).cached_results()
        assert {r.job.experiment for r in listed} == {"table1", "table2"}


class TestEngineParallel:
    def test_parallel_jobs_match_serial(self):
        jobs = [BatchJob("table2", {"sizes": (size,)}) for size in (2, 3, 4)]
        serial = BatchEngine(jobs=1, use_cache=False).run_many(jobs)
        parallel = BatchEngine(jobs=3, use_cache=False).run_many(jobs)
        assert [r.result.to_dict()["rows"] for r in serial] == [
            r.result.to_dict()["rows"] for r in parallel
        ]

    def test_sweep_expands_axes_through_registry(self):
        engine = BatchEngine(use_cache=False)
        results = engine.sweep("table2", size=(2, 3))
        assert [r.job.params for r in results] == [{"sizes": (2,)}, {"sizes": (3,)}]
        assert all(len(r.result.rows()) == 1 for r in results)

    def test_sweep_rejects_unsupported_axis(self):
        with pytest.raises(ValueError, match="cannot sweep axis"):
            BatchEngine().sweep("table1", packet_flits=(1, 4))

    def test_sweep_rejects_empty_axis(self):
        with pytest.raises(ValueError, match="no values"):
            BatchEngine().sweep("table2", size=())


class TestEngineExport:
    @pytest.fixture(scope="class")
    def results(self):
        return BatchEngine().sweep("table2", size=(2, 3))

    def test_json_export(self, results):
        data = json.loads(BatchEngine.to_json(results))
        assert len(data) == 2
        for entry in data:
            assert entry["experiment"] == "table2"
            assert entry["config_hash"]
            assert entry["rows"]

    def test_csv_export(self, results):
        parsed = list(csv.reader(io.StringIO(BatchEngine.to_csv(results))))
        header, rows = parsed[0], parsed[1:]
        assert header[:2] == ["experiment", "config_hash"]
        assert "NxM" in header
        assert len(rows) == 2


class TestCLI:
    def test_list_subcommand(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "validation" in out

    def test_list_json(self, capsys):
        assert main(["list", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert {entry["name"] for entry in data} >= {"table1", "table2"}

    def test_run_emits_valid_json_on_stdout(self, capsys):
        assert main(["run", "table2", "--quick", "--json", "-"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data[0]["experiment"] == "table2"
        assert data[0]["rows"]

    def test_run_text_report_unchanged(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "completed in" in out

    def test_run_rejects_unknown_name_with_suggestion(self, capsys):
        assert main(["run", "tabel2"]) == 2
        err = capsys.readouterr().err
        assert "did you mean" in err and "table2" in err

    def test_sweep_subcommand_with_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = ["sweep", "--sizes", "2,3", "--jobs", "2", "--cache-dir", cache_dir]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "config hash" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "True" in second  # every design point now comes from the cache

    def test_sweep_requires_an_axis(self, capsys):
        assert main(["sweep"]) == 2
        assert "at least one axis" in capsys.readouterr().err

    def test_export_subcommand(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["run", "table1", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["export", "--cache-dir", cache_dir, "--json", "-"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data[0]["experiment"] == "table1"

    def test_export_empty_cache_fails(self, tmp_path, capsys):
        assert main(["export", "--cache-dir", str(tmp_path / "empty")]) == 1

    def test_legacy_list_flag(self, capsys):
        assert main(["--list"]) == 0
        assert "table2" in capsys.readouterr().out

    def test_list_flag_does_not_hijack_subcommands(self, capsys):
        # 'run ... --list' must not be rewritten to a bare 'list'.
        with pytest.raises(SystemExit):
            main(["run", "table1", "--list"])
        assert "unrecognized arguments" in capsys.readouterr().err

    def test_jobs_must_be_positive(self, capsys):
        assert main(["run", "table1", "--jobs", "0"]) == 2
        assert "jobs" in capsys.readouterr().err

    def test_cache_hit_rows_keep_their_shape(self, tmp_path):
        # Disk-cache hits rebuild payloads as row dicts; rows() is the
        # shape-stable accessor either way.
        cache_dir = str(tmp_path / "cache")
        fresh = BatchEngine(cache_dir=cache_dir).run(BatchJob("table2", {"sizes": (2,)}))
        hit = BatchEngine(cache_dir=cache_dir).run(BatchJob("table2", {"sizes": (2,)}))
        assert fresh.result.rows() == hit.result.rows()
        assert hit.result.rows()[0]["regular max"] == fresh.result[0].regular.maximum

    def test_legacy_positional_names(self, capsys):
        assert main(["table1", "--quick"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_legacy_unknown_name_exit_code(self):
        assert main(["bogus"]) == 2

    def test_run_experiment_helper(self):
        assert "Table I" in run_experiment("table1", quick=True)
        with pytest.raises(KeyError):
            run_experiment("table42")


class TestDiskHitPromotion:
    def test_disk_hit_promoted_to_memory_cache(self, tmp_path):
        # Regression: a disk-store hit must populate the memory cache, so
        # repeated lookups of the same digest stop re-reading the file --
        # observable as the store's hit counter staying flat.
        root = str(tmp_path / "cache")
        BatchEngine(cache_dir=root).run(BatchJob("table1"))

        engine = BatchEngine(cache_dir=root)
        first = engine.run(BatchJob("table1"))
        assert first.cached
        assert engine.store.hits == 1

        second = engine.run(BatchJob("table1"))
        assert second.cached
        assert engine.store.hits == 1  # served from memory, not the disk
        assert second.result is first.result


class TestFailureCapture:
    BAD = BatchJob("scenario_wctt", {"scenario": {"mesh_width": 2, "design": "nope"}})

    def test_failed_job_becomes_recorded_outcome(self):
        result = BatchEngine(use_cache=False).run(self.BAD)
        assert not result.ok
        assert "ScenarioError" in result.error
        assert result.result.rows() == []
        assert result.result.description.startswith("failed:")

    def test_failed_job_does_not_poison_its_siblings(self):
        jobs = [BatchJob("table1"), self.BAD, BatchJob("table2", {"sizes": (2,)})]
        results = BatchEngine(use_cache=False).run_many(jobs)
        assert [r.ok for r in results] == [True, False, True]
        assert results[0].result.rows() and results[2].result.rows()

    def test_failed_job_does_not_poison_the_worker_pool(self):
        # Same invariant through the multiprocessing fan-out: the captured
        # failure travels back as data, not as a pool-wide exception.
        jobs = [BatchJob("table1"), self.BAD, BatchJob("table2", {"sizes": (2,)})]
        results = BatchEngine(jobs=3, use_cache=False).run_many(jobs)
        assert [r.ok for r in results] == [True, False, True]
        assert "ScenarioError" in results[1].error

    def test_failures_are_never_cached(self, tmp_path):
        engine = BatchEngine(cache_dir=str(tmp_path / "cache"))
        first = engine.run(self.BAD)
        second = engine.run(self.BAD)
        assert not first.ok and not second.ok
        assert not second.cached  # recomputed, not served from any cache
        assert engine.store.writes == 0

    def test_error_round_trips_through_to_dict(self):
        result = BatchEngine(use_cache=False).run(self.BAD)
        data = result.to_dict()
        assert "ScenarioError" in data["error"]
        ok = BatchEngine(use_cache=False).run(BatchJob("table1"))
        assert "error" not in ok.to_dict()
