"""Unit and property tests for :mod:`repro.routing` (XY routing)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Coord, Mesh, Port
from repro.routing import (
    legal_inputs_for_output,
    legal_outputs_for_input,
    validate_route,
    xy_output_port,
    xy_route,
)

MESH8 = Mesh(8, 8)

coords8 = st.builds(Coord, st.integers(0, 7), st.integers(0, 7))


class TestXYOutputPort:
    def test_prefers_x_dimension_first(self):
        assert xy_output_port(Coord(0, 0), Coord(3, 3)) is Port.XPLUS
        assert xy_output_port(Coord(3, 0), Coord(0, 3)) is Port.XMINUS

    def test_y_dimension_when_column_reached(self):
        assert xy_output_port(Coord(3, 0), Coord(3, 3)) is Port.YPLUS
        assert xy_output_port(Coord(3, 5), Coord(3, 3)) is Port.YMINUS

    def test_local_at_destination(self):
        assert xy_output_port(Coord(2, 2), Coord(2, 2)) is Port.LOCAL


class TestXYRoute:
    def test_route_structure_adjacent(self):
        route = xy_route(MESH8, Coord(1, 0), Coord(0, 0))
        assert len(route) == 2
        assert route[0].router == Coord(1, 0)
        assert route[0].in_port is Port.LOCAL
        assert route[0].out_port is Port.XMINUS
        assert route[1].router == Coord(0, 0)
        assert route[1].in_port is Port.XMINUS
        assert route[1].out_port is Port.LOCAL

    def test_route_to_self_is_single_hop(self):
        route = xy_route(MESH8, Coord(2, 2), Coord(2, 2))
        assert len(route) == 1
        assert route[0].in_port is Port.LOCAL and route[0].out_port is Port.LOCAL

    def test_corner_to_corner_route(self):
        route = xy_route(MESH8, Coord(7, 7), Coord(0, 0))
        # X phase first (7 hops), then Y phase (7 hops), then ejection router.
        assert len(route) == 15
        x_phase = route[:7]
        assert all(h.out_port is Port.XMINUS for h in x_phase)
        y_phase = route[7:14]
        assert all(h.out_port is Port.YMINUS for h in y_phase)
        assert route[-1].out_port is Port.LOCAL

    def test_route_length_is_manhattan_plus_one(self):
        src, dst = Coord(2, 5), Coord(6, 1)
        assert len(xy_route(MESH8, src, dst)) == src.manhattan(dst) + 1

    def test_route_never_turns_from_y_to_x(self):
        for src in [Coord(0, 7), Coord(5, 5), Coord(7, 1)]:
            for dst in [Coord(0, 0), Coord(3, 6), Coord(7, 7)]:
                seen_y = False
                for hop in xy_route(MESH8, src, dst):
                    if hop.out_port in (Port.YPLUS, Port.YMINUS):
                        seen_y = True
                    if seen_y:
                        assert hop.out_port not in (Port.XPLUS, Port.XMINUS)

    def test_route_outside_mesh_rejected(self):
        with pytest.raises(ValueError):
            xy_route(MESH8, Coord(8, 0), Coord(0, 0))

    @given(src=coords8, dst=coords8)
    @settings(max_examples=60)
    def test_routes_are_valid_and_terminate_at_destination(self, src, dst):
        route = xy_route(MESH8, src, dst)
        assert route[0].router == src
        assert route[-1].router == dst
        validate_route(MESH8, route)

    @given(src=coords8, dst=coords8)
    @settings(max_examples=60)
    def test_routes_are_minimal(self, src, dst):
        route = xy_route(MESH8, src, dst)
        assert len(route) == src.manhattan(dst) + 1


class TestLegalTurns:
    def test_x_outputs_only_reachable_from_x_and_local(self):
        inputs = legal_inputs_for_output(MESH8, Coord(3, 3), Port.XPLUS)
        assert set(inputs) == {Port.XPLUS, Port.LOCAL}

    def test_y_outputs_reachable_from_everything_but_reverse(self):
        inputs = legal_inputs_for_output(MESH8, Coord(3, 3), Port.YMINUS)
        assert set(inputs) == {Port.YMINUS, Port.XPLUS, Port.XMINUS, Port.LOCAL}

    def test_local_output_not_requested_by_local_input(self):
        inputs = legal_inputs_for_output(MESH8, Coord(3, 3), Port.LOCAL)
        assert Port.LOCAL not in inputs
        assert len(inputs) == 4

    def test_edge_router_loses_missing_ports(self):
        # At (0, 0) there is no X+ or Y+ input (no neighbours at x=-1 / y=-1).
        inputs = legal_inputs_for_output(MESH8, Coord(0, 0), Port.LOCAL)
        assert set(inputs) == {Port.XMINUS, Port.YMINUS}

    def test_outputs_for_y_input_cannot_go_back_to_x(self):
        outputs = legal_outputs_for_input(MESH8, Coord(3, 3), Port.YPLUS)
        assert set(outputs) == {Port.YPLUS, Port.LOCAL}

    def test_outputs_for_x_input_can_turn(self):
        outputs = legal_outputs_for_input(MESH8, Coord(3, 3), Port.XMINUS)
        assert set(outputs) == {Port.XMINUS, Port.YPLUS, Port.YMINUS, Port.LOCAL}

    def test_local_input_can_go_anywhere(self):
        outputs = legal_outputs_for_input(MESH8, Coord(3, 3), Port.LOCAL)
        assert Port.LOCAL in outputs and len(outputs) == 5

    def test_turn_tables_are_mutually_consistent(self):
        for router in [Coord(0, 0), Coord(3, 3), Coord(7, 0), Coord(0, 7), Coord(7, 7)]:
            for out_port in MESH8.output_ports(router):
                for in_port in legal_inputs_for_output(MESH8, router, out_port):
                    assert out_port in legal_outputs_for_input(MESH8, router, in_port)


class TestValidateRoute:
    def test_rejects_empty_route(self):
        with pytest.raises(ValueError):
            validate_route(MESH8, [])

    def test_rejects_route_not_starting_at_local(self):
        route = xy_route(MESH8, Coord(3, 3), Coord(0, 0))[1:]
        with pytest.raises(ValueError):
            validate_route(MESH8, route)

    def test_rejects_disconnected_route(self):
        good = xy_route(MESH8, Coord(3, 0), Coord(0, 0))
        broken = [good[0], good[2]]
        with pytest.raises(ValueError):
            validate_route(MESH8, broken)

    def test_accepts_every_route_of_a_small_mesh(self):
        mesh = Mesh(3, 3)
        for src in mesh.nodes():
            for dst in mesh.nodes():
                validate_route(mesh, xy_route(mesh, src, dst))
