"""Topology subsystem: mesh equivalence, wrap-around routing, validation.

The heart of this module is the equivalence guarantee: ``Mesh2D`` with XY
routing must reproduce the seed's hard-coded mesh behaviour *exactly* --
routes, legal turns, WCTT bounds, WaW weights and cycle-accurate simulation
results.  The remaining classes cover the semantics of the new structures
(torus wrap-around, ring ordering, concentrated-mesh scaling, YX routing)
and the ``Scenario.topology(...)`` validation surface.
"""

import pytest

from repro.api import Scenario, ScenarioError, sweep
from repro.core.config import regular_mesh_config, waw_wap_config
from repro.core.flows import FlowSet
from repro.core.ubd import UBDTable
from repro.core.wctt import make_wctt_analysis
from repro.core.wctt_regular import RegularMeshWCTTAnalysis
from repro.core.weights import WeightTable
from repro.geometry import Coord, Mesh, Port
from repro.noc import Network
from repro.routing import validate_route, xy_output_port, xy_route
from repro.topology import (
    XY,
    YX,
    ConcentratedMesh,
    Mesh2D,
    Ring,
    Torus2D,
    as_topology,
    make_topology,
)


def _all_pairs(topology):
    for src in topology.nodes():
        for dst in topology.nodes():
            if src != dst:
                yield src, dst


# ----------------------------------------------------------------------
# Mesh2D == the seed mesh, byte for byte
# ----------------------------------------------------------------------
class TestMesh2DEquivalence:
    def test_routes_match_the_reference_implementation(self):
        """Mesh2D.route must replay the seed's XY walk hop by hop."""
        topology = Mesh2D(4, 3)
        for src, dst in _all_pairs(topology):
            route = topology.route(src, dst)
            # Reference walk: the seed's xy_output_port decision function.
            current, in_port = src, Port.LOCAL
            for hop in route:
                assert hop.router == current
                assert hop.in_port is in_port
                assert hop.out_port is xy_output_port(current, dst)
                if hop.out_port is not Port.LOCAL:
                    current = topology.downstream(current, hop.out_port)
                    in_port = hop.out_port
            assert route[-1].router == dst
            assert len(route) == src.manhattan(dst) + 1

    def test_xy_route_wrapper_is_identical_for_mesh_and_mesh2d(self):
        plain, topology = Mesh(4, 3), Mesh2D(4, 3)
        for src, dst in _all_pairs(topology):
            assert xy_route(plain, src, dst) == topology.route(src, dst)

    def test_legal_turn_tables_match_the_seed(self):
        plain, topology = Mesh(3, 3), Mesh2D(3, 3)
        for router in topology.nodes():
            for port in Port:
                assert topology.legal_inputs_for_output(
                    router, port
                ) == as_topology(plain).legal_inputs_for_output(router, port)
                # The seed's exact ordering (arbiter candidate order).
                if port is Port.YPLUS and router == Coord(1, 1):
                    assert topology.legal_inputs_for_output(router, port) == (
                        Port.YPLUS,
                        Port.XPLUS,
                        Port.XMINUS,
                        Port.LOCAL,
                    )

    def test_wctt_bounds_identical_for_mesh_and_mesh2d(self):
        for design in (regular_mesh_config, waw_wap_config):
            plain_cfg = design(4)
            topo_cfg = design(4).with_mesh(Mesh2D(4, 4))
            plain_analysis = make_wctt_analysis(plain_cfg)
            topo_analysis = make_wctt_analysis(topo_cfg)
            for src, dst in _all_pairs(Mesh2D(4, 4)):
                assert plain_analysis.wctt_packet(
                    src, dst, packet_flits=1
                ) == topo_analysis.wctt_packet(src, dst, packet_flits=1)

    def test_weight_table_identical_for_mesh_and_mesh2d(self):
        plain = WeightTable.from_closed_form(Mesh(4, 4))
        topo = WeightTable.from_closed_form(Mesh2D(4, 4))
        for router in Mesh(4, 4).nodes():
            for port in Port:
                assert plain.counts(router).input_count(port) == topo.counts(
                    router
                ).input_count(port)
                assert plain.counts(router).output_count(port) == topo.counts(
                    router
                ).output_count(port)

    def test_simulation_byte_identical_for_mesh_and_mesh2d(self):
        """Same traffic, same per-message timestamps on both representations."""
        def run(config):
            network = Network(config)
            messages = [
                network.send(src, Coord(0, 0), payload_flits=4)
                for src in config.mesh.nodes()
                if src != Coord(0, 0)
            ]
            network.run_until_idle(max_cycles=100_000)
            return [
                (m.source, m.injection_cycle, m.completion_cycle) for m in messages
            ]

        for design in (regular_mesh_config, waw_wap_config):
            assert run(design(4)) == run(design(4).with_mesh(Mesh2D(4, 4)))

    def test_ubd_table_identical_for_mesh_and_mesh2d(self):
        plain = UBDTable(waw_wap_config(4))
        topo = UBDTable(waw_wap_config(4).with_mesh(Mesh2D(4, 4)))
        for core in plain.cores():
            assert plain.load_ubd(core) == topo.load_ubd(core)
            assert plain.eviction_ubd(core) == topo.eviction_ubd(core)

    def test_as_topology_normalises_and_passes_through(self):
        topo = as_topology(Mesh(5, 2))
        assert isinstance(topo, Mesh2D)
        assert (topo.width, topo.height) == (5, 2)
        torus = Torus2D(3, 3)
        assert as_topology(torus) is torus


# ----------------------------------------------------------------------
# Torus wrap-around
# ----------------------------------------------------------------------
class TestTorus:
    def test_wraparound_route_is_one_hop(self):
        torus = Torus2D(4, 4)
        route = torus.route(Coord(0, 0), Coord(3, 0))
        assert [h.router for h in route] == [Coord(0, 0), Coord(3, 0)]
        assert route[0].out_port is Port.XMINUS  # backwards over the wrap link

    def test_routes_are_minimal_and_valid(self):
        torus = Torus2D(4, 3)
        for src, dst in _all_pairs(torus):
            route = torus.route(src, dst)
            assert len(route) == torus.distance(src, dst) + 1
            assert route[-1].router == dst
            validate_route(torus, route)

    def test_tie_breaks_towards_positive_direction(self):
        torus = Torus2D(4, 1)
        route = torus.route(Coord(0, 0), Coord(2, 0))  # 2 hops either way
        assert route[0].out_port is Port.XPLUS

    def test_every_router_has_all_ports(self):
        torus = Torus2D(3, 3)
        for router in torus.nodes():
            assert set(torus.input_ports(router)) == set(Port)
            assert set(torus.output_ports(router)) == set(Port)

    def test_link_count_is_double_every_dimension(self):
        torus = Torus2D(4, 3)
        assert len(list(torus.links())) == 4 * torus.num_nodes

    def test_distance_shorter_than_mesh(self):
        torus, mesh = Torus2D(8, 8), Mesh2D(8, 8)
        assert torus.distance(Coord(0, 0), Coord(7, 7)) == 2
        assert mesh.distance(Coord(0, 0), Coord(7, 7)) == 14

    def test_any_direction_policy_is_rejected(self):
        config = regular_mesh_config(4).with_mesh(Torus2D(4, 4))
        with pytest.raises(ValueError, match="any_direction"):
            RegularMeshWCTTAnalysis(config, contender_policy="any_direction")

    def test_closed_form_weights_fall_back_to_flow_derivation(self):
        torus = Torus2D(3, 3)
        table = WeightTable.from_closed_form(torus)
        expected = WeightTable.from_flow_set(FlowSet.all_to_all(torus))
        for router in torus.nodes():
            for port in Port:
                assert table.counts(router).input_count(port) == expected.counts(
                    router
                ).input_count(port)
        with pytest.raises(ValueError, match="closed forms"):
            WeightTable.from_closed_form(torus, as_printed=True)

    def test_end_to_end_analysis_and_simulation(self):
        config = waw_wap_config(4).with_mesh(Torus2D(4, 4))
        analysis = make_wctt_analysis(config)
        bound = analysis.wctt_packet(Coord(3, 3), Coord(0, 0), packet_flits=1)
        assert bound > 0
        network = Network(config)
        message = network.send(Coord(3, 3), Coord(0, 0), payload_flits=1)
        network.run_until_idle(max_cycles=100_000)
        assert message.completion_cycle is not None
        # (3,3) -> (0,0) is two wrap hops on a 4x4 torus.
        assert message.network_latency <= bound


# ----------------------------------------------------------------------
# Ring ordering
# ----------------------------------------------------------------------
class TestRing:
    def test_construction_and_validation(self):
        ring = Ring(6)
        assert (ring.width, ring.height, ring.num_nodes) == (6, 1, 6)
        with pytest.raises(ValueError, match="single row"):
            Ring(4, 2)
        with pytest.raises(ValueError, match="at least 2"):
            Ring(1)

    def test_shorter_way_around_is_taken(self):
        ring = Ring(6)
        forward = ring.route(Coord(0, 0), Coord(2, 0))
        backward = ring.route(Coord(0, 0), Coord(4, 0))
        assert [h.out_port for h in forward[:-1]] == [Port.XPLUS, Port.XPLUS]
        assert [h.out_port for h in backward[:-1]] == [Port.XMINUS, Port.XMINUS]
        # Exact tie (half way around an even ring): positive direction.
        tie = ring.route(Coord(0, 0), Coord(3, 0))
        assert all(h.out_port is Port.XPLUS for h in tie[:-1])

    def test_only_x_and_local_ports_exist(self):
        ring = Ring(5)
        for router in ring.nodes():
            assert set(ring.output_ports(router)) == {
                Port.LOCAL,
                Port.XPLUS,
                Port.XMINUS,
            }

    def test_end_to_end_simulation(self):
        config = waw_wap_config(8, 1).with_mesh(Ring(8))
        network = Network(config)
        messages = [
            network.send(src, Coord(0, 0), payload_flits=4)
            for src in Ring(8).nodes()
            if src != Coord(0, 0)
        ]
        network.run_until_idle(max_cycles=100_000)
        assert all(m.completion_cycle is not None for m in messages)


# ----------------------------------------------------------------------
# Concentrated mesh
# ----------------------------------------------------------------------
class TestConcentratedMesh:
    def test_terminals_and_validation(self):
        cmesh = ConcentratedMesh(4, 4, concentration=4)
        assert cmesh.terminals_per_node == 4
        assert cmesh.num_terminals == 64
        with pytest.raises(ValueError, match="concentration"):
            ConcentratedMesh(4, 4, concentration=0)

    def test_routes_match_the_plain_mesh(self):
        cmesh, mesh = ConcentratedMesh(4, 3, concentration=2), Mesh2D(4, 3)
        for src, dst in _all_pairs(cmesh):
            assert cmesh.route(src, dst) == mesh.route(src, dst)

    def test_weights_scale_with_concentration(self):
        mesh_table = WeightTable.from_closed_form(Mesh2D(3, 3))
        cmesh_table = WeightTable.from_closed_form(ConcentratedMesh(3, 3, concentration=4))
        for router in Mesh2D(3, 3).nodes():
            for port in Port:
                assert cmesh_table.counts(router).input_count(
                    port
                ) == 4 * mesh_table.counts(router).input_count(port)

    def test_flow_set_weights_scale_too(self):
        cmesh = ConcentratedMesh(3, 3, concentration=2)
        flows = FlowSet.all_to_one(cmesh, Coord(0, 0))
        table = WeightTable.from_flow_set(flows)
        # 8 sending routers eject at the MC, each aggregating 2 terminals.
        assert table.counts(Coord(0, 0)).output_count(Port.LOCAL) == 16

    def test_end_to_end_simulation(self):
        config = waw_wap_config(4).with_mesh(ConcentratedMesh(4, 4, concentration=4))
        network = Network(config)
        messages = []
        for node in ConcentratedMesh(4, 4, concentration=4).nodes():
            if node == Coord(0, 0):
                continue
            for _ in range(4):  # one message per terminal of the cluster
                messages.append(network.send(node, Coord(0, 0), payload_flits=1))
        network.run_until_idle(max_cycles=200_000)
        assert all(m.completion_cycle is not None for m in messages)


# ----------------------------------------------------------------------
# YX routing strategy
# ----------------------------------------------------------------------
class TestYXRouting:
    def test_yx_resolves_y_first(self):
        topology = Mesh2D(4, 4, YX)
        route = topology.route(Coord(0, 0), Coord(2, 2))
        ports = [h.out_port for h in route]
        assert ports == [Port.YPLUS, Port.YPLUS, Port.XPLUS, Port.XPLUS, Port.LOCAL]

    def test_yx_legal_tables_mirror_xy(self):
        topology = Mesh2D(3, 3, YX)
        centre = Coord(1, 1)
        # Under YX the X ports are the "second axis": X+ accepts merges from Y.
        assert topology.legal_inputs_for_output(centre, Port.XPLUS) == (
            Port.XPLUS,
            Port.YPLUS,
            Port.YMINUS,
            Port.LOCAL,
        )
        assert topology.legal_inputs_for_output(centre, Port.YPLUS) == (
            Port.YPLUS,
            Port.LOCAL,
        )

    def test_yx_mesh_simulates_and_drains(self):
        config = regular_mesh_config(4).with_mesh(Mesh2D(4, 4, YX))
        network = Network(config)
        messages = [
            network.send(src, Coord(0, 0), payload_flits=4)
            for src in config.mesh.nodes()
            if src != Coord(0, 0)
        ]
        network.run_until_idle(max_cycles=100_000)
        assert all(m.completion_cycle is not None for m in messages)

    def test_strategies_are_singletons_by_name(self):
        assert make_topology("mesh", 4, routing="xy").routing is XY
        assert make_topology("mesh", 4, routing="yx").routing is YX


# ----------------------------------------------------------------------
# Scenario.topology() validation and sweeps
# ----------------------------------------------------------------------
class TestScenarioTopology:
    def test_builds_the_right_topology_class(self):
        assert isinstance(Scenario.mesh(4).topology("mesh").build().mesh, Mesh2D)
        assert isinstance(Scenario.mesh(4).topology("torus").build().mesh, Torus2D)
        assert isinstance(Scenario.mesh(8, 1).topology("ring").build().mesh, Ring)
        cmesh_cfg = Scenario.mesh(4).topology("cmesh", concentration=2).build()
        assert isinstance(cmesh_cfg.mesh, ConcentratedMesh)
        assert cmesh_cfg.mesh.concentration == 2

    def test_default_path_keeps_the_plain_mesh(self):
        config = Scenario.mesh(4).waw_wap().build()
        assert type(config.mesh) is Mesh

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ScenarioError, match="unknown topology"):
            Scenario.mesh(4).topology("hypercube")

    def test_unknown_routing_is_rejected(self):
        with pytest.raises(ScenarioError, match="unknown routing"):
            Scenario.mesh(4).topology("mesh", routing="zigzag")

    def test_concentration_outside_cmesh_is_rejected(self):
        with pytest.raises(ScenarioError, match="cmesh"):
            Scenario.mesh(4).topology("torus", concentration=2)

    def test_bad_concentration_value_is_rejected(self):
        with pytest.raises(ScenarioError, match="concentration"):
            Scenario.mesh(4).topology("cmesh", concentration=0)

    def test_ring_needs_a_single_row(self):
        with pytest.raises(ScenarioError, match="single row"):
            Scenario.mesh(4).topology("ring")

    def test_labels_carry_the_topology(self):
        assert Scenario.mesh(4).topology("torus").label() == "regular-4x4-torus"
        assert (
            Scenario.mesh(4).topology("cmesh", concentration=2).label()
            == "regular-4x4-cmesh2"
        )
        assert Scenario.mesh(4).topology("mesh", routing="yx").label() == "regular-4x4-yx"

    def test_sweep_topology_axis(self):
        points = sweep(
            Scenario.mesh(4),
            topology=("mesh", "torus", {"kind": "cmesh", "concentration": 2}),
            design=("regular", "waw_wap"),
        )
        assert len(points) == 6
        kinds = [type(p.build().mesh).__name__ for p in points]
        assert kinds == [
            "Mesh2D",
            "Mesh2D",
            "Torus2D",
            "Torus2D",
            "ConcentratedMesh",
            "ConcentratedMesh",
        ]

    def test_reselecting_topology_clears_cmesh_leftovers(self):
        """Sweeping the topology axis from a cmesh base must not drag the
        stale concentration into non-cmesh design points."""
        base = Scenario.mesh(4).topology("cmesh", concentration=2)
        points = sweep(base, topology=("mesh", "torus", "cmesh"))
        kinds = [type(p.build().mesh).__name__ for p in points]
        assert kinds == ["Mesh2D", "Torus2D", "ConcentratedMesh"]
        assert points[1].label() == "regular-4x4-torus"
        # cmesh re-selected without an explicit concentration: the default.
        assert points[2].build().mesh.concentration == 4

    def test_non_integer_concentration_is_rejected(self):
        with pytest.raises(ScenarioError, match="integer"):
            Scenario.mesh(4).topology("cmesh", concentration=2.5)

    def test_sweep_single_mapping_value(self):
        points = sweep(Scenario.mesh(4), topology={"kind": "cmesh", "concentration": 3})
        assert len(points) == 1
        assert points[0].build().mesh.concentration == 3

    def test_sweep_rejects_bad_topology_values(self):
        with pytest.raises(ScenarioError, match="kind"):
            sweep(Scenario.mesh(4), topology=[{"concentration": 2}])
        with pytest.raises(ScenarioError, match="unknown topology parameter"):
            sweep(Scenario.mesh(4), topology=[{"kind": "mesh", "depth": 2}])

    def test_table2_sweeps_over_topologies(self):
        from repro.api import BatchEngine

        engine = BatchEngine(use_cache=False)
        results = engine.sweep("table2", quick=True, topology=("mesh", "ring"))
        mesh_rows = results[0].result.to_dict()["rows"]
        ring_rows = results[1].result.to_dict()["rows"]
        assert mesh_rows[0]["NxM"] == "2x2"
        assert ring_rows[0]["NxM"] == "2-node ring"
