"""Unit and property tests for :mod:`repro.core.flows`."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flows import Flow, FlowSet
from repro.geometry import Coord, Mesh, Port


class TestFlow:
    def test_rejects_self_flow(self):
        with pytest.raises(ValueError):
            Flow(Coord(1, 1), Coord(1, 1))

    def test_hop_count(self):
        assert Flow(Coord(0, 0), Coord(3, 2)).hop_count() == 6

    def test_route_uses_mesh(self):
        mesh = Mesh(4, 4)
        route = Flow(Coord(3, 3), Coord(0, 0)).route(mesh)
        assert route[0].router == Coord(3, 3)
        assert route[-1].router == Coord(0, 0)


class TestFlowSetConstruction:
    def test_all_to_all_count(self):
        mesh = Mesh(3, 3)
        flows = FlowSet.all_to_all(mesh)
        assert len(flows) == 9 * 8

    def test_all_to_one_count_and_destination(self):
        mesh = Mesh(4, 4)
        flows = FlowSet.all_to_one(mesh, Coord(0, 0))
        assert len(flows) == 15
        assert flows.destinations() == {Coord(0, 0)}
        assert Coord(0, 0) not in flows.sources()

    def test_one_to_all(self):
        mesh = Mesh(3, 2)
        flows = FlowSet.one_to_all(mesh, Coord(0, 0))
        assert len(flows) == 5
        assert flows.sources() == {Coord(0, 0)}

    def test_from_pairs_and_deduplication(self):
        mesh = Mesh(2, 2)
        pairs = [(Coord(0, 1), Coord(0, 0)), (Coord(0, 1), Coord(0, 0)), (Coord(1, 1), Coord(0, 0))]
        flows = FlowSet.from_pairs(mesh, pairs)
        assert len(flows) == 2

    def test_rejects_flows_outside_mesh(self):
        mesh = Mesh(2, 2)
        with pytest.raises(ValueError):
            FlowSet.from_pairs(mesh, [(Coord(0, 0), Coord(5, 5))])

    def test_container_protocol(self):
        mesh = Mesh(2, 2)
        flows = FlowSet.all_to_one(mesh, Coord(0, 0))
        assert Flow(Coord(1, 1), Coord(0, 0)) in flows
        assert len(list(iter(flows))) == len(flows)


class TestPortAccounting:
    def test_every_flow_crosses_its_own_local_ports(self):
        mesh = Mesh(3, 3)
        flows = FlowSet.all_to_one(mesh, Coord(0, 0))
        for flow in flows:
            assert flow in flows.flows_through_input(flow.source, Port.LOCAL)
            assert flow in flows.flows_through_output(Coord(0, 0), Port.LOCAL)

    def test_all_to_one_ejection_port_carries_all_flows(self):
        mesh = Mesh(4, 4)
        flows = FlowSet.all_to_one(mesh, Coord(0, 0))
        assert flows.port_flow_count(Coord(0, 0), Port.LOCAL, "out") == 15
        assert flows.port_source_count(Coord(0, 0), Port.LOCAL, "out") == 15

    def test_row_traffic_enters_destination_via_xminus(self):
        mesh = Mesh(4, 4)
        flows = FlowSet.all_to_one(mesh, Coord(0, 0))
        # Traffic from the same row (y=0) arrives at (0,0) travelling in -x,
        # i.e. through the X- input; the other 12 flows arrive through Y-.
        assert flows.port_flow_count(Coord(0, 0), Port.XMINUS, "in") == 3
        assert flows.port_flow_count(Coord(0, 0), Port.YMINUS, "in") == 12

    def test_source_count_vs_flow_count_all_to_all(self):
        mesh = Mesh(3, 3)
        flows = FlowSet.all_to_all(mesh)
        # At router (1,1), the X+ input carries the X-phase traffic of the
        # single preceding node of its row, whatever the destination: one
        # source, several flows.
        assert flows.port_source_count(Coord(1, 1), Port.XPLUS, "in") == 1
        assert flows.port_flow_count(Coord(1, 1), Port.XPLUS, "in") > 1

    def test_direction_argument_validated(self):
        mesh = Mesh(2, 2)
        flows = FlowSet.all_to_all(mesh)
        with pytest.raises(ValueError):
            flows.port_flow_count(Coord(0, 0), Port.LOCAL, "sideways")

    def test_max_link_load_all_to_one(self):
        mesh = Mesh(4, 4)
        flows = FlowSet.all_to_one(mesh, Coord(0, 0))
        # The most loaded port is the ejection port of the destination.
        assert flows.max_link_load() == 15

    @given(w=st.integers(2, 5), h=st.integers(2, 5))
    @settings(max_examples=20, deadline=None)
    def test_paper_closed_forms_match_all_to_all_source_counts(self, w, h):
        """The upstream-source counts match the paper's Y/PME closed forms."""
        mesh = Mesh(w, h)
        flows = FlowSet.all_to_all(mesh)
        for router in mesh.nodes():
            x, y = router.x, router.y
            assert flows.port_source_count(router, Port.LOCAL, "in") == 1
            assert flows.port_source_count(router, Port.LOCAL, "out") == w * h - 1
            if mesh.upstream(router, Port.YPLUS) is not None:
                assert flows.port_source_count(router, Port.YPLUS, "in") == w * y
            if mesh.upstream(router, Port.XPLUS) is not None:
                assert flows.port_source_count(router, Port.XPLUS, "in") == x

    @given(w=st.integers(2, 4), h=st.integers(2, 4))
    @settings(max_examples=15, deadline=None)
    def test_flow_conservation_at_each_router(self, w, h):
        """Flows entering a router equal flows leaving it (no flow vanishes)."""
        mesh = Mesh(w, h)
        flows = FlowSet.all_to_all(mesh)
        for router in mesh.nodes():
            entering = sum(
                flows.port_flow_count(router, port, "in") for port in mesh.input_ports(router)
            )
            leaving = sum(
                flows.port_flow_count(router, port, "out") for port in mesh.output_ports(router)
            )
            assert entering == leaving
