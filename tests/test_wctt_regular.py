"""Tests for the regular-mesh WCTT analysis (:mod:`repro.core.wctt_regular`)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import RouterTiming, regular_mesh_config
from repro.core.flows import FlowSet
from repro.core.wctt import wctt_summary
from repro.core.wctt_regular import CONTENDER_POLICIES, RegularMeshWCTTAnalysis
from repro.geometry import Coord, Mesh, Port


def analysis_for(size: int, *, flits: int = 1, policy: str = "merging") -> RegularMeshWCTTAnalysis:
    return RegularMeshWCTTAnalysis(
        regular_mesh_config(size, max_packet_flits=flits), contender_policy=policy
    )


class TestBasicProperties:
    def test_rejects_self_flow(self):
        with pytest.raises(ValueError):
            analysis_for(4).wctt_packet(Coord(1, 1), Coord(1, 1))

    def test_rejects_invalid_packet_size(self):
        with pytest.raises(ValueError):
            analysis_for(4).wctt_packet(Coord(1, 1), Coord(0, 0), packet_flits=0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            RegularMeshWCTTAnalysis(regular_mesh_config(4), contender_policy="optimistic")
        assert set(CONTENDER_POLICIES) == {"merging", "any_direction"}

    def test_contender_count_examples(self):
        a = analysis_for(8)
        # Interior Y- output can be requested by Y-, X+, X- and LOCAL.
        assert a.contender_count(Coord(3, 3), Port.YMINUS) == 4
        # Interior X- output only by X- and LOCAL (no Y->X turns under XY).
        assert a.contender_count(Coord(3, 3), Port.XMINUS) == 2
        # Ejection at the corner only from the two existing directional inputs.
        assert a.contender_count(Coord(0, 0), Port.LOCAL) == 2

    def test_wctt_exceeds_zero_load_latency(self):
        a = analysis_for(6, flits=4)
        for src in [Coord(1, 0), Coord(3, 3), Coord(5, 5)]:
            wctt = a.wctt_packet(src, Coord(0, 0), packet_flits=1)
            assert wctt > a.zero_load_latency(src, Coord(0, 0), packet_flits=1)

    def test_wctt_positive_and_deterministic(self):
        a = analysis_for(5)
        first = a.wctt_packet(Coord(4, 4), Coord(0, 0), packet_flits=1)
        second = a.wctt_packet(Coord(4, 4), Coord(0, 0), packet_flits=1)
        assert first == second > 0


class TestMonotonicity:
    def test_wctt_grows_with_distance_along_a_row(self):
        a = analysis_for(8)
        dst = Coord(0, 0)
        values = [a.wctt_packet(Coord(x, 0), dst, packet_flits=1) for x in range(1, 8)]
        assert values == sorted(values)
        assert values[-1] > values[0]

    def test_wctt_grows_with_contender_packet_size(self):
        dst = Coord(0, 0)
        src = Coord(3, 3)
        small = RegularMeshWCTTAnalysis(regular_mesh_config(4, max_packet_flits=1))
        large = RegularMeshWCTTAnalysis(regular_mesh_config(4, max_packet_flits=8))
        assert large.wctt_packet(src, dst, packet_flits=1) > small.wctt_packet(
            src, dst, packet_flits=1
        )

    def test_wctt_grows_with_own_packet_size(self):
        a = analysis_for(4, flits=8)
        dst = Coord(0, 0)
        src = Coord(3, 3)
        assert a.wctt_packet(src, dst, packet_flits=8) > a.wctt_packet(src, dst, packet_flits=1)

    def test_max_wctt_explodes_with_mesh_size(self):
        """The paper's headline problem: the worst WCTT scales terribly."""
        maxima = []
        for size in (3, 4, 5, 6):
            a = analysis_for(size)
            far = Coord(size - 1, size - 1)
            maxima.append(a.wctt_packet(far, Coord(0, 0), packet_flits=1))
        # Each size step multiplies the worst case by a large factor.
        for smaller, larger in zip(maxima, maxima[1:]):
            assert larger > 3 * smaller

    def test_min_wctt_stays_flat_with_mesh_size(self):
        """Nodes adjacent to the destination keep a small, size-independent bound."""
        minima = []
        for size in (3, 5, 8):
            a = analysis_for(size)
            flows = FlowSet.all_to_one(a.mesh, Coord(0, 0))
            minima.append(
                min(a.wctt_packet(f.source, f.destination, packet_flits=1) for f in flows)
            )
        assert minima[0] == minima[1] == minima[2]

    @given(size=st.integers(2, 5))
    @settings(max_examples=8, deadline=None)
    def test_any_direction_policy_dominates_merging(self, size):
        """The destination-agnostic bound is always at least as pessimistic."""
        merging = analysis_for(size, policy="merging")
        any_dir = analysis_for(size, policy="any_direction")
        dst = Coord(0, 0)
        for src in merging.mesh.nodes():
            if src == dst:
                continue
            assert any_dir.wctt_packet(src, dst, packet_flits=1) >= merging.wctt_packet(
                src, dst, packet_flits=1
            )


class TestServiceTimes:
    def test_ejection_service_time_is_serialization(self):
        a = analysis_for(4, flits=4)
        assert a.service_time_any_direction(Coord(0, 0), Port.LOCAL) == 4

    def test_service_time_breakdown_records_worst_port(self):
        a = analysis_for(4)
        a.service_time_any_direction(Coord(3, 0), Port.XMINUS)
        breakdown = a.service_breakdown(Coord(3, 0), Port.XMINUS)
        assert breakdown.service_time > 0
        assert breakdown.worst_next_port is not None

    def test_service_time_is_cached(self):
        a = analysis_for(5)
        first = a.service_time_any_direction(Coord(4, 4), Port.XMINUS)
        assert a.service_time_any_direction(Coord(4, 4), Port.XMINUS) == first


class TestMessages:
    def test_message_within_max_packet_is_single_packet(self):
        a = analysis_for(4, flits=4)
        src, dst = Coord(3, 3), Coord(0, 0)
        assert a.wctt_message(src, dst, payload_flits=4) == a.wctt_packet(
            src, dst, packet_flits=4
        )

    def test_oversized_message_adds_per_packet_bounds(self):
        a = analysis_for(4, flits=4)
        src, dst = Coord(3, 3), Coord(0, 0)
        single = a.wctt_packet(src, dst, packet_flits=4)
        assert a.wctt_message(src, dst, payload_flits=8) == 2 * single

    def test_l1_reply_costs_four_packets(self):
        a = analysis_for(4, flits=1)
        src, dst = Coord(0, 0), Coord(3, 3)
        one = a.wctt_packet(src, dst, packet_flits=1)
        assert a.wctt_message(src, dst, payload_flits=4) == 4 * one

    def test_invalid_payload_rejected(self):
        with pytest.raises(ValueError):
            analysis_for(4).wctt_message(Coord(1, 1), Coord(0, 0), payload_flits=0)


class TestTimingSensitivity:
    def test_faster_router_gives_lower_bound(self):
        fast = RegularMeshWCTTAnalysis(
            regular_mesh_config(4, timing=RouterTiming(routing_latency=1, link_latency=0))
        )
        slow = RegularMeshWCTTAnalysis(
            regular_mesh_config(4, timing=RouterTiming(routing_latency=5, link_latency=2))
        )
        src, dst = Coord(3, 3), Coord(0, 0)
        assert fast.wctt_packet(src, dst, packet_flits=1) < slow.wctt_packet(
            src, dst, packet_flits=1
        )

    def test_summary_over_flow_set(self):
        a = analysis_for(4)
        flows = FlowSet.all_to_one(a.mesh, Coord(0, 0))
        summary = wctt_summary(a, flows, packet_flits=1)
        assert summary.minimum <= summary.average <= summary.maximum
        assert summary.flow_count == 15
        assert summary.design == "regular"
