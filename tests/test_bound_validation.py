"""Integration tests: analytical WCTT bounds vs the cycle-accurate simulator.

These are the safety checks of experiment E9: under the most adversarial
congestion the simulator can produce, no observed traversal may exceed the
analytical bound of its design point.
"""

from __future__ import annotations

import pytest

from repro.analysis.validation import validate_design, validate_flow_bound
from repro.core.config import regular_mesh_config, waw_wap_config
from repro.geometry import Coord


class TestValidateFlowBound:
    def test_regular_design_bound_is_safe_for_far_flow(self):
        result = validate_flow_bound(
            regular_mesh_config(3, max_packet_flits=1),
            Coord(2, 2),
            Coord(0, 0),
            congestion_cycles=800,
        )
        assert result.design == "regular"
        assert result.is_safe
        assert 0 < result.tightness <= 1.0
        assert result.probes >= 1

    def test_waw_design_bound_is_safe_and_tight(self):
        result = validate_flow_bound(
            waw_wap_config(3, max_packet_flits=1),
            Coord(2, 2),
            Coord(0, 0),
            congestion_cycles=800,
        )
        assert result.design == "WaW+WaP"
        assert result.is_safe
        # WaW+WaP bounds should be close to what saturation actually produces.
        assert result.tightness > 0.3

    def test_near_flow_bounds_are_safe_on_both_designs(self):
        for config in (regular_mesh_config(3), waw_wap_config(3)):
            result = validate_flow_bound(
                config, Coord(1, 0), Coord(0, 0), congestion_cycles=600
            )
            assert result.is_safe


class TestValidateDesign:
    @pytest.mark.parametrize("factory", [regular_mesh_config, waw_wap_config])
    def test_representative_flows_are_safe(self, factory):
        config = factory(3, max_packet_flits=1)
        results = validate_design(config, congestion_cycles=600)
        assert len(results) == 3
        assert all(r.is_safe for r in results)

    def test_default_sources_cover_near_mid_far(self):
        config = regular_mesh_config(4, max_packet_flits=1)
        results = validate_design(config, congestion_cycles=400)
        distances = sorted(r.source.manhattan(r.destination) for r in results)
        assert distances[0] == 1
        assert distances[-1] == 6
