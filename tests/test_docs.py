"""The documentation pages exist, are linked and their snippets run.

CI runs ``tools/check_doc_snippets.py`` as its own job; this module keeps
the same guarantee inside the tier-1 suite so a broken doc snippet fails
``pytest`` locally too.
"""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = REPO_ROOT / "docs"


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_doc_snippets", REPO_ROOT / "tools" / "check_doc_snippets.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestDocsPresence:
    def test_pages_exist(self):
        assert (DOCS / "ARCHITECTURE.md").is_file()
        assert (DOCS / "api.md").is_file()

    def test_readme_links_both_pages(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "docs/ARCHITECTURE.md" in readme
        assert "docs/api.md" in readme

    def test_ci_runs_the_snippet_checker(self):
        workflow = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text(
            encoding="utf-8"
        )
        assert "tools/check_doc_snippets.py" in workflow


class TestSnippetExtraction:
    def test_every_page_has_runnable_snippets(self):
        checker = _load_checker()
        for page in sorted(DOCS.glob("*.md")):
            blocks = checker.extract_blocks(page.read_text(encoding="utf-8"))
            assert blocks, f"{page.name} has no python snippets"

    def test_no_run_marker_is_honoured(self):
        checker = _load_checker()
        text = "<!-- no-run -->\n```python\nraise RuntimeError\n```\n"
        ((_, source, skipped),) = checker.extract_blocks(text)
        assert skipped and "RuntimeError" in source


class TestSnippetsRun:
    def test_all_doc_snippets_run_cleanly(self):
        checker = _load_checker()
        failures = []
        for page in sorted(DOCS.glob("*.md")):
            failures.extend(checker.check_file(page))
        assert not failures, "\n".join(failures)
