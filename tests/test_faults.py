"""Tests of the fault models and the NIC-level HARQ reliability protocol."""

from __future__ import annotations

import pytest

from repro.api import Scenario, ScenarioError, sweep
from repro.faults import (
    FaultModel,
    GilbertElliottFaults,
    IndependentFaults,
    MessageDeliveryError,
    ReliabilityConfig,
    make_fault_model,
)
from repro.faults.models import CORRUPT, LOST, _link_stream
from repro.geometry import Coord, Port
from repro.noc.network import Network
from repro.sim import SimulationStallError


# ----------------------------------------------------------------------
# Specification layer
# ----------------------------------------------------------------------
class TestSpecs:
    def test_independent_rates_validated(self):
        with pytest.raises(ValueError):
            IndependentFaults(corrupt_rate=-0.1)
        with pytest.raises(ValueError):
            IndependentFaults(loss_rate=1.5)
        with pytest.raises(ValueError):
            IndependentFaults(corrupt_rate=0.6, loss_rate=0.6)

    def test_gilbert_rates_validated(self):
        with pytest.raises(ValueError):
            GilbertElliottFaults(bad_corrupt_rate=0.7, bad_loss_rate=0.7)
        with pytest.raises(ValueError):
            GilbertElliottFaults(good_to_bad=2.0)

    def test_null_detection(self):
        assert IndependentFaults().is_null
        assert not IndependentFaults(corrupt_rate=0.01).is_null
        assert not IndependentFaults(loss_rate=0.01).is_null
        # The bad state is unreachable when good_to_bad is 0.
        assert GilbertElliottFaults(good_to_bad=0.0).is_null
        assert not GilbertElliottFaults().is_null
        assert GilbertElliottFaults(bad_corrupt_rate=0.0, bad_loss_rate=0.0).is_null

    def test_reliability_config_validated(self):
        with pytest.raises(ValueError):
            ReliabilityConfig(ack_timeout=0)
        with pytest.raises(ValueError):
            ReliabilityConfig(backoff=0.5)
        with pytest.raises(ValueError):
            ReliabilityConfig(max_retries=-1)

    def test_retry_timeout_backs_off_exponentially(self):
        reliability = ReliabilityConfig(ack_timeout=100, backoff=2.0, max_retries=3)
        assert [reliability.retry_timeout(a) for a in (1, 2, 3, 4)] == [100, 200, 400, 800]
        assert reliability.worst_case_wait() == 1500
        assert reliability.max_attempts == 4

    def test_with_seed_preserves_everything_else(self):
        spec = IndependentFaults(corrupt_rate=0.1, seed=1)
        reseeded = spec.with_seed(42)
        assert reseeded.seed == 42
        assert reseeded.corrupt_rate == 0.1


class TestFactory:
    def test_none_passthrough(self):
        assert make_fault_model(None) is None
        with pytest.raises(ValueError):
            make_fault_model(None, corrupt_rate=0.1)

    def test_instance_passthrough(self):
        spec = IndependentFaults(loss_rate=0.2)
        assert make_fault_model(spec) is spec
        with pytest.raises(ValueError):
            make_fault_model(spec, seed=3)

    def test_kind_name_with_parameters(self):
        spec = make_fault_model("independent", corrupt_rate=0.1, seed=9)
        assert isinstance(spec, IndependentFaults)
        assert spec.corrupt_rate == 0.1 and spec.seed == 9

    def test_mapping_form(self):
        spec = make_fault_model({"kind": "gilbert", "bad_loss_rate": 0.2})
        assert isinstance(spec, GilbertElliottFaults)
        assert spec.bad_loss_rate == 0.2

    def test_flat_reliability_keywords_fold_into_config(self):
        spec = make_fault_model("independent", loss_rate=0.1, ack_timeout=64,
                                backoff=3.0, max_retries=2)
        assert spec.reliability == ReliabilityConfig(ack_timeout=64, backoff=3.0,
                                                     max_retries=2)

    def test_unknown_kind_and_parameter_rejected(self):
        with pytest.raises(ValueError, match="known kinds"):
            make_fault_model("cosmic-rays")
        with pytest.raises(ValueError, match="known parameters"):
            make_fault_model("independent", burst_length=5)
        with pytest.raises(ValueError, match="'kind' entry"):
            make_fault_model({"loss_rate": 0.1})


# ----------------------------------------------------------------------
# Per-link streams
# ----------------------------------------------------------------------
class TestInjectorStreams:
    def _draws(self, spec: FaultModel, coord: Coord, port: Port, n: int):
        state = spec._make_link_state(
            _link_stream(spec.seed, coord.x, coord.y, port.value)
        )
        return [state.draw() for _ in range(n)]

    def test_same_seed_same_link_reproduces(self):
        spec = IndependentFaults(corrupt_rate=0.2, loss_rate=0.2, seed=3)
        a = self._draws(spec, Coord(1, 2), Port.XPLUS, 200)
        b = self._draws(spec, Coord(1, 2), Port.XPLUS, 200)
        assert a == b
        assert CORRUPT in a and LOST in a

    def test_different_links_are_independent_streams(self):
        spec = IndependentFaults(corrupt_rate=0.3, loss_rate=0.3, seed=3)
        east = self._draws(spec, Coord(1, 2), Port.XPLUS, 200)
        west = self._draws(spec, Coord(1, 2), Port.XMINUS, 200)
        other = self._draws(spec, Coord(2, 2), Port.XPLUS, 200)
        assert east != west and east != other

    def test_different_seeds_differ(self):
        a = self._draws(IndependentFaults(corrupt_rate=0.3, seed=1), Coord(0, 0), Port.XPLUS, 100)
        b = self._draws(IndependentFaults(corrupt_rate=0.3, seed=2), Coord(0, 0), Port.XPLUS, 100)
        assert a != b

    def test_gilbert_bursts_cluster(self):
        """In a pure burst model every fault lies inside a bad-state run."""
        spec = GilbertElliottFaults(
            good_corrupt_rate=0.0, good_loss_rate=0.0,
            bad_corrupt_rate=0.9, bad_loss_rate=0.05,
            good_to_bad=0.05, bad_to_good=0.2, seed=7,
        )
        draws = self._draws(spec, Coord(0, 0), Port.XPLUS, 2000)
        faults = [i for i, d in enumerate(draws) if d is not None]
        assert faults, "expected some faults in 2000 draws"
        # Consecutive faults must be much closer together than the ~1/0.05
        # spacing independent faults at the same average rate would show.
        gaps = [b - a for a, b in zip(faults, faults[1:])]
        assert min(gaps) == 1, "burst model never produced back-to-back faults"


# ----------------------------------------------------------------------
# End-to-end protocol behaviour
# ----------------------------------------------------------------------
def _faulty_network(backend="cycle", **model_params) -> Network:
    defaults = {"corrupt_rate": 0.02, "loss_rate": 0.01, "seed": 7, "ack_timeout": 64}
    defaults.update(model_params)
    config = (
        Scenario.mesh(3)
        .waw_wap()
        .fault_model("independent", **defaults)
        .backend(backend)
        .build()
    )
    return Network(config)


class TestProtocol:
    def test_exactly_once_delivery_despite_retransmissions(self):
        network = _faulty_network()
        sent = []
        for _ in range(10):
            sent.append(network.send(Coord(2, 2), Coord(0, 0), 4, kind="data"))
            sent.append(network.send(Coord(1, 2), Coord(0, 0), 4, kind="data"))
        network.run_until_idle(max_cycles=500_000)
        assert network.stats.completed_messages == len(sent)
        assert network.total_retransmissions() > 0, "fault rates too low to exercise HARQ"
        delivered = [m.message_id for m in network.stats.messages]
        assert len(delivered) == len(set(delivered)), "a message was delivered twice"
        for message in sent:
            assert message.completion_cycle is not None
            assert message.sequence is not None

    def test_sequence_numbers_are_per_nic_and_consecutive(self):
        network = _faulty_network()
        a = [network.send(Coord(2, 2), Coord(0, 0), 1) for _ in range(3)]
        b = [network.send(Coord(0, 2), Coord(2, 0), 1) for _ in range(2)]
        assert [m.sequence for m in a] == [0, 1, 2]
        assert [m.sequence for m in b] == [0, 1]

    def test_control_traffic_invisible_to_listeners_and_stats(self):
        network = _faulty_network()
        seen = []
        network.add_listener(Coord(2, 2), lambda message, cycle: seen.append(message))
        network.send(Coord(2, 2), Coord(0, 0), 4, kind="data")
        network.run_until_idle(max_cycles=500_000)
        # The ACK arrived at (2,2)'s NIC but never surfaced as a message.
        assert seen == []
        assert all(m.kind == "data" for m in network.stats.messages)
        assert sum(n.control_messages_sent for n in network.nics.values()) > 0

    def test_max_retry_exhaustion_raises_descriptive_error(self):
        network = _faulty_network(loss_rate=1.0, corrupt_rate=0.0, max_retries=2,
                                  ack_timeout=32)
        message = network.send(Coord(2, 2), Coord(0, 0), 4, kind="data")
        with pytest.raises(MessageDeliveryError) as excinfo:
            network.run_until_idle(max_cycles=500_000)
        text = str(excinfo.value)
        assert f"message {message.message_id}" in text
        assert "seq 0" in text
        assert "(2,2)" in text and "(0,0)" in text
        assert "3 attempts" in text and "2 retransmissions" in text

    def test_reliable_network_has_no_harq_state(self):
        config = Scenario.mesh(3).waw_wap().build()
        network = Network(config)
        message = network.send(Coord(2, 2), Coord(0, 0), 4)
        network.run_until_idle()
        assert message.sequence is None
        assert network.total_retransmissions() == 0
        assert network.fault_counts() == {"transmitted": 0, "corrupted": 0, "lost": 0}


# ----------------------------------------------------------------------
# Stall diagnostics and drain-budget validation (satellite 2)
# ----------------------------------------------------------------------
class TestDiagnostics:
    def test_stall_error_reports_pending_retransmit_state(self):
        # A NIC with an unacknowledged message in flight: the drain-budget
        # validation guarantees a bounded run ends in MessageDeliveryError
        # rather than a stall, so exercise the diagnostic builder directly
        # on a network frozen mid-protocol.
        from repro.sim.backend import network_stall_error

        network = _faulty_network(loss_rate=1.0, corrupt_rate=0.0,
                                  ack_timeout=64, max_retries=8)
        network.send(Coord(2, 2), Coord(0, 0), 4, kind="data")
        for _ in range(100):
            network.step()
        error = network_stall_error(network, 100)
        text = str(error)
        assert "retransmit state" in text
        assert "1 message(s) awaiting ACK" in text
        assert "(2,2): 1 pending ACK(s)" in text
        assert "next retransmit at cycle" in text

    def test_stall_error_without_faults_has_no_reliability_note(self):
        # A ring saturated by staggered all-to-all waves genuinely
        # deadlocks (see test_differential); reuse a simpler guaranteed
        # stall: an undersized budget on a healthy run.
        config = Scenario.mesh(3).waw_wap().build()
        network = Network(config)
        network.send(Coord(2, 2), Coord(0, 0), 4)
        with pytest.raises(SimulationStallError) as excinfo:
            network.run_until_idle(max_cycles=3)
        assert "retransmit state" not in str(excinfo.value)

    def test_drain_budget_must_exceed_retransmission_window(self):
        reliability = ReliabilityConfig(ack_timeout=256, backoff=2.0, max_retries=8)
        window = reliability.worst_case_wait()
        network = _faulty_network(ack_timeout=256, max_retries=8)
        network.send(Coord(2, 2), Coord(0, 0), 4)
        with pytest.raises(ValueError, match="drain timeout"):
            network.run_until_idle(max_cycles=window)
        # One cycle beyond the window is accepted.
        network.run_until_idle(max_cycles=window + 1)

    def test_system_run_validates_drain_budget(self):
        from repro.manycore.system import ManycoreSystem
        from repro.workloads.eembc import autobench_profile

        config = (
            Scenario.mesh(3)
            .waw_wap()
            .fault_model("independent", loss_rate=0.01, ack_timeout=1000,
                         max_retries=10)
            .build()
        )
        system = ManycoreSystem(config)
        system.add_profile_core(Coord(2, 2), autobench_profile("matrix").scaled(0.001))
        with pytest.raises(ValueError, match="retransmission window"):
            system.run_to_completion(max_cycles=100_000)


# ----------------------------------------------------------------------
# Scenario / config integration
# ----------------------------------------------------------------------
class TestScenarioIntegration:
    def test_fault_model_in_label_and_build(self):
        scenario = Scenario.mesh(3).waw_wap().fault_model("independent",
                                                          loss_rate=0.1, seed=4)
        assert "faults-independent-s4" in scenario.label()
        config = scenario.build()
        assert isinstance(config.fault_model, IndependentFaults)
        assert config.fault_model.loss_rate == 0.1

    def test_fault_model_none_removes_it(self):
        scenario = Scenario.mesh(3).fault_model("gilbert").fault_model(None)
        assert scenario.build().fault_model is None
        assert "faults" not in scenario.label()

    def test_invalid_model_is_a_scenario_error(self):
        with pytest.raises(ScenarioError):
            Scenario.mesh(3).fault_model("bit-rot")
        with pytest.raises(ScenarioError):
            Scenario.mesh(3).fault_model("independent", loss_rate=2.0)

    def test_fault_model_sweep_axis(self):
        points = sweep(
            Scenario.mesh(3),
            fault_model=(None, {"kind": "independent", "loss_rate": 0.01}, "gilbert"),
        )
        models = [p.build().fault_model for p in points]
        assert models[0] is None
        assert isinstance(models[1], IndependentFaults)
        assert isinstance(models[2], GilbertElliottFaults)

    def test_config_rejects_non_spec_fault_model(self):
        from repro.core.config import regular_mesh_config
        import dataclasses

        config = regular_mesh_config(3)
        with pytest.raises(ValueError, match="fault_model"):
            dataclasses.replace(config, fault_model="independent")

    def test_with_fault_model_round_trip(self):
        from repro.core.config import waw_wap_config

        config = waw_wap_config(3).with_fault_model("independent", loss_rate=0.05)
        assert config.fault_model.loss_rate == 0.05
        assert config.with_fault_model(None).fault_model is None
