"""Tests of the service CLI surface (serve / submit / status / fetch / cache).

One test drives a real ``repro-experiments serve`` subprocess end to end;
the rest talk to an in-process daemon thread through ``main()`` exactly as
a user would, asserting exit codes and printed output.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys

import pytest

from repro.experiments.runner import main
from repro.service import ServiceClient, start_service_thread

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture
def daemon(tmp_path):
    handle = start_service_thread(port=0, store_dir=str(tmp_path / "store"))
    try:
        yield handle
    finally:
        handle.stop()


def _port_args(daemon):
    return ["--port", str(daemon.port)]


class TestServeSubprocess:
    def test_serve_submit_shutdown_cycle(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments.runner", "serve",
             "--port", "0", "--store-dir", str(tmp_path / "store")],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=REPO_ROOT,
        )
        try:
            banner = proc.stdout.readline()
            match = re.search(r"listening on [0-9.]+:(\d+)", banner)
            assert match, f"unexpected serve banner: {banner!r}"
            port = int(match.group(1))
            assert main(["submit", "table1", "--quick", "--port", str(port)]) == 0
            ServiceClient(port=port).shutdown()
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()


class TestSubmitCommand:
    def test_submit_then_cached_resubmit(self, daemon, capsys):
        args = ["submit", "table1", "--quick"] + _port_args(daemon)
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "False" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "True" in second  # served from the durable store

    def test_submit_sweep_axes(self, daemon, capsys):
        args = ["submit", "--experiment", "table2", "--sizes", "2,3"] + _port_args(daemon)
        assert main(args) == 0
        out = capsys.readouterr().out
        assert out.count("table2") == 2

    def test_submit_json_export(self, daemon, capsys):
        args = ["submit", "table1", "--quick", "--json", "-"] + _port_args(daemon)
        assert main(args) == 0
        data = json.loads(capsys.readouterr().out)
        assert data[0]["experiment"] == "table1"
        assert data[0]["rows"]

    def test_submit_no_wait_prints_tickets(self, daemon, capsys):
        args = ["submit", "table1", "--quick", "--no-wait"] + _port_args(daemon)
        assert main(args) == 0
        captured = capsys.readouterr()
        assert "queued" in captured.out or "done" in captured.out
        assert "status" in captured.err

    def test_submit_rejects_unknown_experiment(self, daemon, capsys):
        assert main(["submit", "tabel2"] + _port_args(daemon)) == 2
        assert "did you mean" in capsys.readouterr().err

    def test_submit_rejects_names_plus_axes(self, daemon, capsys):
        args = ["submit", "table2", "--sizes", "2"] + _port_args(daemon)
        assert main(args) == 2
        assert "not both" in capsys.readouterr().err

    def test_submit_experiment_without_axes(self, daemon, capsys):
        args = ["submit", "--experiment", "table2"] + _port_args(daemon)
        assert main(args) == 2
        assert "at least one sweep axis" in capsys.readouterr().err

    def test_submit_failed_job_exit_code(self, daemon, capsys):
        # reliability_sweep cannot sweep mesh sizes -> server-side failure.
        args = ["submit", "--experiment", "table1", "--packet-flits", "9"] + _port_args(daemon)
        assert main(args) == 2
        assert "cannot sweep axis" in capsys.readouterr().err

    def test_submit_unreachable_daemon(self, capsys):
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        args = ["submit", "table1", "--quick", "--port", str(free_port), "--timeout", "5"]
        assert main(args) == 1
        assert "is the daemon running" in capsys.readouterr().err


class TestStatusAndFetch:
    def test_status_and_fetch_roundtrip(self, daemon, capsys):
        client = ServiceClient(port=daemon.port)
        response = client.submit([{"experiment": "table1", "quick": True}])
        digest = response["tickets"][0]["hash"]
        assert main(["status", digest] + _port_args(daemon)) == 0
        assert "done" in capsys.readouterr().out
        assert main(["status", digest, "--json"] + _port_args(daemon)) == 0
        states = json.loads(capsys.readouterr().out)
        assert states[0]["hash"] == digest
        assert main(["fetch", digest] + _port_args(daemon)) == 0
        data = json.loads(capsys.readouterr().out)  # fetch defaults to JSON on stdout
        assert data[0]["experiment"] == "table1"

    def test_fetch_all_and_missing(self, daemon, capsys):
        ServiceClient(port=daemon.port).submit([{"experiment": "table1", "quick": True}])
        assert main(["fetch"] + _port_args(daemon)) == 0
        assert json.loads(capsys.readouterr().out)
        assert main(["fetch", "00000000deadbeef"] + _port_args(daemon)) == 1
        assert "missing" in capsys.readouterr().err


class TestCacheCommand:
    def test_stats_and_clear(self, daemon, tmp_path, capsys):
        store_dir = daemon.service.store.root
        ServiceClient(port=daemon.port).submit([{"experiment": "table1", "quick": True}])
        assert main(["cache", "stats", "--store-dir", store_dir]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "table1" in out
        assert main(["cache", "stats", "--store-dir", store_dir, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 1
        assert main(["cache", "clear", "--store-dir", store_dir]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert main(["cache", "stats", "--store-dir", store_dir, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 0

    def test_clear_by_experiment(self, tmp_path, capsys):
        from repro.api import BatchEngine, BatchJob

        store_dir = str(tmp_path / "store")
        BatchEngine(cache_dir=store_dir).run_many(
            [BatchJob("table1"), BatchJob("table2", {"sizes": (2,)})]
        )
        assert main(["cache", "clear", "--store-dir", store_dir, "--experiment", "table2"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert main(["cache", "stats", "--store-dir", store_dir, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["by_experiment"] == {"table1": 1}

    def test_cache_defaults_to_default_store_dir(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "via-env"))
        assert main(["cache", "stats", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["root"] == str(tmp_path / "via-env")
