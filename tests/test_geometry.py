"""Unit and property tests for :mod:`repro.geometry`."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import DIRECTION_PORTS, Coord, Mesh, Port

# ----------------------------------------------------------------------
# Coord
# ----------------------------------------------------------------------
class TestCoord:
    def test_fields_and_iteration(self):
        c = Coord(3, 5)
        assert c.x == 3 and c.y == 5
        assert tuple(c) == (3, 5)

    def test_equality_and_hashing(self):
        assert Coord(1, 2) == Coord(1, 2)
        assert Coord(1, 2) != Coord(2, 1)
        assert len({Coord(1, 2), Coord(1, 2), Coord(2, 1)}) == 2

    def test_manhattan_distance(self):
        assert Coord(0, 0).manhattan(Coord(3, 4)) == 7
        assert Coord(2, 2).manhattan(Coord(2, 2)) == 0
        assert Coord(5, 1).manhattan(Coord(1, 5)) == 8

    def test_manhattan_is_symmetric(self):
        a, b = Coord(1, 7), Coord(4, 2)
        assert a.manhattan(b) == b.manhattan(a)

    def test_offset(self):
        assert Coord(1, 1).offset(2, -1) == Coord(3, 0)

    @given(
        x1=st.integers(0, 20), y1=st.integers(0, 20),
        x2=st.integers(0, 20), y2=st.integers(0, 20),
        x3=st.integers(0, 20), y3=st.integers(0, 20),
    )
    def test_manhattan_triangle_inequality(self, x1, y1, x2, y2, x3, y3):
        a, b, c = Coord(x1, y1), Coord(x2, y2), Coord(x3, y3)
        assert a.manhattan(c) <= a.manhattan(b) + b.manhattan(c)


# ----------------------------------------------------------------------
# Port
# ----------------------------------------------------------------------
class TestPort:
    def test_local_flag(self):
        assert Port.LOCAL.is_local
        assert not Port.XPLUS.is_local

    def test_axes(self):
        assert Port.XPLUS.axis == "x"
        assert Port.XMINUS.axis == "x"
        assert Port.YPLUS.axis == "y"
        assert Port.YMINUS.axis == "y"
        assert Port.LOCAL.axis is None

    def test_direction_ports_exclude_local(self):
        assert Port.LOCAL not in DIRECTION_PORTS
        assert len(DIRECTION_PORTS) == 4

    def test_paper_naming(self):
        # The value strings follow the paper's notation.
        assert Port.LOCAL.value == "PME"
        assert Port.XPLUS.value == "X+"


# ----------------------------------------------------------------------
# Mesh
# ----------------------------------------------------------------------
class TestMesh:
    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Mesh(0, 4)
        with pytest.raises(ValueError):
            Mesh(4, -1)

    def test_node_enumeration(self):
        mesh = Mesh(3, 2)
        nodes = list(mesh.nodes())
        assert len(nodes) == 6 == mesh.num_nodes
        assert nodes[0] == Coord(0, 0)
        assert nodes[-1] == Coord(2, 1)

    def test_contains_and_require(self):
        mesh = Mesh(2, 2)
        assert mesh.contains(Coord(1, 1))
        assert not mesh.contains(Coord(2, 0))
        with pytest.raises(ValueError):
            mesh.require(Coord(-1, 0))

    def test_node_id_roundtrip(self):
        mesh = Mesh(5, 3)
        for node in mesh.nodes():
            assert mesh.coord_of(mesh.node_id(node)) == node

    def test_node_id_is_row_major(self):
        mesh = Mesh(4, 4)
        assert mesh.node_id(Coord(0, 0)) == 0
        assert mesh.node_id(Coord(3, 0)) == 3
        assert mesh.node_id(Coord(0, 1)) == 4

    def test_node_id_rejects_out_of_range(self):
        mesh = Mesh(2, 2)
        with pytest.raises(ValueError):
            mesh.coord_of(4)

    def test_downstream_follows_travel_direction(self):
        mesh = Mesh(4, 4)
        assert mesh.downstream(Coord(1, 1), Port.XPLUS) == Coord(2, 1)
        assert mesh.downstream(Coord(1, 1), Port.XMINUS) == Coord(0, 1)
        assert mesh.downstream(Coord(1, 1), Port.YPLUS) == Coord(1, 2)
        assert mesh.downstream(Coord(1, 1), Port.YMINUS) == Coord(1, 0)
        assert mesh.downstream(Coord(1, 1), Port.LOCAL) is None

    def test_downstream_none_at_edges(self):
        mesh = Mesh(3, 3)
        assert mesh.downstream(Coord(2, 1), Port.XPLUS) is None
        assert mesh.downstream(Coord(0, 0), Port.XMINUS) is None
        assert mesh.downstream(Coord(1, 2), Port.YPLUS) is None
        assert mesh.downstream(Coord(1, 0), Port.YMINUS) is None

    def test_upstream_is_inverse_of_downstream(self):
        mesh = Mesh(4, 3)
        for coord in mesh.nodes():
            for port in DIRECTION_PORTS:
                nxt = mesh.downstream(coord, port)
                if nxt is not None:
                    # Travel-direction naming: the downstream router's input
                    # port of the same name is fed by this router.
                    assert mesh.upstream(nxt, port) == coord

    def test_corner_port_lists(self):
        mesh = Mesh(4, 4)
        corner_outputs = mesh.output_ports(Coord(0, 0))
        assert set(corner_outputs) == {Port.LOCAL, Port.XPLUS, Port.YPLUS}
        corner_inputs = mesh.input_ports(Coord(0, 0))
        assert set(corner_inputs) == {Port.LOCAL, Port.XMINUS, Port.YMINUS}

    def test_interior_router_has_all_ports(self):
        mesh = Mesh(4, 4)
        assert len(mesh.output_ports(Coord(1, 2))) == 5
        assert len(mesh.input_ports(Coord(2, 1))) == 5

    def test_links_count(self):
        # A WxH mesh has 2*(W-1)*H + 2*W*(H-1) directed inter-router links.
        mesh = Mesh(4, 3)
        expected = 2 * 3 * 3 + 2 * 4 * 2
        assert len(list(mesh.links())) == expected

    def test_links_connect_neighbours(self):
        mesh = Mesh(3, 3)
        for src, port, dst in mesh.links():
            assert src.manhattan(dst) == 1
            assert mesh.downstream(src, port) == dst

    @given(w=st.integers(1, 8), h=st.integers(1, 8))
    @settings(max_examples=30)
    def test_port_existence_is_consistent(self, w, h):
        mesh = Mesh(w, h)
        for coord in mesh.nodes():
            for port in DIRECTION_PORTS:
                has_output = mesh.downstream(coord, port) is not None
                assert (port in mesh.output_ports(coord)) == has_output
                has_input = mesh.upstream(coord, port) is not None
                assert (port in mesh.input_ports(coord)) == has_input

    def test_single_node_mesh(self):
        mesh = Mesh(1, 1)
        assert mesh.num_nodes == 1
        assert mesh.output_ports(Coord(0, 0)) == [Port.LOCAL]
