"""System-level tests: parallel workloads on the full manycore simulator."""

from __future__ import annotations

import pytest

from repro.core.config import regular_mesh_config, waw_wap_config
from repro.geometry import Coord
from repro.manycore.placement import Placement
from repro.manycore.system import ManycoreSystem
from repro.workloads.parallel import ParallelWorkload, Phase, ThreadPhaseWork


def near_placement(config, num_threads):
    mc = config.memory_controller
    nodes = sorted(
        (c for c in config.mesh.nodes() if c != mc), key=lambda c: (c.manhattan(mc), c.y, c.x)
    )
    placement = Placement("near")
    for tid in range(num_threads):
        placement.assign(tid, nodes[tid])
    return placement


class TestParallelWorkloadOnSimulator:
    def test_balanced_workload_completes_on_both_designs(self):
        workload = ParallelWorkload.balanced(
            "kernel", num_threads=4, phases=2,
            compute_cycles_per_phase=500, loads_per_phase=15, evictions_per_phase=3,
        )
        makespans = {}
        for label, config in (("regular", regular_mesh_config(3)), ("waw", waw_wap_config(3))):
            system = ManycoreSystem(config)
            cores = system.add_parallel_workload(workload, near_placement(config, 4))
            makespans[label] = system.run_to_completion(max_cycles=500_000)
            for core in cores:
                assert core.done
                assert core.issued_loads == workload.thread_loads(0)
        # Same work, comparable time on both designs (average case).
        assert 0.5 < makespans["waw"] / makespans["regular"] < 2.0

    def test_imbalanced_workload_critical_thread_dominates(self):
        workload = ParallelWorkload(name="imbalanced", num_threads=3, barrier_cycles=0)
        phase = Phase(name="p0")
        phase.add(ThreadPhaseWork(0, compute_cycles=200, loads=2))
        phase.add(ThreadPhaseWork(1, compute_cycles=200, loads=2))
        phase.add(ThreadPhaseWork(2, compute_cycles=5_000, loads=40))
        workload.add_phase(phase)
        config = regular_mesh_config(3)
        system = ManycoreSystem(config)
        cores = system.add_parallel_workload(workload, near_placement(config, 3))
        system.run_to_completion(max_cycles=500_000)
        per_core = system.per_core_cycles()
        heavy = per_core[cores[2].node]
        assert heavy > 4 * per_core[cores[0].node]
        assert system.makespan() >= heavy

    def test_barrier_serialisation_adds_compute(self):
        workload = ParallelWorkload.balanced(
            "kernel", num_threads=2, phases=3,
            compute_cycles_per_phase=100, loads_per_phase=5, barrier_cycles=500,
        )
        config = regular_mesh_config(3)
        plain = ManycoreSystem(config)
        plain.add_parallel_workload(workload, near_placement(config, 2))
        no_barrier_cycles = plain.run_to_completion(max_cycles=200_000)

        serialised = ManycoreSystem(config)
        serialised.add_parallel_workload(
            workload, near_placement(config, 2), per_phase_serialisation=True
        )
        with_barrier_cycles = serialised.run_to_completion(max_cycles=200_000)
        assert with_barrier_cycles > no_barrier_cycles + 2 * 500

    def test_memory_controller_served_all_requests(self):
        workload = ParallelWorkload.balanced(
            "kernel", num_threads=4, phases=1,
            compute_cycles_per_phase=200, loads_per_phase=10, evictions_per_phase=2,
        )
        config = waw_wap_config(3)
        system = ManycoreSystem(config)
        system.add_parallel_workload(workload, near_placement(config, 4))
        system.run_to_completion(max_cycles=500_000)
        assert system.memory_controller.served_loads == 4 * 10
        assert system.memory_controller.served_evictions == 4 * 2
        # The network fully drained: nothing is left buffered anywhere.
        assert system.network.buffered_flits() == 0


class TestPathPlanningOnSimulator:
    def test_small_3dpp_runs_on_the_cycle_accurate_platform(self):
        """End-to-end: the avionics workload actually executes on the simulator."""
        from repro.manycore.cache import CacheConfig
        from repro.workloads.pathplanning import PathPlanningConfig, plan_path

        result = plan_path(
            PathPlanningConfig(
                dimensions=(6, 6, 3), num_threads=4, cycles_per_cell_update=10,
                cycles_per_neighbour_check=3, cache=CacheConfig(size_bytes=1024),
                sweeps_per_phase=5, obstacle_density=0.1,
            )
        )
        config = waw_wap_config(4)
        system = ManycoreSystem(config)
        system.add_parallel_workload(result.workload, near_placement(config, 4))
        cycles = system.run_to_completion(max_cycles=2_000_000)
        assert cycles > 0
        assert system.memory_controller.served_loads > 0
