"""Tests for the synthetic traffic generators (:mod:`repro.workloads.synthetic`)."""

from __future__ import annotations

import pytest

from repro.core.config import regular_mesh_config, waw_wap_config
from repro.geometry import Coord, Mesh
from repro.noc.network import Network
from repro.workloads.synthetic import (
    AdversarialCongestionTraffic,
    HotspotTraffic,
    UniformRandomTraffic,
)


class TestUniformRandomTraffic:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            UniformRandomTraffic(Mesh(3, 3), injection_rate=1.5)
        with pytest.raises(ValueError):
            UniformRandomTraffic(Mesh(3, 3), injection_rate=0.1, payload_flits=0)

    def test_drive_injects_and_delivers(self):
        config = regular_mesh_config(3)
        network = Network(config)
        traffic = UniformRandomTraffic(config.mesh, injection_rate=0.05, seed=3)
        sent = traffic.drive(network, cycles=200)
        network.run_until_idle(max_cycles=50_000)
        assert sent
        assert network.stats.completed_messages == len(sent)
        assert all(m.source != m.destination for m in sent)

    def test_determinism_given_seed(self):
        config = regular_mesh_config(3)
        def run(seed):
            network = Network(config)
            traffic = UniformRandomTraffic(config.mesh, injection_rate=0.05, seed=seed)
            sent = traffic.drive(network, cycles=100)
            return [(m.source, m.destination) for m in sent]
        assert run(11) == run(11)
        assert run(11) != run(12)

    def test_zero_rate_sends_nothing(self):
        config = regular_mesh_config(3)
        network = Network(config)
        traffic = UniformRandomTraffic(config.mesh, injection_rate=0.0)
        assert traffic.drive(network, cycles=50) == []


class TestHotspotTraffic:
    def test_all_messages_target_the_hotspot(self):
        config = regular_mesh_config(3)
        network = Network(config)
        traffic = HotspotTraffic(config.mesh, hotspot=Coord(0, 0), injection_rate=0.1, seed=5)
        sent = traffic.drive(network, cycles=100)
        network.run_until_idle(max_cycles=50_000)
        assert sent
        assert all(m.destination == Coord(0, 0) for m in sent)
        assert all(m.source != Coord(0, 0) for m in sent)

    def test_hotspot_must_be_in_mesh(self):
        with pytest.raises(ValueError):
            HotspotTraffic(Mesh(3, 3), hotspot=Coord(5, 5), injection_rate=0.1)


class TestAdversarialCongestionTraffic:
    def test_parameter_validation(self):
        mesh = Mesh(4, 4)
        with pytest.raises(ValueError):
            AdversarialCongestionTraffic(mesh, Coord(1, 1), Coord(1, 1))
        with pytest.raises(ValueError):
            AdversarialCongestionTraffic(
                mesh, Coord(1, 1), Coord(0, 0), background_outstanding=0
            )

    def test_interfering_sources_share_the_victim_path(self):
        mesh = Mesh(4, 4)
        traffic = AdversarialCongestionTraffic(mesh, Coord(3, 3), Coord(0, 0))
        interferers = traffic.interfering_sources()
        # Everybody heading to (0,0) eventually shares the ejection port.
        assert len(interferers) == 14
        assert Coord(3, 3) not in interferers
        assert Coord(0, 0) not in interferers

    def test_probes_complete_under_congestion_on_both_designs(self):
        for config in (regular_mesh_config(3), waw_wap_config(3)):
            network = Network(config)
            traffic = AdversarialCongestionTraffic(
                config.mesh, Coord(2, 2), Coord(0, 0),
                background_outstanding=2, probe_period=100,
            )
            probes, background = traffic.drive(network, cycles=400)
            assert probes and background
            assert all(p.completion_cycle is not None for p in probes)

    def test_worst_probe_latency_exceeds_zero_load(self):
        config = regular_mesh_config(3)
        network = Network(config)
        traffic = AdversarialCongestionTraffic(
            config.mesh, Coord(2, 2), Coord(0, 0), background_outstanding=3, probe_period=100
        )
        worst = traffic.worst_probe_latency(network, cycles=400)
        quiet = Network(config)
        probe = quiet.send(Coord(2, 2), Coord(0, 0), 1)
        quiet.run_until_idle(max_cycles=2_000)
        assert worst > probe.network_latency
