"""Tests for flits, packets, messages and buffers (:mod:`repro.noc.flit`/``buffer``)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Coord
from repro.noc.buffer import FlitBuffer
from repro.noc.flit import Flit, FlitType, Message, Packet


def make_message(payload: int = 4) -> Message:
    return Message(source=Coord(1, 1), destination=Coord(0, 0), payload_flits=payload)


class TestMessage:
    def test_validation(self):
        with pytest.raises(ValueError):
            Message(source=Coord(0, 0), destination=Coord(0, 0), payload_flits=1)
        with pytest.raises(ValueError):
            Message(source=Coord(0, 0), destination=Coord(1, 1), payload_flits=0)

    def test_unique_ids(self):
        assert make_message().message_id != make_message().message_id

    def test_latency_accounting(self):
        message = make_message()
        assert message.latency is None and message.network_latency is None
        message.created_cycle = 10
        message.injection_cycle = 12
        message.completion_cycle = 40
        assert message.latency == 30
        assert message.network_latency == 28


class TestPacketAndFlit:
    def test_single_flit_packet_is_head_and_tail(self):
        packet = Packet(message=make_message(1), size_flits=1, index=0, total=1)
        flits = packet.make_flits()
        assert len(flits) == 1
        assert flits[0].flit_type == FlitType.HEAD_TAIL
        assert flits[0].is_head and flits[0].is_tail

    def test_multi_flit_packet_structure(self):
        packet = Packet(message=make_message(4), size_flits=4, index=0, total=1)
        flits = packet.make_flits()
        assert [f.flit_type for f in flits] == [
            FlitType.HEAD,
            FlitType.BODY,
            FlitType.BODY,
            FlitType.TAIL,
        ]
        assert flits[0].is_head and not flits[0].is_tail
        assert flits[-1].is_tail and not flits[-1].is_head
        assert [f.sequence for f in flits] == [0, 1, 2, 3]

    def test_flit_carries_routing_information(self):
        packet = Packet(message=make_message(2), size_flits=2, index=0, total=1)
        flit = packet.make_flits()[0]
        assert flit.source == Coord(1, 1)
        assert flit.destination == Coord(0, 0)

    def test_packet_size_validation(self):
        with pytest.raises(ValueError):
            Packet(message=make_message(), size_flits=0, index=0, total=1)

    @given(size=st.integers(1, 12))
    @settings(max_examples=20)
    def test_exactly_one_head_and_one_tail(self, size):
        packet = Packet(message=make_message(size), size_flits=size, index=0, total=1)
        flits = packet.make_flits()
        assert sum(f.is_head for f in flits) == 1
        assert sum(f.is_tail for f in flits) == 1
        assert len(flits) == size


class TestFlitBuffer:
    def _flit(self) -> Flit:
        packet = Packet(message=make_message(1), size_flits=1, index=0, total=1)
        return packet.make_flits()[0]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlitBuffer(0)

    def test_fifo_ordering(self):
        buffer = FlitBuffer(4)
        flits = [self._flit() for _ in range(3)]
        for flit in flits:
            buffer.push(flit)
        assert buffer.peek() is flits[0]
        assert [buffer.pop() for _ in range(3)] == flits
        assert buffer.is_empty

    def test_overflow_raises(self):
        buffer = FlitBuffer(2)
        buffer.push(self._flit())
        buffer.push(self._flit())
        assert buffer.is_full and buffer.free_slots == 0
        with pytest.raises(OverflowError):
            buffer.push(self._flit())

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            FlitBuffer(1).pop()

    def test_peek_empty_returns_none(self):
        assert FlitBuffer(1).peek() is None

    @given(ops=st.lists(st.booleans(), min_size=1, max_size=60))
    @settings(max_examples=40)
    def test_occupancy_invariant(self, ops):
        buffer = FlitBuffer(4)
        for is_push in ops:
            if is_push and not buffer.is_full:
                buffer.push(self._flit())
            elif not is_push and not buffer.is_empty:
                buffer.pop()
            assert 0 <= len(buffer) <= buffer.capacity
            assert buffer.free_slots == buffer.capacity - len(buffer)
