"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core import regular_mesh_config, waw_wap_config
from repro.geometry import Coord, Mesh


@pytest.fixture
def mesh4() -> Mesh:
    """A 4x4 mesh, the workhorse of most unit tests."""
    return Mesh(4, 4)


@pytest.fixture
def mesh8() -> Mesh:
    """The evaluated 8x8 mesh."""
    return Mesh(8, 8)


@pytest.fixture
def memory_node() -> Coord:
    """The memory-controller node of the evaluated system."""
    return Coord(0, 0)


@pytest.fixture
def regular4():
    """Regular design point on a 4x4 mesh."""
    return regular_mesh_config(4)


@pytest.fixture
def waw4():
    """WaW+WaP design point on a 4x4 mesh."""
    return waw_wap_config(4)


@pytest.fixture
def regular8():
    """Regular design point on the evaluated 8x8 mesh."""
    return regular_mesh_config(8)


@pytest.fixture
def waw8():
    """WaW+WaP design point on the evaluated 8x8 mesh."""
    return waw_wap_config(8)
