"""Tests for the workload layer: traces, profiles, EEMBC suite, parallel workloads."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.eembc import (
    AUTOBENCH_PROFILES,
    autobench_profile,
    autobench_suite,
    compute_bound_profiles,
    memory_bound_profiles,
)
from repro.workloads.parallel import ParallelWorkload, Phase, ThreadPhaseWork
from repro.workloads.trace import AccessTrace, MemoryOperation, TaskProfile, TraceItem


class TestTaskProfile:
    def test_derived_quantities(self):
        profile = TaskProfile(
            name="toy", instructions=100_000, base_cpi=1.5,
            misses_per_kinst=10.0, writebacks_per_kinst=2.0,
        )
        assert profile.compute_cycles == 150_000
        assert profile.memory_loads == 1_000
        assert profile.evictions == 200
        assert profile.noc_operations == 1_200

    def test_validation(self):
        with pytest.raises(ValueError):
            TaskProfile(name="x", instructions=0)
        with pytest.raises(ValueError):
            TaskProfile(name="x", instructions=10, base_cpi=0)
        with pytest.raises(ValueError):
            TaskProfile(name="x", instructions=10, misses_per_kinst=-1)

    def test_scaled_preserves_densities(self):
        profile = TaskProfile(name="toy", instructions=200_000, misses_per_kinst=8.0)
        shorter = profile.scaled(0.25)
        assert shorter.instructions == 50_000
        assert shorter.misses_per_kinst == 8.0
        with pytest.raises(ValueError):
            profile.scaled(0)

    def test_operations_stream_matches_counts(self):
        profile = TaskProfile(
            name="toy", instructions=50_000, misses_per_kinst=4.0, writebacks_per_kinst=1.0,
        )
        ops = list(profile.operations())
        assert len(ops) == profile.noc_operations
        assert sum(op.is_write for op in ops) == profile.evictions
        assert all(op.compute_cycles >= 1 for op in ops)

    def test_operations_empty_for_pure_compute(self):
        profile = TaskProfile(name="pure", instructions=1_000, misses_per_kinst=0.0,
                              writebacks_per_kinst=0.0)
        assert list(profile.operations()) == []

    @given(
        instructions=st.integers(1_000, 500_000),
        mpki=st.floats(0.0, 40.0, allow_nan=False),
        wpki=st.floats(0.0, 10.0, allow_nan=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_operation_stream_invariants(self, instructions, mpki, wpki):
        profile = TaskProfile(
            name="gen", instructions=instructions,
            misses_per_kinst=mpki, writebacks_per_kinst=wpki,
        )
        ops = list(profile.operations())
        assert len(ops) == profile.memory_loads + profile.evictions
        assert sum(op.is_write for op in ops) == profile.evictions


class TestAccessTrace:
    def test_append_and_iterate(self):
        trace = AccessTrace(name="t")
        trace.append(3, 0x100)
        trace.append(2, 0x140, is_write=True)
        assert len(trace) == 2
        assert trace.total_compute_cycles == 5
        ops = list(trace.operations())
        assert ops[0].address == 0x100 and not ops[0].is_write
        assert ops[1].is_write

    def test_footprint(self):
        trace = AccessTrace(name="t")
        for address in (0, 8, 64, 72, 128):
            trace.append(1, address)
        assert trace.footprint_bytes(64) == 3 * 64

    def test_item_validation(self):
        with pytest.raises(ValueError):
            TraceItem(compute_cycles=-1, address=0)
        with pytest.raises(ValueError):
            MemoryOperation(compute_cycles=-2)


class TestAutobenchSuite:
    def test_suite_has_sixteen_benchmarks(self):
        suite = autobench_suite()
        assert len(suite) == 16
        assert len({p.name for p in suite}) == 16

    def test_lookup_by_name(self):
        assert autobench_profile("cacheb").name == "cacheb"
        with pytest.raises(KeyError):
            autobench_profile("doom3")

    def test_characterisation_spread(self):
        """The suite spans compute-bound to memory-bound kernels."""
        densities = [p.misses_per_kinst for p in autobench_suite()]
        assert min(densities) < 2.0
        assert max(densities) > 20.0

    def test_memory_vs_compute_partition(self):
        memory = memory_bound_profiles()
        compute = compute_bound_profiles()
        assert len(memory) + len(compute) == 16
        assert {p.name for p in memory}.isdisjoint({p.name for p in compute})
        assert "cacheb" in {p.name for p in memory}
        assert "a2time" in {p.name for p in compute}

    def test_profiles_have_descriptions(self):
        assert all(p.description for p in AUTOBENCH_PROFILES.values())


class TestParallelWorkload:
    def test_phase_bookkeeping(self):
        phase = Phase(name="p")
        phase.add(ThreadPhaseWork(0, compute_cycles=100, loads=5, evictions=1))
        phase.add(ThreadPhaseWork(1, compute_cycles=50, loads=2))
        assert phase.thread_ids() == [0, 1]
        assert phase.total_loads == 7
        assert phase.total_compute_cycles == 150
        assert phase.work_of(2).loads == 0  # missing threads contribute nothing
        with pytest.raises(ValueError):
            phase.add(ThreadPhaseWork(0, compute_cycles=1, loads=1))

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            ParallelWorkload(name="bad", num_threads=0)
        workload = ParallelWorkload(name="w", num_threads=2)
        phase = Phase(name="p")
        phase.add(ThreadPhaseWork(5, compute_cycles=1, loads=1))
        with pytest.raises(ValueError):
            workload.add_phase(phase)

    def test_aggregates(self):
        workload = ParallelWorkload.balanced(
            "bal", num_threads=4, phases=3, compute_cycles_per_phase=100,
            loads_per_phase=10, evictions_per_phase=2,
        )
        assert len(workload.phases) == 3
        assert workload.total_loads == 4 * 3 * 10
        assert workload.thread_loads(0) == 30
        assert workload.thread_compute_cycles(2) == 300
        summary = workload.summary()
        assert summary["threads"] == 4 and summary["phases"] == 3

    def test_thread_phase_work_validation(self):
        with pytest.raises(ValueError):
            ThreadPhaseWork(-1, compute_cycles=1, loads=1)
        with pytest.raises(ValueError):
            ThreadPhaseWork(0, compute_cycles=-1, loads=1)
