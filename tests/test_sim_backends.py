"""Unit tests for the ``repro.sim`` backend subsystem and its wiring.

The deep bit-for-bit equivalence of the backends lives in
``tests/test_differential.py``; this module covers the plumbing around it:
the registry, the ``Scenario``/``NoCConfig``/CLI selection paths, the
descriptive stall errors and the batch engine's cache behaviour when the
backend switches.
"""

from __future__ import annotations

import pytest

from repro.api import BatchEngine, BatchJob, Scenario, ScenarioError, config_hash
from repro.api import registry as registry_module
from repro.api.registry import experiment
from repro.core.config import regular_mesh_config
from repro.geometry import Coord
from repro.manycore.system import ManycoreSystem
from repro.noc.network import Network
from repro.sim import (
    CycleAccurateBackend,
    EventDrivenBackend,
    SimulationBackend,
    SimulationStallError,
    available_backends,
    make_backend,
)
from repro.workloads.trace import MemoryOperation


def operations(count, gap=5):
    return iter([MemoryOperation(compute_cycles=gap) for _ in range(count)])


# ----------------------------------------------------------------------
# Registry / factory
# ----------------------------------------------------------------------
class TestBackendRegistry:
    def test_canonical_names(self):
        assert available_backends() == ["cycle", "event"]

    def test_make_backend_by_name_and_alias(self):
        assert isinstance(make_backend("cycle"), CycleAccurateBackend)
        assert isinstance(make_backend("event"), EventDrivenBackend)
        assert isinstance(make_backend("cycle-accurate"), CycleAccurateBackend)
        assert isinstance(make_backend("event-driven"), EventDrivenBackend)
        assert isinstance(make_backend(None), CycleAccurateBackend)

    def test_backends_are_stateless_singletons(self):
        assert make_backend("event") is make_backend("event-driven")

    def test_instance_passthrough(self):
        backend = EventDrivenBackend()
        assert make_backend(backend) is backend

    def test_unknown_name_lists_known_backends(self):
        with pytest.raises(ValueError, match="cycle.*event"):
            make_backend("warp-speed")

    def test_non_string_spec_rejected(self):
        with pytest.raises(TypeError):
            make_backend(42)


# ----------------------------------------------------------------------
# Selection paths: NoCConfig, Network/ManycoreSystem, Scenario
# ----------------------------------------------------------------------
class TestBackendSelection:
    def test_config_default_is_cycle_accurate(self):
        config = regular_mesh_config(2)
        assert config.sim_backend == "cycle"
        assert isinstance(Network(config).backend, CycleAccurateBackend)

    def test_config_backend_flows_into_network_and_system(self):
        config = regular_mesh_config(2).with_backend("event")
        assert isinstance(Network(config).backend, EventDrivenBackend)
        assert isinstance(ManycoreSystem(config).backend, EventDrivenBackend)

    def test_explicit_backend_overrides_config(self):
        config = regular_mesh_config(2).with_backend("event")
        assert isinstance(Network(config, backend="cycle").backend, CycleAccurateBackend)

    def test_invalid_config_backend_rejected(self):
        with pytest.raises(ValueError):
            regular_mesh_config(2).with_backend("")
        with pytest.raises(ValueError):
            Network(regular_mesh_config(2).with_backend("nope"))

    def test_scenario_backend_axis(self):
        config = Scenario.mesh(3).waw_wap().backend("event").build()
        assert config.sim_backend == "event"
        assert Scenario.mesh(3).backend("event-driven").build().sim_backend == "event"

    def test_scenario_backend_in_label_and_settings(self):
        scenario = Scenario.mesh(3).backend("event")
        assert scenario.label().endswith("-event")
        assert scenario.settings["backend"] == "event"
        # The default backend keeps labels byte-identical to the seed's.
        assert Scenario.mesh(3).label() == "regular-3x3"

    def test_scenario_rejects_unknown_backend(self):
        with pytest.raises(ScenarioError, match="known backends"):
            Scenario.mesh(3).backend("warp-speed")

    def test_sweep_backend_axis(self):
        from repro.api import sweep

        points = sweep(Scenario.mesh(2), backend=("cycle", "event"))
        assert [p.build().sim_backend for p in points] == ["cycle", "event"]

    def test_custom_backend_instance_accepted(self):
        class Recording(SimulationBackend):
            name = "recording"

            def __init__(self):
                self.calls = 0

            def run_until_idle(self, network, *, max_cycles=1_000_000):
                self.calls += 1
                return make_backend("cycle").run_until_idle(network, max_cycles=max_cycles)

        backend = Recording()
        network = Network(regular_mesh_config(2), backend=backend)
        network.send(Coord(1, 1), Coord(0, 0), 1)
        network.run_until_idle()
        assert backend.calls == 1


# ----------------------------------------------------------------------
# Descriptive stall errors (satellite: no more bare timeout messages)
# ----------------------------------------------------------------------
class TestStallErrors:
    @pytest.mark.parametrize("backend", ("cycle", "event"))
    def test_network_drain_timeout_is_descriptive(self, backend):
        network = Network(regular_mesh_config(3), backend=backend)
        network.send(Coord(2, 2), Coord(0, 0), 4)
        network.send(Coord(1, 2), Coord(0, 0), 4)
        with pytest.raises(SimulationStallError) as excinfo:
            network.run_until_idle(max_cycles=6)
        message = str(excinfo.value)
        assert "did not drain within 6 cycles" in message
        # The error carries the buffered-flit total and per-node occupancy.
        assert "flit(s) buffered in routers" in message
        assert "queued for injection" in message
        assert "(2,2)" in message or "(1,2)" in message

    def test_network_stall_error_is_a_runtime_error(self):
        # Backwards compatibility: callers catching RuntimeError keep working.
        assert issubclass(SimulationStallError, RuntimeError)

    @pytest.mark.parametrize("backend", ("cycle", "event"))
    def test_system_completion_timeout_names_unfinished_cores(self, backend):
        system = ManycoreSystem(regular_mesh_config(3), backend=backend)
        system.add_core(Coord(1, 1), operations(50), name="busy-core")
        with pytest.raises(SimulationStallError) as excinfo:
            system.run_to_completion(max_cycles=3)
        message = str(excinfo.value)
        assert "did not complete within 3 cycles" in message
        assert "busy-core" in message
        assert "memory controller" in message

    def test_both_backends_stall_at_the_same_cycle(self):
        results = {}
        for backend in ("cycle", "event"):
            network = Network(regular_mesh_config(3), backend=backend)
            network.send(Coord(2, 2), Coord(0, 0), 4)
            with pytest.raises(SimulationStallError):
                network.run_until_idle(max_cycles=7)
            results[backend] = network.cycle
        assert results["event"] == results["cycle"]


# ----------------------------------------------------------------------
# BatchEngine cache behaviour under backend switching (satellite)
# ----------------------------------------------------------------------
class TestEngineCacheBackendSwitching:
    @pytest.fixture
    def counting_experiment(self):
        calls = []

        @experiment(
            "_sim_cache_probe",
            description="throwaway backend-sensitive experiment",
        )
        def run(*, backend: str = "cycle"):
            calls.append(backend)
            return [{"backend": backend, "invocation": len(calls)}]

        try:
            yield calls
        finally:
            registry_module._REGISTRY.pop("_sim_cache_probe", None)

    def test_backend_switch_is_a_cache_miss(self, counting_experiment):
        """Same scenario under a different backend must recompute, never
        serve the other backend's cached result."""
        engine = BatchEngine()
        cycle_job = BatchJob("_sim_cache_probe", params={"backend": "cycle"})
        event_job = BatchJob("_sim_cache_probe", params={"backend": "event"})

        first = engine.run(cycle_job)
        second = engine.run(cycle_job)
        third = engine.run(event_job)

        assert not first.cached and second.cached and not third.cached
        assert counting_experiment == ["cycle", "event"]
        assert config_hash(cycle_job) != config_hash(event_job)
        assert third.result.rows()[0]["backend"] == "event"

    def test_backend_switch_misses_disk_cache_too(self, counting_experiment, tmp_path):
        engine = BatchEngine(cache_dir=str(tmp_path))
        engine.run(BatchJob("_sim_cache_probe", params={"backend": "cycle"}))
        # A fresh engine over the same disk cache: cycle hits, event misses.
        fresh = BatchEngine(cache_dir=str(tmp_path))
        hit = fresh.run(BatchJob("_sim_cache_probe", params={"backend": "cycle"}))
        miss = fresh.run(BatchJob("_sim_cache_probe", params={"backend": "event"}))
        assert hit.cached and not miss.cached
        assert counting_experiment == ["cycle", "event"]

    def test_scenario_configs_hash_differently_per_backend(self):
        cycle_cfg = Scenario.mesh(3).waw_wap().backend("cycle").build()
        event_cfg = Scenario.mesh(3).waw_wap().backend("event").build()
        assert config_hash(
            BatchJob("avgperf", params={"regular_config": cycle_cfg})
        ) != config_hash(BatchJob("avgperf", params={"regular_config": event_cfg}))


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCLIBackendOption:
    def test_run_forwards_backend_to_simulating_experiments(self, capsys):
        from repro.experiments.runner import main

        assert main(["run", "avgperf", "--quick", "--backend", "event", "--json", "-"]) == 0
        out = capsys.readouterr().out
        assert '"backend": "event"' in out

    def test_backend_ignored_for_analytical_experiments_with_note(self, capsys):
        from repro.experiments.runner import main

        assert main(["run", "table1", "--backend", "event", "--json", "-"]) == 0
        captured = capsys.readouterr()
        assert '"backend"' not in captured.out
        assert "does not simulate" in captured.err

    def test_sweep_with_backend(self, capsys):
        from repro.experiments.runner import main

        code = main(
            ["sweep", "--experiment", "validation", "--sizes", "2",
             "--quick", "--backend", "event", "--json", "-"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert '"backend": "event"' in out
