"""Soundness of every registered analysis backend against simulation.

Hypothesis draws random design points, victim flows and (possibly sparse)
interfering workloads; for each one the cycle-accurate simulator runs the
most adversarial congestion it can express and every backend that declares
itself applicable must bound the worst observed probe traversal.

The second half checks the blind-analysis discipline of the
``bound_comparison`` experiment (the STAR isobar methodology,
arXiv:1911.00596): the held-out subset is simulated *before* the full grid,
and an unsound backend aborts the run without the comparison numbers ever
being computed.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.analysis.backends import (
    AnalysisBackend,
    available_analysis_backends,
    make_analysis_backend,
)
from repro.core import FlowSet, WeightTable, regular_mesh_config, waw_wap_config
from repro.experiments import bound_comparison
from repro.geometry import Coord
from repro.noc.network import Network
from repro.workloads.synthetic import AdversarialCongestionTraffic

CONFIG_FNS = {"regular": regular_mesh_config, "waw_wap": waw_wap_config}


@st.composite
def design_points(draw):
    """(config, victim, background sources or None) of one random scenario."""
    width = draw(st.integers(min_value=2, max_value=4))
    height = draw(st.integers(min_value=2, max_value=4))
    design = draw(st.sampled_from(sorted(CONFIG_FNS)))
    config = CONFIG_FNS[design](width, height)
    dst = config.memory_controller
    sources = [n for n in config.mesh.nodes() if n != dst]
    victim = draw(st.sampled_from(sources))
    if draw(st.booleans()):
        background = None  # full adversarial workload
    else:
        picked = draw(st.sets(st.sampled_from(sources), max_size=len(sources)))
        background = sorted(picked | {victim})
    return config, victim, background


def _observed_worst(config, victim, background, *, weights, cycles=400):
    network = Network(config, weight_table=weights)
    traffic = AdversarialCongestionTraffic(
        mesh=config.mesh,
        victim_source=victim,
        victim_destination=config.memory_controller,
        background_sources=background,
    )
    return traffic.worst_probe_latency(network, cycles)


class TestRandomizedSoundness:
    @settings(max_examples=12, deadline=None)
    @given(point=design_points())
    def test_every_applicable_backend_bounds_the_simulation(self, point):
        config, victim, background = point
        dst = config.memory_controller
        weights = (
            WeightTable.from_flow_set(FlowSet.all_to_one(config.mesh, dst))
            if config.is_waw
            else None
        )
        observed = _observed_worst(config, victim, background, weights=weights)
        checked = 0
        for name in available_analysis_backends():
            backend = make_analysis_backend(name)
            if backend.supports(config) is not None:
                continue
            bound = backend.validation_bound(
                config, victim, dst, weight_table=weights
            )
            assert bound >= observed, (
                f"backend {name!r} bound {bound} < observed {observed} for "
                f"{config.describe()}, flow {victim}->{dst}, "
                f"background {background}"
            )
            checked += 1
        assert checked >= 2  # paper bound + both flow-aware lenses at least


class _UnsoundBackend(AnalysisBackend):
    """Deliberately broken: bounds everything by one cycle."""

    name = "unsound-test-backend"
    description = "test double"

    def validation_analysis(self, config, **kwargs):
        class _One:
            @staticmethod
            def wctt_packet(source, destination, *, packet_flits=None):
                return 1

            @staticmethod
            def wctt_message(source, destination, *, payload_flits):
                return 1

        return _One()


class TestBlindAnalysisDiscipline:
    def test_holdout_is_simulated_before_the_full_grid(self, monkeypatch):
        evaluated = []
        real = bound_comparison._evaluate_job

        def tracking(job):
            evaluated.append(job)
            return real(job)

        monkeypatch.setattr(bound_comparison, "_evaluate_job", tracking)
        bound_comparison.run(
            mesh_sizes=(2,),
            topologies=("mesh",),
            designs=("regular",),
            workloads=("full",),
            payload_sizes=(1,),
            congestion_cycles=300,
        )
        specs = bound_comparison._grid_jobs(
            (2,), ("mesh",), ("regular",), ("full",), (1,), 300
        )
        holdout = [s for i, s in enumerate(specs) if i % 3 == 0]
        assert evaluated[: len(holdout)] == holdout

    def test_unsound_backend_aborts_before_the_comparison(self, monkeypatch):
        from repro.analysis import backends as backends_module

        monkeypatch.setitem(
            backends_module._REGISTRY, _UnsoundBackend.name, _UnsoundBackend
        )
        monkeypatch.setitem(
            bound_comparison.DESIGN_BACKENDS,
            "regular",
            ("regular", _UnsoundBackend.name),
        )
        evaluated = []
        real = bound_comparison._evaluate_job

        def tracking(job):
            evaluated.append(job)
            return real(job)

        monkeypatch.setattr(bound_comparison, "_evaluate_job", tracking)
        try:
            with pytest.raises(
                bound_comparison.SoundnessViolation, match="held-out"
            ):
                bound_comparison.run(
                    mesh_sizes=(3,),
                    topologies=("mesh",),
                    designs=("regular",),
                    workloads=("full",),
                    payload_sizes=(1,),
                    congestion_cycles=300,
                )
        finally:
            backends_module._INSTANCES.pop(_UnsoundBackend.name, None)
        specs = bound_comparison._grid_jobs(
            (3,), ("mesh",), ("regular",), ("full",), (1,), 300
        )
        holdout_size = len([s for i, s in enumerate(specs) if i % 3 == 0])
        assert len(evaluated) == holdout_size  # the full grid never ran
